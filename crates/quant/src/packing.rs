//! Bit-packing of sub-byte quantization codes.
//!
//! The KV-cache memory savings in the paper (>4.4× vs FP16) assume INT4 and
//! INT2 codes are physically packed, so this module implements dense
//! little-endian-within-byte packing: element `i` occupies bits
//! `[(i % per_byte) * width, …)` of byte `i / per_byte`.

use crate::bitwidth::BitWidth;

/// Densely packed unsigned quantization codes.
///
/// # Example
///
/// ```
/// use turbo_quant::{BitWidth, PackedCodes};
///
/// let codes = [3u8, 0, 1, 2, 3];
/// let packed = PackedCodes::pack(&codes, BitWidth::Int2);
/// assert_eq!(packed.bytes().len(), 2); // 5 codes at 2 bits -> 2 bytes
/// assert_eq!(packed.unpack(), codes.to_vec());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedCodes {
    bytes: Vec<u8>,
    len: usize,
    bits: BitWidth,
}

impl PackedCodes {
    /// Packs unsigned codes at the given width.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds `bits.max_code()`.
    pub fn pack(codes: &[u8], bits: BitWidth) -> Self {
        let per_byte = bits.elems_per_byte();
        let width = bits.bits() as usize;
        let mut bytes = vec![0u8; bits.packed_bytes(codes.len())];
        for (i, &code) in codes.iter().enumerate() {
            assert!(
                code <= bits.max_code(),
                "code {code} exceeds {bits} range at index {i}"
            );
            let byte = i / per_byte;
            let shift = (i % per_byte) * width;
            bytes[byte] |= code << shift;
        }
        Self {
            bytes,
            len: codes.len(),
            bits,
        }
    }

    /// Reassembles packed codes from raw parts (e.g. read back from a
    /// serialized cache).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not exactly `bits.packed_bytes(len)`.
    pub fn from_bytes(bytes: Vec<u8>, len: usize, bits: BitWidth) -> Self {
        assert_eq!(
            bytes.len(),
            bits.packed_bytes(len),
            "byte length does not match {len} codes at {bits}"
        );
        Self { bytes, len, bits }
    }

    /// Unpacks all codes.
    pub fn unpack(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Random access to code `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of bounds");
        let per_byte = self.bits.elems_per_byte();
        let width = self.bits.bits() as usize;
        let shift = (i % per_byte) * width;
        (self.bytes[i / per_byte] >> shift) & self.bits.max_code()
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width of the codes.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Raw packed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw packed bytes.
    ///
    /// Exists for the fault-injection harness (bit-flip campaigns) and
    /// for in-place recovery; mutations cannot violate memory safety —
    /// every byte pattern decodes to *some* code sequence — but they do
    /// change the stored values.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Physical storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int4_round_trip() {
        let codes: Vec<u8> = (0..16).collect();
        let p = PackedCodes::pack(&codes, BitWidth::Int4);
        assert_eq!(p.storage_bytes(), 8);
        assert_eq!(p.unpack(), codes);
    }

    #[test]
    fn int2_round_trip_with_ragged_tail() {
        let codes = [0u8, 1, 2, 3, 3, 2, 1];
        let p = PackedCodes::pack(&codes, BitWidth::Int2);
        assert_eq!(p.storage_bytes(), 2);
        assert_eq!(p.unpack(), codes.to_vec());
    }

    #[test]
    fn int8_is_identity_packing() {
        let codes = [255u8, 0, 128];
        let p = PackedCodes::pack(&codes, BitWidth::Int8);
        assert_eq!(p.bytes(), &codes);
        assert_eq!(p.unpack(), codes.to_vec());
    }

    #[test]
    fn random_access_matches_unpack() {
        let codes: Vec<u8> = (0..100).map(|i| (i % 4) as u8).collect();
        let p = PackedCodes::pack(&codes, BitWidth::Int2);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(p.get(i), c);
        }
    }

    #[test]
    fn empty_pack() {
        let p = PackedCodes::pack(&[], BitWidth::Int4);
        assert!(p.is_empty());
        assert_eq!(p.storage_bytes(), 0);
        assert_eq!(p.unpack(), Vec::<u8>::new());
    }

    #[test]
    fn compression_ratio_vs_fp16() {
        // 4096 values: FP16 = 8192 bytes; INT2 packed = 1024 bytes -> 8x.
        let codes = vec![1u8; 4096];
        let p = PackedCodes::pack(&codes, BitWidth::Int2);
        assert_eq!(8192 / p.storage_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds INT2 range")]
    fn oversized_code_panics() {
        PackedCodes::pack(&[4], BitWidth::Int2);
    }

    #[test]
    fn from_bytes_round_trips() {
        let codes = [1u8, 2, 3, 0, 3];
        let p = PackedCodes::pack(&codes, BitWidth::Int2);
        let q = PackedCodes::from_bytes(p.bytes().to_vec(), p.len(), p.bits());
        assert_eq!(p, q);
        assert_eq!(q.unpack(), codes.to_vec());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_bytes_validates_length() {
        PackedCodes::from_bytes(vec![0u8; 3], 5, BitWidth::Int2);
    }
}
