//! QuaRot-style Hadamard rotation.
//!
//! Table 1 notes that rotation schemes (QuaRot, Atom) are *orthogonal* to
//! TurboAttention and composable with it. This module makes that concrete:
//! a normalized fast Walsh–Hadamard transform applied to query and key
//! rows is an orthogonal change of basis, so exact attention scores are
//! untouched (`⟨Hq, Hk⟩ = ⟨q, k⟩`), while channel outliers are smeared
//! across all channels — exactly what per-tile symmetric quantization
//! wants.
//!
//! The cost on real hardware is `O(d log d)` per row fused into the QKV
//! projection; here it is provided as an explicit operator plus the error
//! ablation backing the composability claim.

use crate::symmetric::SymQuantized;
use turbo_tensor::Matrix;

/// In-place normalized fast Walsh–Hadamard transform.
///
/// Applies the orthonormal Hadamard matrix `H/√n`; applying it twice
/// returns the original vector (the transform is an involution).
///
/// # Panics
///
/// Panics if `xs.len()` is not a power of two.
pub fn fht(xs: &mut [f32]) {
    let n = xs.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    let mut h = 1;
    while h < n {
        for block in (0..n).step_by(h * 2) {
            for i in block..block + h {
                let (a, b) = (xs[i], xs[i + h]);
                xs[i] = a + b;
                xs[i + h] = a - b;
            }
        }
        h *= 2;
    }
    let norm = 1.0 / (n as f32).sqrt();
    for x in xs {
        *x *= norm;
    }
}

/// Applies the normalized Hadamard rotation to every row of `m`.
///
/// # Panics
///
/// Panics if `m.cols()` is not a power of two.
pub fn hadamard_rotate(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        fht(out.row_mut(r));
    }
    out
}

/// Quantization-error comparison backing the composability claim: per-tile
/// symmetric INT8 round-trip MSE of `m` with and without rotation.
///
/// Returns `(mse_plain, mse_rotated)`, where the rotated variant measures
/// error *in the original basis* (rotate → quantize → dequantize →
/// rotate back).
pub fn rotation_ablation(m: &Matrix) -> (f64, f64) {
    let plain = SymQuantized::quantize(m).dequantize();
    let rotated = hadamard_rotate(m);
    let rq = SymQuantized::quantize(&rotated).dequantize();
    let back = hadamard_rotate(&rq); // involution: rotate back
    (turbo_tensor::mse(&plain, m), turbo_tensor::mse(&back, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{matmul_transposed_b, max_abs_error, TensorRng};

    #[test]
    fn involution() {
        let mut rng = TensorRng::new(1);
        let m = rng.normal(8, 64, 0.0, 1.0);
        let twice = hadamard_rotate(&hadamard_rotate(&m));
        assert!(max_abs_error(&twice, &m) < 1e-5);
    }

    #[test]
    fn preserves_norms_and_dot_products() {
        let mut rng = TensorRng::new(2);
        let q = rng.normal(4, 32, 0.0, 1.0);
        let k = rng.normal(6, 32, 0.0, 1.0);
        let plain = matmul_transposed_b(&q, &k);
        let rotated = matmul_transposed_b(&hadamard_rotate(&q), &hadamard_rotate(&k));
        assert!(max_abs_error(&plain, &rotated) < 1e-4);
    }

    #[test]
    fn known_small_transform() {
        let mut xs = [1.0f32, 1.0];
        fht(&mut xs);
        // H/√2 · [1,1] = [√2, 0].
        assert!((xs[0] - 2.0f32.sqrt()).abs() < 1e-6);
        assert!(xs[1].abs() < 1e-6);
    }

    #[test]
    fn smears_channel_outliers() {
        let mut rng = TensorRng::new(3);
        let m = rng.normal_with_channel_outliers(128, 64, 1.0, &[5], 30.0);
        let rotated = hadamard_rotate(&m);
        // Peak magnitude shrinks: the outlier channel's energy spreads.
        assert!(rotated.abs_max() < m.abs_max() * 0.5);
    }

    #[test]
    fn rotation_reduces_per_tile_quant_error_on_outliers() {
        let mut rng = TensorRng::new(4);
        let m = rng.normal_with_channel_outliers(128, 64, 1.0, &[5, 40], 30.0);
        let (plain, rotated) = rotation_ablation(&m);
        assert!(
            rotated < plain / 4.0,
            "rotated {rotated} should be well below plain {plain}"
        );
    }

    #[test]
    fn rotation_is_neutral_without_outliers() {
        let mut rng = TensorRng::new(5);
        let m = rng.normal(128, 64, 0.0, 1.0);
        let (plain, rotated) = rotation_ablation(&m);
        // Gaussian is isotropic: rotation neither helps nor hurts much.
        assert!(rotated < plain * 1.5 && plain < rotated * 1.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        fht(&mut [0.0; 6]);
    }
}
