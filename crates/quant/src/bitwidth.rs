//! Quantization bit widths supported by the second BPQ stage.

use std::fmt;

/// Bit width of a quantized representation.
///
/// The paper's KV cache uses INT8 for the decode buffer and the first BPQ
/// stage, and INT4 or INT2 (head-dependent, section 3.2) for the resident
/// cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitWidth {
    /// 2-bit codes (4 levels) — the aggressive setting for low-priority heads.
    Int2,
    /// 3-bit codes (8 levels) — used by the 3-bit baseline comparisons of
    /// Table 2. Packed two-per-byte (padded), as real 3-bit kernels do not
    /// exist; storage accounting reflects the padded layout.
    Int3,
    /// 4-bit codes (16 levels) — the near-lossless default.
    Int4,
    /// 8-bit codes — the first-stage / buffer format.
    Int8,
}

impl BitWidth {
    /// Number of bits per element.
    pub const fn bits(self) -> u32 {
        match self {
            BitWidth::Int2 => 2,
            BitWidth::Int3 => 3,
            BitWidth::Int4 => 4,
            BitWidth::Int8 => 8,
        }
    }

    /// Number of representable levels, `2^bits`.
    pub const fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// Largest unsigned code value, `2^bits − 1`.
    pub const fn max_code(self) -> u8 {
        (self.levels() - 1) as u8
    }

    /// Elements that fit in one byte (3-bit codes are padded to two per
    /// byte so random access stays byte-aligned).
    pub const fn elems_per_byte(self) -> usize {
        (8 / self.bits()) as usize
    }

    /// Bytes needed to store `n` packed elements of this width.
    pub const fn packed_bytes(self, n: usize) -> usize {
        n.div_ceil(self.elems_per_byte())
    }

    /// Average bits per element when `frac2` of elements use 2-bit and the
    /// rest 4-bit — the "average compressed bit" column of Table 2.
    pub fn mixed_average_bits(frac2: f64) -> f64 {
        assert!((0.0..=1.0).contains(&frac2), "fraction must be in [0,1]");
        2.0 * frac2 + 4.0 * (1.0 - frac2)
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT{}", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_levels_codes() {
        assert_eq!(BitWidth::Int2.bits(), 2);
        assert_eq!(BitWidth::Int4.levels(), 16);
        assert_eq!(BitWidth::Int8.max_code(), 255);
        assert_eq!(BitWidth::Int4.max_code(), 15);
        assert_eq!(BitWidth::Int2.max_code(), 3);
    }

    #[test]
    fn packing_math() {
        assert_eq!(BitWidth::Int2.elems_per_byte(), 4);
        assert_eq!(BitWidth::Int4.elems_per_byte(), 2);
        assert_eq!(BitWidth::Int8.elems_per_byte(), 1);
        assert_eq!(BitWidth::Int4.packed_bytes(5), 3);
        assert_eq!(BitWidth::Int2.packed_bytes(5), 2);
        assert_eq!(BitWidth::Int2.packed_bytes(0), 0);
    }

    #[test]
    fn mixed_bits_at_half_is_three() {
        assert_eq!(BitWidth::mixed_average_bits(0.5), 3.0);
        assert_eq!(BitWidth::mixed_average_bits(0.0), 4.0);
        assert_eq!(BitWidth::mixed_average_bits(1.0), 2.0);
    }

    #[test]
    fn ordering_by_width() {
        assert!(BitWidth::Int2 < BitWidth::Int3);
        assert!(BitWidth::Int3 < BitWidth::Int4);
        assert!(BitWidth::Int4 < BitWidth::Int8);
    }

    #[test]
    fn int3_padded_packing() {
        assert_eq!(BitWidth::Int3.levels(), 8);
        assert_eq!(BitWidth::Int3.max_code(), 7);
        assert_eq!(BitWidth::Int3.elems_per_byte(), 2);
        assert_eq!(BitWidth::Int3.packed_bytes(5), 3);
    }

    #[test]
    fn display() {
        assert_eq!(BitWidth::Int4.to_string(), "INT4");
    }
}
