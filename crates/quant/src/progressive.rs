//! Blockwise Progressive Quantization (BPQ), the core of FlashQ.
//!
//! Stage 1 quantizes a FlashAttention tile symmetrically to INT8
//! ([`crate::symmetric`], Equation 9). Stage 2 — implemented here —
//! re-quantizes the INT8 codes *in integer arithmetic* to asymmetric
//! INT4/INT2, channel-wise in groups of consecutive tokens (Equation 10,
//! Algorithm 1):
//!
//! ```text
//! s_int = ⌈(max(q¹) − min(q¹)) / (2^bits − 1)⌉         (stored in INT8)
//! z_int = round(min(q¹) / s_int)                       (stored in INT8)
//! q²    = round(q¹ / s_int) − z_int                    (packed INT4/INT2)
//! ```
//!
//! The scale uses *ceiling* division: a rounded-down scale would make the
//! code range systematically overflow `2^bits − 1` and clamp, which is
//! exactly the artifact the paper's ⌈·⌉ brackets avoid.
//!
//! Decode-side dequantization is the pure-integer `q̂¹ = (q² + z_int)·s_int`,
//! which is what makes TurboAttention's decompression so much cheaper than
//! the FP16 dequantization of KIVI/GEAR: the result feeds the INT8 matmul
//! directly and only the stage-1 f32 scale survives as a scalar correction.

use crate::bitwidth::BitWidth;
use crate::packing::PackedCodes;
use crate::symmetric::{SymQuantized, SYM_INT8_DIVISOR};
use turbo_tensor::Matrix;

/// Integer division rounding half away from zero, matching `f32::round`
/// on the exact quotients that arise in BPQ.
#[inline]
fn div_round(a: i32, b: i32) -> i32 {
    debug_assert!(b > 0, "divisor must be positive");
    if a >= 0 {
        (a + b / 2) / b
    } else {
        -((-a + b / 2) / b)
    }
}

/// Why checked progressive quantization refused an input.
///
/// Produced by [`ProgressiveBlock::try_quantize`] and
/// [`ProgressiveBlock::try_quantize_from_int8`] — the non-panicking
/// entry points the fault-tolerant cache path uses. A caller that sees
/// one of these is expected to degrade (sanitize the input, fall back a
/// precision rung) rather than abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantError {
    /// The input tile contains NaN or ±Inf.
    NonFiniteInput,
    /// The stage-1 scale is so large that dequantization would overflow
    /// f32 (an extreme outlier drove `max|x|` near `f32::MAX`), or it is
    /// not a positive finite number at all.
    ScaleOverflow,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::NonFiniteInput => write!(f, "non-finite value in quantizer input"),
            QuantError::ScaleOverflow => write!(f, "quantization scale overflow"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Largest stage-1 scale that still dequantizes without overflowing f32:
/// the biggest reconstructed magnitude is `127 · scale`.
const MAX_OUTER_SCALE: f32 = f32::MAX / 127.0;

/// Per-(channel, group) integer parameters of the second BPQ stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupParams {
    /// Integer scale `s_int ≥ 1` in INT8 units.
    pub scale: i8,
    /// Integer zero point `z_int` in scale units.
    pub zero: i8,
}

/// A progressively quantized tile: packed INT4/INT2 codes plus per-group
/// integer parameters and the stage-1 f32 scale.
///
/// Codes are stored channel-major (`index = channel · rows + row`), the
/// layout a channel-wise dequantization kernel would stream.
///
/// # Example
///
/// ```
/// use turbo_tensor::Matrix;
/// use turbo_quant::{BitWidth, ProgressiveBlock};
///
/// let tile = Matrix::from_fn(64, 8, |r, c| ((r + 3 * c) % 11) as f32 * 0.1);
/// let pq = ProgressiveBlock::quantize(&tile, BitWidth::Int4, 64);
/// let back = pq.dequantize();
/// assert!(turbo_tensor::max_abs_error(&tile, &back) < 0.05);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressiveBlock {
    rows: usize,
    cols: usize,
    bits: BitWidth,
    group_size: usize,
    packed: PackedCodes,
    params: Vec<GroupParams>,
    outer_scale: f32,
}

impl ProgressiveBlock {
    /// Quantizes an f32 tile: symmetric INT8 (divisor 119) then channel-wise
    /// asymmetric INT4/INT2 in token groups of `group_size`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is `Int8` (stage 2 must narrow the representation)
    /// or `group_size == 0`.
    pub fn quantize(x: &Matrix, bits: BitWidth, group_size: usize) -> Self {
        let q1 = SymQuantized::quantize_with_divisor(x, SYM_INT8_DIVISOR);
        Self::quantize_from_int8(&q1, bits, group_size)
    }

    /// Runs only the second stage on existing INT8 codes — the operation
    /// the enhanced KV buffer performs when it flushes (subsection 3.3).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is `Int8` or `group_size == 0`.
    pub fn quantize_from_int8(q1: &SymQuantized, bits: BitWidth, group_size: usize) -> Self {
        assert!(
            bits != BitWidth::Int8,
            "progressive second stage must be narrower than INT8"
        );
        assert!(group_size > 0, "group size must be positive");
        let (rows, cols) = (q1.rows(), q1.cols());
        let groups_per_channel = rows.div_ceil(group_size).max(if rows == 0 { 0 } else { 1 });
        let mut params = Vec::with_capacity(cols * groups_per_channel);
        let mut codes = Vec::with_capacity(rows * cols);
        let q1_codes = q1.codes();

        for c in 0..cols {
            for g in 0..groups_per_channel {
                let start = g * group_size;
                let len = group_size.min(rows - start);
                let mut min = i32::MAX;
                let mut max = i32::MIN;
                for r in start..start + len {
                    let v = q1_codes[r * cols + c] as i32;
                    min = min.min(v);
                    max = max.max(v);
                }
                // Ceiling division: guarantees (max-min)/s ≤ levels-1 so
                // codes cannot systematically overflow the range.
                let gap = max - min; // ≥ 0
                let denom = (bits.levels() - 1) as i32;
                let s = ((gap + denom - 1) / denom).max(1);
                let z = div_round(min, s);
                params.push(GroupParams {
                    scale: s as i8,
                    zero: z as i8,
                });
                for r in start..start + len {
                    let v = q1_codes[r * cols + c] as i32;
                    let q2 = (div_round(v, s) - z).clamp(0, bits.max_code() as i32);
                    codes.push(q2 as u8);
                }
            }
        }

        ProgressiveBlock {
            rows,
            cols,
            bits,
            group_size,
            packed: PackedCodes::pack(&codes, bits),
            params,
            outer_scale: q1.scale(),
        }
    }

    /// Checked variant of [`ProgressiveBlock::quantize`]: screens the
    /// tile for non-finite values and the stage-1 scale for overflow
    /// instead of producing a silently corrupt block.
    ///
    /// # Errors
    ///
    /// [`QuantError::NonFiniteInput`] if the tile contains NaN/±Inf;
    /// [`QuantError::ScaleOverflow`] if an outlier pushes the stage-1
    /// scale past the reconstructible range.
    ///
    /// # Panics
    ///
    /// Still panics on *caller* bugs: `bits == Int8` or `group_size == 0`.
    pub fn try_quantize(x: &Matrix, bits: BitWidth, group_size: usize) -> Result<Self, QuantError> {
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(QuantError::NonFiniteInput);
        }
        let q1 = SymQuantized::quantize_with_divisor(x, SYM_INT8_DIVISOR);
        Self::try_quantize_from_int8(&q1, bits, group_size)
    }

    /// Checked variant of [`ProgressiveBlock::quantize_from_int8`]:
    /// validates the stage-1 scale before re-quantizing.
    ///
    /// # Errors
    ///
    /// [`QuantError::ScaleOverflow`] if the INT8 block's scale is not a
    /// positive finite value small enough to dequantize without
    /// overflowing f32.
    ///
    /// # Panics
    ///
    /// Still panics on *caller* bugs: `bits == Int8` or `group_size == 0`.
    pub fn try_quantize_from_int8(
        q1: &SymQuantized,
        bits: BitWidth,
        group_size: usize,
    ) -> Result<Self, QuantError> {
        let s = q1.scale();
        if !(s.is_finite() && s > 0.0 && s <= MAX_OUTER_SCALE) {
            return Err(QuantError::ScaleOverflow);
        }
        Ok(Self::quantize_from_int8(q1, bits, group_size))
    }

    /// Reassembles a block from raw parts (e.g. read back from a
    /// serialized cache).
    ///
    /// # Panics
    ///
    /// Panics if the packed length or parameter count is inconsistent
    /// with the shape, the bits are INT8, or `group_size == 0`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        bits: BitWidth,
        group_size: usize,
        packed: PackedCodes,
        params: Vec<GroupParams>,
        outer_scale: f32,
    ) -> Self {
        assert!(bits != BitWidth::Int8, "resident blocks are INT4/3/2");
        assert!(group_size > 0, "group size must be positive");
        assert_eq!(packed.bits(), bits, "packed width mismatch");
        assert_eq!(packed.len(), rows * cols, "packed length mismatch");
        let groups = if rows == 0 {
            0
        } else {
            rows.div_ceil(group_size)
        };
        assert_eq!(
            params.len(),
            cols * groups,
            "group parameter count mismatch"
        );
        assert!(
            outer_scale.is_finite() && outer_scale > 0.0,
            "invalid outer scale"
        );
        Self {
            rows,
            cols,
            bits,
            group_size,
            packed,
            params,
            outer_scale,
        }
    }

    /// The packed second-stage codes.
    pub fn packed(&self) -> &PackedCodes {
        &self.packed
    }

    /// Mutable access to the packed codes — the fault-injection hook for
    /// bit-flip campaigns against resident cache pages. Mutations keep
    /// the block structurally valid (every byte pattern decodes), but the
    /// stored values change; integrity is the checksum layer's job.
    pub fn packed_mut(&mut self) -> &mut PackedCodes {
        &mut self.packed
    }

    /// Integer-only dequantization back to INT8 codes with the original
    /// stage-1 scale: `q̂¹ = clamp((q² + z)·s, −127, 127)`.
    pub fn dequantize_to_int8(&self) -> SymQuantized {
        let groups_per_channel = if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.group_size)
        };
        let mut out = vec![0i8; self.rows * self.cols];
        let mut idx = 0;
        for c in 0..self.cols {
            for g in 0..groups_per_channel {
                let p = self.params[c * groups_per_channel + g];
                let start = g * self.group_size;
                let len = self.group_size.min(self.rows - start);
                for r in start..start + len {
                    let q2 = self.packed.get(idx) as i32;
                    idx += 1;
                    let q1 = ((q2 + p.zero as i32) * p.scale as i32).clamp(-127, 127);
                    out[r * self.cols + c] = q1 as i8;
                }
            }
        }
        SymQuantized::from_parts(out, self.outer_scale, self.rows, self.cols)
    }

    /// Full dequantization to f32.
    pub fn dequantize(&self) -> Matrix {
        self.dequantize_to_int8().dequantize()
    }

    /// Tile shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of token rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of channels.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Code bit width (INT4 or INT2).
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Token-group size of the channel-wise second stage.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Stage-1 f32 scale.
    pub fn outer_scale(&self) -> f32 {
        self.outer_scale
    }

    /// Per-group integer parameters, channel-major.
    pub fn group_params(&self) -> &[GroupParams] {
        &self.params
    }

    /// Physical storage: packed codes + 2 bytes per group (INT8 scale and
    /// zero) + the stage-1 f32 scale.
    pub fn storage_bytes(&self) -> usize {
        self.packed.storage_bytes() + 2 * self.params.len() + std::mem::size_of::<f32>()
    }

    /// Storage of the same tile in FP16, for compression-ratio reporting.
    pub fn fp16_reference_bytes(&self) -> usize {
        2 * self.rows * self.cols
    }

    /// Compression ratio versus FP16 storage.
    pub fn compression_ratio(&self) -> f64 {
        self.fp16_reference_bytes() as f64 / self.storage_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{max_abs_error, mse, TensorRng};

    #[test]
    fn div_round_matches_f32_round() {
        for a in -300i32..=300 {
            for b in [1, 2, 3, 7, 15, 16] {
                let expect = (a as f32 / b as f32).round() as i32;
                // f32::round rounds half away from zero, matching div_round.
                assert_eq!(div_round(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn int4_round_trip_is_tight() {
        let mut rng = TensorRng::new(21);
        let m = rng.normal(64, 32, 0.0, 1.0);
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 64);
        let back = pq.dequantize();
        // INT4 over an INT8 range of ~238 gives steps of ~16 INT8 units;
        // worst-case error ~ (16/2 + 0.5) * outer_scale.
        let bound = 16.0 * pq.outer_scale();
        assert!(max_abs_error(&m, &back) <= bound);
    }

    #[test]
    fn int2_round_trip_is_coarser_but_bounded() {
        let mut rng = TensorRng::new(22);
        let m = rng.normal(64, 32, 0.0, 1.0);
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int2, 64);
        let e2 = mse(&m, &pq.dequantize());
        let pq4 = ProgressiveBlock::quantize(&m, BitWidth::Int4, 64);
        let e4 = mse(&m, &pq4.dequantize());
        assert!(e4 < e2, "INT4 ({e4}) must beat INT2 ({e2})");
        assert!(max_abs_error(&m, &pq.dequantize()) <= 44.0 * pq.outer_scale());
    }

    #[test]
    fn constant_tile_round_trips_exactly_through_int8() {
        let m = Matrix::filled(16, 4, 2.5);
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 8);
        let q1 = pq.dequantize_to_int8();
        // All codes identical -> reconstruction equals stage-1 value.
        let back = q1.dequantize();
        for &v in back.as_slice() {
            assert!((v - 2.5).abs() < 2.5 / SYM_INT8_DIVISOR);
        }
    }

    #[test]
    fn dequantize_to_int8_is_integer_consistent() {
        // Every reconstructed INT8 code must equal (q2 + z) * s exactly.
        let mut rng = TensorRng::new(23);
        let m = rng.normal(32, 8, 0.0, 3.0);
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 16);
        let q1 = pq.dequantize_to_int8();
        let groups = 32usize.div_ceil(16);
        let mut idx = 0;
        for c in 0..8 {
            for g in 0..groups {
                let p = pq.group_params()[c * groups + g];
                for r in g * 16..(g * 16 + 16) {
                    let q2 = pq.packed.get(idx) as i32;
                    idx += 1;
                    let expect = ((q2 + p.zero as i32) * p.scale as i32).clamp(-127, 127);
                    assert_eq!(q1.codes()[r * 8 + c] as i32, expect);
                }
            }
        }
    }

    #[test]
    fn channel_outliers_do_not_pollute_other_channels() {
        let mut rng = TensorRng::new(24);
        let m = rng.normal_with_channel_outliers(64, 16, 1.0, &[5], 40.0);
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 64);
        let back = pq.dequantize();
        // Error on a non-outlier channel should reflect that channel's own
        // range, not the outlier channel's. Stage 1 is per-tile so the outer
        // scale is inflated; the channel-wise stage-2 params keep per-channel
        // code resolution. The residual error must stay well below the
        // outlier channel's magnitude.
        let mut err_nonoutlier = 0.0f32;
        for r in 0..64 {
            for c in 0..16 {
                if c != 5 {
                    err_nonoutlier = err_nonoutlier.max((m.get(r, c) - back.get(r, c)).abs());
                }
            }
        }
        assert!(err_nonoutlier < 4.0, "non-outlier error {err_nonoutlier}");
    }

    #[test]
    fn ragged_rows_and_groups() {
        let mut rng = TensorRng::new(25);
        let m = rng.normal(37, 5, 0.0, 1.0); // 37 rows, group 16 -> 3 ragged groups
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 16);
        assert_eq!(pq.shape(), (37, 5));
        let back = pq.dequantize();
        assert!(max_abs_error(&m, &back) <= 16.0 * pq.outer_scale());
    }

    #[test]
    fn storage_is_compressed_vs_fp16() {
        let mut rng = TensorRng::new(26);
        let m = rng.normal(128, 128, 0.0, 1.0);
        let pq4 = ProgressiveBlock::quantize(&m, BitWidth::Int4, 64);
        let pq2 = ProgressiveBlock::quantize(&m, BitWidth::Int2, 64);
        assert!(pq4.compression_ratio() > 3.5, "{}", pq4.compression_ratio());
        assert!(pq2.compression_ratio() > 6.5, "{}", pq2.compression_ratio());
    }

    #[test]
    fn progressive_beats_or_matches_direct_int4_with_outliers() {
        // With per-channel outliers, channelwise progressive INT4 should be
        // comparable to direct channelwise INT4 and much better than
        // per-tile direct INT4.
        let mut rng = TensorRng::new(27);
        let m = rng.normal_with_channel_outliers(64, 32, 1.0, &[3, 19], 25.0);
        let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 64);
        let e_pq = mse(&m, &pq.dequantize());
        // Direct per-tile (single group spanning everything) INT4:
        let flat = crate::asymmetric::AsymQuantized::quantize(m.as_slice(), BitWidth::Int4);
        let direct = Matrix::from_vec(64, 32, flat.dequantize());
        let e_direct = mse(&m, &direct);
        assert!(e_pq < e_direct / 2.0, "pq {e_pq} vs direct {e_direct}");
    }

    #[test]
    #[should_panic(expected = "narrower than INT8")]
    fn int8_second_stage_panics() {
        let m = Matrix::zeros(4, 4);
        ProgressiveBlock::quantize(&m, BitWidth::Int8, 4);
    }

    #[test]
    fn try_quantize_screens_non_finite() {
        let mut m = Matrix::filled(8, 4, 1.0);
        m.set(3, 2, f32::NAN);
        assert_eq!(
            ProgressiveBlock::try_quantize(&m, BitWidth::Int4, 8),
            Err(QuantError::NonFiniteInput)
        );
        m.set(3, 2, f32::INFINITY);
        assert_eq!(
            ProgressiveBlock::try_quantize(&m, BitWidth::Int4, 8),
            Err(QuantError::NonFiniteInput)
        );
    }

    #[test]
    fn try_quantize_detects_scale_overflow() {
        // max|x| near f32::MAX makes the stage-1 scale too large to
        // dequantize: 127 * scale would overflow to Inf.
        let m = Matrix::filled(8, 4, f32::MAX);
        assert_eq!(
            ProgressiveBlock::try_quantize(&m, BitWidth::Int4, 8),
            Err(QuantError::ScaleOverflow)
        );
    }

    #[test]
    fn try_quantize_accepts_ordinary_tiles() {
        let mut rng = TensorRng::new(28);
        let m = rng.normal(32, 8, 0.0, 2.0);
        let pq = ProgressiveBlock::try_quantize(&m, BitWidth::Int4, 16).unwrap();
        assert_eq!(pq, ProgressiveBlock::quantize(&m, BitWidth::Int4, 16));
    }

    /// Tiny deterministic generator for the property tests below (keeps
    /// the crate dependency-free; splitmix64 core).
    struct CaseRng(u64);

    impl CaseRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi]` inclusive.
        fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
        }
    }

    /// Randomized round-trip property: for arbitrary INT8 tiles, the
    /// stage-2 re-quantize → dequantize pipeline (a) never panics in
    /// debug builds — i.e. the integer scale/zero always fit their `i8`
    /// storage — and (b) reconstructs every code to within `s/2` of the
    /// original, `s` being that group's integer scale (`2·|v − v̂| ≤ s`).
    /// 576 seeded cases spanning INT2/INT3/INT4, ragged shapes, ragged
    /// groups, and adversarial value patterns (full-range extremes,
    /// near-constant, alternating ±127).
    #[test]
    fn randomized_int8_round_trip_never_overflows_and_stays_within_half_scale() {
        const CASES: usize = 576;
        for case in 0..CASES {
            let mut rng = CaseRng(0xC0FFEE ^ (case as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
            let rows = rng.in_range(1, 40) as usize;
            let cols = rng.in_range(1, 9) as usize;
            let group_size = rng.in_range(1, rows as i64 + 4) as usize;
            let bits = match case % 3 {
                0 => BitWidth::Int2,
                1 => BitWidth::Int3,
                _ => BitWidth::Int4,
            };

            let codes: Vec<i8> = match case % 4 {
                // Uniform over the full symmetric INT8 range.
                0 => (0..rows * cols)
                    .map(|_| rng.in_range(-127, 127) as i8)
                    .collect(),
                // Narrow band around a random center.
                1 => {
                    let center = rng.in_range(-100, 100);
                    let spread = rng.in_range(0, 12);
                    (0..rows * cols)
                        .map(|_| {
                            rng.in_range(center - spread, center + spread).clamp(-127, 127) as i8
                        })
                        .collect()
                }
                // Alternating extremes: the widest possible gap (254), the
                // worst case for the ceiling-division scale.
                2 => (0..rows * cols)
                    .map(|i| if i % 2 == 0 { -127i8 } else { 127 })
                    .collect(),
                // Constant tile at a random value (gap 0, scale floor 1).
                _ => {
                    let v = rng.in_range(-127, 127) as i8;
                    vec![v; rows * cols]
                }
            };

            let q1 = SymQuantized::from_parts(codes.clone(), 0.01, rows, cols);
            // (a) Must not panic: in debug builds an i8 overflow in the
            // `s as i8` / `z as i8` stores would abort here.
            let pq = ProgressiveBlock::quantize_from_int8(&q1, bits, group_size);
            let back = pq.dequantize_to_int8();

            let groups = rows.div_ceil(group_size);
            for (gi, p) in pq.group_params().iter().enumerate() {
                assert!(
                    p.scale >= 1,
                    "case {case}: group {gi} scale {} not positive",
                    p.scale
                );
            }
            // (b) Per-code reconstruction error ≤ s/2 (integer check).
            for r in 0..rows {
                for c in 0..cols {
                    let g = r / group_size;
                    let s = pq.group_params()[c * groups + g].scale as i32;
                    let v = codes[r * cols + c] as i32;
                    let v_hat = back.codes()[r * cols + c] as i32;
                    assert!(
                        2 * (v - v_hat).abs() <= s,
                        "case {case} ({bits:?}, {rows}x{cols}, group {group_size}): \
                         code at ({r},{c}) was {v}, came back {v_hat}, scale {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_range_extremes_saturate_scale_within_i8() {
        // gap = 254: the largest integer scale each width can produce.
        // ceil(254/3) = 85 (INT2), ceil(254/7) = 37 (INT3),
        // ceil(254/15) = 17 (INT4) — all comfortably inside i8.
        for (bits, expect) in [
            (BitWidth::Int2, 85i8),
            (BitWidth::Int3, 37),
            (BitWidth::Int4, 17),
        ] {
            let codes: Vec<i8> = (0..32).map(|i| if i % 2 == 0 { -127 } else { 127 }).collect();
            let q1 = SymQuantized::from_parts(codes, 1.0, 32, 1);
            let pq = ProgressiveBlock::quantize_from_int8(&q1, bits, 32);
            assert_eq!(pq.group_params().len(), 1);
            assert_eq!(pq.group_params()[0].scale, expect, "{bits:?}");
        }
    }

    #[test]
    fn packed_mut_round_trips_through_bit_flip() {
        let mut rng = TensorRng::new(29);
        let m = rng.normal(16, 4, 0.0, 1.0);
        let mut pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 16);
        let clean = pq.dequantize();
        pq.packed_mut().bytes_mut()[0] ^= 0x0F;
        // Still decodes without panicking; values differ.
        assert_ne!(pq.dequantize(), clean);
    }
}
