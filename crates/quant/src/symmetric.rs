//! Symmetric INT8 quantization (first BPQ stage).
//!
//! Algorithm 1 quantizes each FlashAttention tile with a single scale
//! `s = max(abs(X)) / 119` and no zero point, so that tile×tile matmuls run
//! on the INT8 path with only a scalar `s_a · s_b` correction — none of the
//! cross terms of Equation 5 appear.
//!
//! The divisor 119 (rather than 127) leaves headroom so that values slightly
//! above the observed block maximum — e.g. later tokens entering the
//! enhanced KV buffer under its *universal scale* policy — can be clamped
//! instead of forcing a recompression of the whole block.

use turbo_tensor::Matrix;

/// The paper's symmetric INT8 scale divisor: `s = max|x| / 119`.
pub const SYM_INT8_DIVISOR: f32 = 119.0;

/// A symmetrically INT8-quantized matrix block.
///
/// Stores the integer codes row-major along with the single f32 scale.
/// Dequantization is `x̂ = q · scale`.
///
/// # Example
///
/// ```
/// use turbo_tensor::Matrix;
/// use turbo_quant::SymQuantized;
///
/// let m = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
/// let q = SymQuantized::quantize(&m);
/// let back = q.dequantize();
/// assert!((back.get(0, 1) + 2.0).abs() < 0.02);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SymQuantized {
    data: Vec<i8>,
    scale: f32,
    rows: usize,
    cols: usize,
}

impl SymQuantized {
    /// Quantizes a block with the paper's `max|x| / 119` rule.
    ///
    /// An all-zero block gets `scale = 1.0` so that dequantization is exact.
    pub fn quantize(x: &Matrix) -> Self {
        Self::quantize_with_divisor(x, SYM_INT8_DIVISOR)
    }

    /// Quantizes with an explicit divisor (127 for full-range symmetric
    /// quantization; 119 for the paper's head-room variant).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is not a positive finite value ≤ 127.
    pub fn quantize_with_divisor(x: &Matrix, divisor: f32) -> Self {
        assert!(
            divisor.is_finite() && divisor > 0.0 && divisor <= 127.0,
            "divisor must be in (0, 127]"
        );
        let abs_max = x.abs_max();
        let scale = if abs_max == 0.0 {
            1.0
        } else {
            abs_max / divisor
        };
        Self::quantize_with_scale(x, scale)
    }

    /// Quantizes with a pre-chosen scale, clamping codes to `[-127, 127]`.
    ///
    /// This is the primitive behind the enhanced KV buffer's *universal
    /// scale*: new tokens reuse the existing scale and out-of-range values
    /// are clamped rather than triggering recompression (subsection 3.3).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a positive finite value.
    pub fn quantize_with_scale(x: &Matrix, scale: f32) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let mut data = vec![0i8; x.len()];
        encode_sym(x.as_slice(), scale, &mut data);
        Self {
            data,
            scale,
            rows: x.rows(),
            cols: x.cols(),
        }
    }

    /// Wraps existing INT8 codes (e.g. produced by integer dequantization
    /// of a progressive block) with their scale.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or the scale is invalid.
    pub fn from_parts(data: Vec<i8>, scale: f32, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "code length mismatch");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Self {
            data,
            scale,
            rows,
            cols,
        }
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// The f32 scale `s` with `x̂ = q · s`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of rows (tokens).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (channels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reconstructs the f32 block.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
    }

    /// Rows `[start, start+len)` of the codes, row-major.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the block.
    pub fn code_rows(&self, start: usize, len: usize) -> &[i8] {
        assert!(start + len <= self.rows, "row range out of bounds");
        &self.data[start * self.cols..(start + len) * self.cols]
    }

    /// Storage footprint in bytes: codes plus one f32 scale.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<f32>()
    }
}

/// Quantizes a raw slice symmetrically with the paper's divisor, returning
/// `(codes, scale)` — the slice-level primitive used inside fused kernels
/// where constructing a [`Matrix`] would be wasteful.
pub fn quantize_slice_sym(x: &[f32]) -> (Vec<i8>, f32) {
    let mut codes = Vec::new();
    let scale = quantize_slice_sym_into(x, &mut codes);
    (codes, scale)
}

/// Allocation-free sibling of [`quantize_slice_sym`]: writes the codes
/// into `out` (cleared and resized — no reallocation once `out` has
/// capacity) and returns the scale. Produces bit-identical codes and
/// scale to [`quantize_slice_sym`] and to [`SymQuantized::quantize`] on a
/// matrix with the same element order.
pub fn quantize_slice_sym_into(x: &[f32], out: &mut Vec<i8>) -> f32 {
    let abs_max = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if abs_max == 0.0 {
        1.0
    } else {
        abs_max / SYM_INT8_DIVISOR
    };
    out.clear();
    out.resize(x.len(), 0);
    encode_sym(x, scale, out);
    scale
}

/// The shared encode pass behind every symmetric quantizer here:
/// `(v / scale).round().clamp(-127, 127) as i8` per element, dispatched
/// to the vectorized arm ([`turbo_tensor::simd::quantize_i8_row_on`])
/// when one is available — bit-identical to the scalar expression on
/// every arm (true division, round half away from zero, NaN → 0).
///
/// The abs-max *scale* fold stays scalar by design: it folds with
/// `f32::max`, whose NaN-skipping semantics (`m.max(NaN) == m`) would
/// need per-lane replication for no measurable win — the encode division
/// pass dominates the cost.
fn encode_sym(x: &[f32], scale: f32, out: &mut [i8]) {
    if !turbo_tensor::simd::quantize_i8_row_on(turbo_tensor::simd_level(), x, scale, out) {
        for (o, &v) in out.iter_mut().zip(x) {
            *o = (v / scale).round().clamp(-127.0, 127.0) as i8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{max_abs_error, TensorRng};

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let mut rng = TensorRng::new(11);
        let m = rng.normal(64, 64, 0.0, 2.0);
        let q = SymQuantized::quantize(&m);
        let back = q.dequantize();
        // Max error of round-to-nearest is scale/2.
        assert!(max_abs_error(&m, &back) <= q.scale() * 0.5 + 1e-6);
    }

    #[test]
    fn extreme_value_maps_to_119() {
        let m = Matrix::from_rows(&[&[10.0, -10.0, 0.0]]);
        let q = SymQuantized::quantize(&m);
        assert_eq!(q.codes(), &[119, -119, 0]);
        assert!((q.scale() - 10.0 / 119.0).abs() < 1e-7);
    }

    #[test]
    fn divisor_127_uses_full_range() {
        let m = Matrix::from_rows(&[&[1.0, -1.0]]);
        let q = SymQuantized::quantize_with_divisor(&m, 127.0);
        assert_eq!(q.codes(), &[127, -127]);
    }

    #[test]
    fn zero_block_round_trips_exactly() {
        let m = Matrix::zeros(4, 4);
        let q = SymQuantized::quantize(&m);
        assert_eq!(q.dequantize(), m);
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn universal_scale_clamps_outliers() {
        let m = Matrix::from_rows(&[&[1000.0, -1000.0, 1.0]]);
        let q = SymQuantized::quantize_with_scale(&m, 1.0);
        assert_eq!(q.codes(), &[127, -127, 1]);
    }

    #[test]
    fn code_rows_slices_tokens() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let q = SymQuantized::quantize_with_scale(&m, 1.0);
        assert_eq!(q.code_rows(1, 2), &[2, 3, 4, 5]);
    }

    #[test]
    fn storage_accounting() {
        let q = SymQuantized::quantize(&Matrix::zeros(8, 8));
        assert_eq!(q.storage_bytes(), 64 + 4);
    }

    #[test]
    fn slice_quantizer_matches_matrix_quantizer() {
        let m = Matrix::from_rows(&[&[0.3, -0.7, 2.5, 0.0]]);
        let (codes, scale) = quantize_slice_sym(m.as_slice());
        let q = SymQuantized::quantize(&m);
        assert_eq!(codes, q.codes());
        assert_eq!(scale, q.scale());
    }

    #[test]
    fn into_variant_matches_and_reuses_capacity() {
        let mut rng = TensorRng::new(12);
        let m = rng.normal(8, 8, 0.0, 1.5);
        let (codes, scale) = quantize_slice_sym(m.as_slice());
        let mut buf = Vec::new();
        let s2 = quantize_slice_sym_into(m.as_slice(), &mut buf);
        assert_eq!(codes, buf);
        assert_eq!(scale, s2);
        // A second call into the same buffer must not grow capacity.
        let cap = buf.capacity();
        quantize_slice_sym_into(m.as_slice(), &mut buf);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn invalid_scale_panics() {
        SymQuantized::quantize_with_scale(&Matrix::zeros(1, 1), 0.0);
    }

    #[test]
    fn encode_edge_values_match_the_scalar_contract() {
        // Pin the dispatched encode against the scalar expression on the
        // values where a vector arm could plausibly diverge: exact .5
        // midpoints (round half away, not half even), NaN (→ 0 like
        // Rust's saturating cast), ±inf (clamp), and ragged lengths.
        for len in [1usize, 7, 31, 32, 33, 100] {
            let x: Vec<f32> = (0..len)
                .map(|j| match j % 7 {
                    0 => 2.5,
                    1 => -2.5,
                    2 => f32::NAN,
                    3 => f32::INFINITY,
                    4 => f32::NEG_INFINITY,
                    5 => 0.49999997, // largest f32 below 0.5
                    _ => (j as f32 - 50.0) * 0.73,
                })
                .collect();
            let q = SymQuantized::quantize_with_scale(
                &Matrix::from_vec(1, len, x.clone()),
                1.0,
            );
            for (j, &v) in x.iter().enumerate() {
                let want = (v / 1.0f32).round().clamp(-127.0, 127.0) as i8;
                assert_eq!(q.codes()[j], want, "len {len} j {j} v {v}");
            }
            assert_eq!(q.codes()[0], 3, "2.5 must round away from zero");
            if len > 1 {
                assert_eq!(q.codes()[1], -3, "-2.5 must round away from zero");
            }
        }
    }
}
