//! # turbo-quant
//!
//! Quantization substrate for the TurboAttention reproduction.
//!
//! Implements every numeric-compression primitive the paper relies on:
//!
//! * [`symmetric`] — per-tensor/per-block symmetric INT8 quantization with
//!   the paper's `max(abs(X)) / 119` scale rule (Algorithm 1), used for the
//!   first stage of Blockwise Progressive Quantization and for queries and
//!   attention probabilities.
//! * [`asymmetric`] — min/max asymmetric quantization to arbitrary bit
//!   widths with floating-point parameters, as used by the KIVI/GEAR
//!   baselines and by direct (non-progressive) low-bit quantization.
//! * [`progressive`] — the second BPQ stage: channel-wise *integer*
//!   asymmetric re-quantization of INT8 tensors down to INT4/INT2
//!   (Equation 10), with pure-integer dequantization back to INT8.
//! * [`packing`] — bit-packing of 4-bit and 2-bit codes into bytes, with
//!   exact storage accounting used for the KV-cache compression-ratio
//!   results.
//! * [`error`] — quantize→dequantize round-trip error measurement across
//!   granularities (token-wise vs channel-wise grouping, Figure 10).
//! * [`rotation`] — QuaRot-style Hadamard rotation, the orthogonal
//!   outlier-smearing transform Table 1 lists as composable with
//!   TurboAttention.
//!
//! # Example
//!
//! ```
//! use turbo_tensor::Matrix;
//! use turbo_quant::{BitWidth, progressive::ProgressiveBlock};
//!
//! let block = Matrix::from_fn(64, 16, |r, c| ((r * 31 + c * 17) % 23) as f32 / 7.0 - 1.5);
//! let pq = ProgressiveBlock::quantize(&block, BitWidth::Int4, 32);
//! let restored = pq.dequantize();
//! assert!(turbo_tensor::max_abs_error(&block, &restored) < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymmetric;
pub mod bitwidth;
pub mod error;
pub mod packing;
pub mod progressive;
pub mod rotation;
pub mod symmetric;

pub use asymmetric::{AsymParams, AsymQuantized};
pub use bitwidth::BitWidth;
pub use error::{quant_error_channelwise, quant_error_tokenwise, QuantErrorReport};
pub use packing::PackedCodes;
pub use progressive::{ProgressiveBlock, QuantError};
pub use rotation::{fht, hadamard_rotate};
pub use symmetric::{quantize_slice_sym, quantize_slice_sym_into, SymQuantized, SYM_INT8_DIVISOR};
