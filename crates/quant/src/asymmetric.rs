//! Asymmetric (min/max) quantization with floating-point parameters.
//!
//! This is the classic KV-cache quantization scheme used by the KIVI and
//! GEAR baselines and by direct-to-INT4 quantization (the non-progressive
//! alternative ablated in the benches): codes are unsigned,
//! `q = round((x − min) / s)` with `s = (max − min) / (2^bits − 1)`, and
//! dequantization is `x̂ = q · s + min`.
//!
//! Grouping is expressed by quantizing 1-D slices; callers choose whether a
//! slice is a token row, a channel column, or a sub-group of either
//! (see [`crate::error`] for granularity comparisons).

use crate::bitwidth::BitWidth;
use turbo_tensor::Matrix;

/// Scale and zero point of one asymmetric quantization group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsymParams {
    /// Step size `s = (max − min) / (levels − 1)`; 1.0 for constant groups.
    pub scale: f32,
    /// Zero point `z = min`, so `x̂ = q·s + z`.
    pub zero: f32,
}

impl AsymParams {
    /// Derives parameters from the extrema of a group.
    ///
    /// A degenerate group (`max == min`) gets `scale = 1.0` so round trips
    /// are exact.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either is non-finite.
    pub fn from_min_max(min: f32, max: f32, bits: BitWidth) -> Self {
        assert!(min.is_finite() && max.is_finite(), "non-finite extrema");
        assert!(min <= max, "min {min} > max {max}");
        let range = max - min;
        let scale = if range == 0.0 {
            1.0
        } else {
            range / (bits.levels() - 1) as f32
        };
        AsymParams { scale, zero: min }
    }

    /// Quantizes one value to an unsigned code, clamped to the code range.
    #[inline]
    pub fn encode(&self, x: f32, bits: BitWidth) -> u8 {
        ((x - self.zero) / self.scale)
            .round()
            .clamp(0.0, bits.max_code() as f32) as u8
    }

    /// Dequantizes one code.
    #[inline]
    pub fn decode(&self, q: u8) -> f32 {
        q as f32 * self.scale + self.zero
    }
}

/// An asymmetrically quantized vector group.
///
/// # Example
///
/// ```
/// use turbo_quant::{AsymQuantized, BitWidth};
///
/// let xs = [0.0, 0.5, 1.0, 1.5];
/// let q = AsymQuantized::quantize(&xs, BitWidth::Int4);
/// let back = q.dequantize();
/// for (x, y) in xs.iter().zip(&back) {
///     assert!((x - y).abs() < 0.06);
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct AsymQuantized {
    codes: Vec<u8>,
    params: AsymParams,
    bits: BitWidth,
}

impl AsymQuantized {
    /// Quantizes a group of values at the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-finite values.
    pub fn quantize(xs: &[f32], bits: BitWidth) -> Self {
        assert!(!xs.is_empty(), "cannot quantize an empty group");
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &x in xs {
            assert!(x.is_finite(), "non-finite input {x}");
            min = min.min(x);
            max = max.max(x);
        }
        let params = AsymParams::from_min_max(min, max, bits);
        let codes = xs.iter().map(|&x| params.encode(x, bits)).collect();
        AsymQuantized {
            codes,
            params,
            bits,
        }
    }

    /// The unsigned codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Scale/zero parameters.
    pub fn params(&self) -> AsymParams {
        self.params
    }

    /// Bit width of the codes.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Reconstructs the group.
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes.iter().map(|&q| self.params.decode(q)).collect()
    }

    /// Worst-case absolute reconstruction error, `scale / 2`.
    pub fn half_step(&self) -> f32 {
        self.params.scale * 0.5
    }

    /// Packed storage footprint in bytes: codes at `bits` width plus two
    /// f16-equivalent parameters (2 bytes each), matching how KIVI-style
    /// caches account their overhead.
    pub fn storage_bytes(&self) -> usize {
        self.bits.packed_bytes(self.codes.len()) + 4
    }
}

/// Quantize→dequantize an entire matrix with per-row (token-wise) groups of
/// width `group`, returning the reconstruction.
///
/// # Panics
///
/// Panics if `group == 0`.
pub fn fake_quant_tokenwise(m: &Matrix, bits: BitWidth, group: usize) -> Matrix {
    assert!(group > 0, "group size must be positive");
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        for (g, chunk) in row.chunks(group).enumerate() {
            let q = AsymQuantized::quantize(chunk, bits);
            let back = q.dequantize();
            out.row_mut(r)[g * group..g * group + chunk.len()].copy_from_slice(&back);
        }
    }
    out
}

/// Quantize→dequantize with per-column (channel-wise) groups of `group`
/// consecutive tokens, returning the reconstruction.
///
/// # Panics
///
/// Panics if `group == 0`.
pub fn fake_quant_channelwise(m: &Matrix, bits: BitWidth, group: usize) -> Matrix {
    assert!(group > 0, "group size must be positive");
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for c in 0..m.cols() {
        let col = m.col(c);
        for (g, chunk) in col.chunks(group).enumerate() {
            let q = AsymQuantized::quantize(chunk, bits);
            let back = q.dequantize();
            for (i, v) in back.iter().enumerate() {
                out.set(g * group + i, c, *v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    #[test]
    fn params_from_min_max() {
        let p = AsymParams::from_min_max(-1.0, 2.0, BitWidth::Int4);
        assert!((p.scale - 3.0 / 15.0).abs() < 1e-7);
        assert_eq!(p.zero, -1.0);
    }

    #[test]
    fn encode_extremes_hit_code_bounds() {
        let p = AsymParams::from_min_max(-1.0, 2.0, BitWidth::Int2);
        assert_eq!(p.encode(-1.0, BitWidth::Int2), 0);
        assert_eq!(p.encode(2.0, BitWidth::Int2), 3);
        // Out-of-range values clamp.
        assert_eq!(p.encode(100.0, BitWidth::Int2), 3);
        assert_eq!(p.encode(-100.0, BitWidth::Int2), 0);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = TensorRng::new(3);
        let xs: Vec<f32> = (0..256).map(|_| rng.standard_normal() * 4.0).collect();
        for bits in [BitWidth::Int2, BitWidth::Int4, BitWidth::Int8] {
            let q = AsymQuantized::quantize(&xs, bits);
            let back = q.dequantize();
            for (x, y) in xs.iter().zip(&back) {
                assert!(
                    (x - y).abs() <= q.half_step() + 1e-5,
                    "{bits}: |{x} - {y}| > {}",
                    q.half_step()
                );
            }
        }
    }

    #[test]
    fn constant_group_is_exact() {
        let xs = [3.25; 10];
        let q = AsymQuantized::quantize(&xs, BitWidth::Int2);
        assert_eq!(q.dequantize(), xs.to_vec());
    }

    #[test]
    fn int8_beats_int4_beats_int2() {
        let mut rng = TensorRng::new(5);
        let xs: Vec<f32> = (0..512).map(|_| rng.standard_normal()).collect();
        let err = |bits| {
            let q = AsymQuantized::quantize(&xs, bits);
            let back = q.dequantize();
            xs.iter()
                .zip(&back)
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
        };
        let (e2, e4, e8) = (
            err(BitWidth::Int2),
            err(BitWidth::Int4),
            err(BitWidth::Int8),
        );
        assert!(e8 < e4 && e4 < e2, "e2={e2} e4={e4} e8={e8}");
    }

    #[test]
    fn tokenwise_and_channelwise_agree_on_transpose() {
        // Channel-wise quantization of M == token-wise quantization of Mᵀ.
        let mut rng = TensorRng::new(9);
        let m = rng.normal(32, 16, 0.0, 1.0);
        let cw = fake_quant_channelwise(&m, BitWidth::Int4, 8);
        let tw_t = fake_quant_tokenwise(&m.transpose(), BitWidth::Int4, 8).transpose();
        assert_eq!(cw, tw_t);
    }

    #[test]
    fn channelwise_wins_with_channel_outliers() {
        let mut rng = TensorRng::new(13);
        let m = rng.normal_with_channel_outliers(128, 32, 1.0, &[2, 17], 30.0);
        let cw = fake_quant_channelwise(&m, BitWidth::Int4, 32);
        let tw = fake_quant_tokenwise(&m, BitWidth::Int4, 32);
        let e_cw = turbo_tensor::mse(&m, &cw);
        let e_tw = turbo_tensor::mse(&m, &tw);
        assert!(
            e_cw < e_tw / 2.0,
            "channelwise {e_cw} should be well below tokenwise {e_tw}"
        );
    }

    #[test]
    fn storage_accounting_packs_codes() {
        let xs = [0.0f32; 64];
        let q = AsymQuantized::quantize(&xs, BitWidth::Int2);
        assert_eq!(q.storage_bytes(), 16 + 4);
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        AsymQuantized::quantize(&[], BitWidth::Int4);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_input_panics() {
        AsymQuantized::quantize(&[f32::NAN], BitWidth::Int4);
    }
}
