//! Quantization-error measurement across granularities.
//!
//! Backs Figure 10 (channel-wise vs token-wise group quantization error)
//! and the Appendix D distribution analysis: given an activation matrix,
//! quantize→dequantize under each granularity and report the error.

use crate::asymmetric::{fake_quant_channelwise, fake_quant_tokenwise};
use crate::bitwidth::BitWidth;
use turbo_tensor::{mse, Matrix};

/// Error summary of one quantize→dequantize experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantErrorReport {
    /// Bit width used.
    pub bits: BitWidth,
    /// Group size used.
    pub group: usize,
    /// Mean squared reconstruction error.
    pub mse: f64,
    /// Maximum absolute reconstruction error.
    pub max_abs: f32,
}

/// Token-wise (per-row groups) fake-quant error at `bits`/`group`.
pub fn quant_error_tokenwise(m: &Matrix, bits: BitWidth, group: usize) -> QuantErrorReport {
    let back = fake_quant_tokenwise(m, bits, group);
    QuantErrorReport {
        bits,
        group,
        mse: mse(m, &back),
        max_abs: turbo_tensor::max_abs_error(m, &back),
    }
}

/// Channel-wise (per-column groups) fake-quant error at `bits`/`group`.
pub fn quant_error_channelwise(m: &Matrix, bits: BitWidth, group: usize) -> QuantErrorReport {
    let back = fake_quant_channelwise(m, bits, group);
    QuantErrorReport {
        bits,
        group,
        mse: mse(m, &back),
        max_abs: turbo_tensor::max_abs_error(m, &back),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    #[test]
    fn reports_carry_configuration() {
        let m = TensorRng::new(1).normal(32, 32, 0.0, 1.0);
        let r = quant_error_tokenwise(&m, BitWidth::Int4, 16);
        assert_eq!(r.bits, BitWidth::Int4);
        assert_eq!(r.group, 16);
        assert!(r.mse > 0.0);
        assert!(r.max_abs > 0.0);
    }

    #[test]
    fn smaller_groups_reduce_error() {
        let m = TensorRng::new(2).normal(128, 64, 0.0, 1.0);
        let big = quant_error_tokenwise(&m, BitWidth::Int2, 64);
        let small = quant_error_tokenwise(&m, BitWidth::Int2, 8);
        assert!(small.mse < big.mse);
    }

    #[test]
    fn figure_10_shape_channelwise_beats_tokenwise_on_outlier_channels() {
        // The paper's Figure 10: with channel-dimension outliers (as in
        // Phi-3's value cache), channel-wise grouping has lower error.
        let m = TensorRng::new(3).normal_with_channel_outliers(256, 64, 1.0, &[1, 30, 47], 25.0);
        for bits in [BitWidth::Int2, BitWidth::Int4] {
            let cw = quant_error_channelwise(&m, bits, 64);
            let tw = quant_error_tokenwise(&m, bits, 64);
            assert!(
                cw.mse < tw.mse,
                "{bits}: channelwise {} should beat tokenwise {}",
                cw.mse,
                tw.mse
            );
        }
    }

    #[test]
    fn tokenwise_wins_with_token_outliers() {
        // Sanity inversion: outliers along tokens favour token-wise groups.
        let t = TensorRng::new(4)
            .normal_with_channel_outliers(64, 256, 1.0, &[7, 50], 25.0)
            .transpose(); // outlier *rows* now
        let cw = quant_error_channelwise(&t, BitWidth::Int4, 64);
        let tw = quant_error_tokenwise(&t, BitWidth::Int4, 64);
        assert!(tw.mse < cw.mse);
    }
}
