//! Seeded chaos plans for crash-consistency soak testing.
//!
//! A [`ChaosPlan`] is a deterministic, time-ordered script of adverse
//! events — replica kills, WAL truncations, activation-fault injections,
//! HBM pressure spikes — generated entirely from a seed. The plan is
//! *pure data*: this crate only decides **what** goes wrong and **when**;
//! the serving layer (`turbo-gpusim`'s replica set) and the soak harness
//! decide how each action is applied. That split keeps the dependency
//! graph clean (robust sits below kvcache/gpusim) and makes every chaos
//! episode replayable byte-for-byte from its seed.

use crate::fault::FaultInjector;

/// One adverse action a chaos episode can take.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosAction {
    /// Hard-kill a replica mid-flight. The crash tears its write-ahead
    /// log at `wal_cut` (a fraction in `[0, 1)` of the WAL body — an
    /// arbitrary byte offset, not a record boundary).
    KillReplica {
        /// Which replica dies.
        replica: usize,
        /// Fractional byte offset into the WAL body where the torn write
        /// stops.
        wal_cut: f64,
    },
    /// Gracefully restart a replica: it checkpoints, goes down briefly,
    /// and rejoins from a clean snapshot (no data loss).
    RestartReplica {
        /// Which replica restarts.
        replica: usize,
    },
    /// Silently corrupt a replica's durable WAL bytes in place (storage
    /// rot discovered only at the next recovery).
    TruncateWal {
        /// Which replica's durable log is damaged.
        replica: usize,
        /// Fractional byte offset the log is cut at.
        wal_cut: f64,
    },
    /// Poison `elements` activation values with NaN/Inf mid-decode — the
    /// PR-1 fault class, screened by the robust attention engine.
    InjectFault {
        /// How many activation elements to poison.
        elements: usize,
    },
    /// Spike memory pressure: only `usable` of HBM remains available to
    /// the serving layer from this point on.
    MemoryPressure {
        /// Usable fraction of HBM in `(0, 1]`.
        usable: f64,
    },
}

impl ChaosAction {
    /// Whether the action targets a serving replica (as opposed to the
    /// attention engine or the memory subsystem).
    pub fn targets_replica(&self) -> bool {
        matches!(
            self,
            ChaosAction::KillReplica { .. }
                | ChaosAction::RestartReplica { .. }
                | ChaosAction::TruncateWal { .. }
        )
    }
}

/// One timed action in a plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosEvent {
    /// Simulated time (seconds) the action fires at.
    pub time: f64,
    /// What happens.
    pub action: ChaosAction,
}

/// Shape of the chaos campaign a plan is drawn from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Number of replicas in the set under test (kill/restart targets).
    pub replicas: usize,
    /// Time horizon in seconds; every event lands in `(0, horizon)`.
    pub horizon: f64,
    /// Replica kills to schedule.
    pub kills: usize,
    /// Graceful restarts to schedule.
    pub restarts: usize,
    /// Silent WAL truncations to schedule.
    pub wal_truncations: usize,
    /// Activation-fault injections to schedule.
    pub faults: usize,
    /// Memory-pressure spikes to schedule.
    pub pressure_spikes: usize,
    /// Usable-HBM range pressure spikes draw from (`lo < hi`, both in
    /// `(0, 1]`).
    pub pressure_range: (f64, f64),
}

impl Default for ChaosConfig {
    /// A small but adversarial episode: two kills, one restart, one
    /// silent truncation, two fault injections, one pressure spike.
    fn default() -> Self {
        Self {
            replicas: 2,
            horizon: 60.0,
            kills: 2,
            restarts: 1,
            wal_truncations: 1,
            faults: 2,
            pressure_spikes: 1,
            pressure_range: (0.5, 0.95),
        }
    }
}

/// A deterministic, time-sorted chaos script.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// The seed the plan was generated from (replays identically).
    pub seed: u64,
    /// Events sorted by time (ties broken by generation order).
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Generates a plan from `seed`. The same `(seed, config)` pair
    /// always yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas == 0`, `config.horizon <= 0`, or the
    /// pressure range is invalid.
    pub fn generate(seed: u64, config: &ChaosConfig) -> Self {
        assert!(config.replicas > 0, "need at least one replica");
        assert!(config.horizon > 0.0, "horizon must be positive");
        let (lo, hi) = config.pressure_range;
        assert!(
            0.0 < lo && lo < hi && hi <= 1.0,
            "pressure range must satisfy 0 < lo < hi <= 1"
        );
        let mut inj = FaultInjector::new(seed);
        let draw_time = |inj: &mut FaultInjector| inj.hbm_pressure(0.01, 0.99) * config.horizon;
        let mut events = Vec::new();
        for _ in 0..config.kills {
            let time = draw_time(&mut inj);
            let replica = inj.pick(config.replicas);
            let wal_cut = inj.hbm_pressure(0.01, 0.99);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::KillReplica { replica, wal_cut },
            });
        }
        for _ in 0..config.restarts {
            let time = draw_time(&mut inj);
            let replica = inj.pick(config.replicas);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::RestartReplica { replica },
            });
        }
        for _ in 0..config.wal_truncations {
            let time = draw_time(&mut inj);
            let replica = inj.pick(config.replicas);
            let wal_cut = inj.hbm_pressure(0.01, 0.99);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::TruncateWal { replica, wal_cut },
            });
        }
        for _ in 0..config.faults {
            let time = draw_time(&mut inj);
            let elements = 1 + inj.pick(4);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::InjectFault { elements },
            });
        }
        for _ in 0..config.pressure_spikes {
            let time = draw_time(&mut inj);
            let usable = inj.hbm_pressure(lo, hi);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::MemoryPressure { usable },
            });
        }
        // Stable sort keeps generation order for equal times, so the
        // plan is a pure function of (seed, config).
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("chaos times are finite"));
        Self { seed, events }
    }

    /// Events that target serving replicas, in time order.
    pub fn replica_events(&self) -> Vec<ChaosEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.action.targets_replica())
            .collect()
    }

    /// Events the serving layer does not handle (fault injections and
    /// pressure spikes), in time order — the harness applies these.
    pub fn engine_events(&self) -> Vec<ChaosEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| !e.action.targets_replica())
            .collect()
    }

    /// The tightest memory-pressure spike in the plan, if any.
    pub fn min_pressure(&self) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e.action {
                ChaosAction::MemoryPressure { usable } => Some(usable),
                _ => None,
            })
            .min_by(|a, b| a.partial_cmp(b).expect("pressure fractions are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::default();
        let a = ChaosPlan::generate(99, &cfg);
        let b = ChaosPlan::generate(99, &cfg);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(100, &cfg);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn plan_is_sorted_and_sized() {
        let cfg = ChaosConfig {
            replicas: 3,
            kills: 4,
            restarts: 2,
            wal_truncations: 2,
            faults: 3,
            pressure_spikes: 2,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(7, &cfg);
        assert_eq!(plan.events.len(), 4 + 2 + 2 + 3 + 2);
        for w in plan.events.windows(2) {
            assert!(w[0].time <= w[1].time, "events must be time-sorted");
        }
        for e in &plan.events {
            assert!(e.time > 0.0 && e.time < cfg.horizon);
            match e.action {
                ChaosAction::KillReplica { replica, wal_cut }
                | ChaosAction::TruncateWal { replica, wal_cut } => {
                    assert!(replica < cfg.replicas);
                    assert!((0.0..1.0).contains(&wal_cut));
                }
                ChaosAction::RestartReplica { replica } => assert!(replica < cfg.replicas),
                ChaosAction::InjectFault { elements } => assert!(elements >= 1),
                ChaosAction::MemoryPressure { usable } => {
                    assert!((cfg.pressure_range.0..cfg.pressure_range.1).contains(&usable));
                }
            }
        }
    }

    #[test]
    fn partition_covers_every_event_once() {
        let plan = ChaosPlan::generate(3, &ChaosConfig::default());
        let replica = plan.replica_events();
        let engine = plan.engine_events();
        assert_eq!(replica.len() + engine.len(), plan.events.len());
        assert!(replica.iter().all(|e| e.action.targets_replica()));
        assert!(engine.iter().all(|e| !e.action.targets_replica()));
    }

    #[test]
    fn min_pressure_picks_tightest_spike() {
        let cfg = ChaosConfig {
            pressure_spikes: 5,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(5, &cfg);
        let min = plan.min_pressure().unwrap();
        for e in &plan.events {
            if let ChaosAction::MemoryPressure { usable } = e.action {
                assert!(min <= usable);
            }
        }
        let none = ChaosPlan::generate(
            5,
            &ChaosConfig {
                pressure_spikes: 0,
                ..cfg
            },
        );
        assert_eq!(none.min_pressure(), None);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        ChaosPlan::generate(
            1,
            &ChaosConfig {
                replicas: 0,
                ..ChaosConfig::default()
            },
        );
    }
}
