//! Seeded chaos plans for crash-consistency soak testing.
//!
//! A [`ChaosPlan`] is a deterministic, time-ordered script of adverse
//! events — replica kills, WAL truncations, activation-fault injections,
//! HBM pressure spikes — generated entirely from a seed. The plan is
//! *pure data*: this crate only decides **what** goes wrong and **when**;
//! the serving layer (`turbo-gpusim`'s replica set) and the soak harness
//! decide how each action is applied. That split keeps the dependency
//! graph clean (robust sits below kvcache/gpusim) and makes every chaos
//! episode replayable byte-for-byte from its seed.

use crate::fault::FaultInjector;

/// One adverse action a chaos episode can take.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosAction {
    /// Hard-kill a replica mid-flight. The crash tears its write-ahead
    /// log at `wal_cut` (a fraction in `[0, 1)` of the WAL body — an
    /// arbitrary byte offset, not a record boundary).
    KillReplica {
        /// Which replica dies.
        replica: usize,
        /// Fractional byte offset into the WAL body where the torn write
        /// stops.
        wal_cut: f64,
    },
    /// Gracefully restart a replica: it checkpoints, goes down briefly,
    /// and rejoins from a clean snapshot (no data loss).
    RestartReplica {
        /// Which replica restarts.
        replica: usize,
    },
    /// Silently corrupt a replica's durable WAL bytes in place (storage
    /// rot discovered only at the next recovery).
    TruncateWal {
        /// Which replica's durable log is damaged.
        replica: usize,
        /// Fractional byte offset the log is cut at.
        wal_cut: f64,
    },
    /// Poison `elements` activation values with NaN/Inf mid-decode — the
    /// PR-1 fault class, screened by the robust attention engine.
    InjectFault {
        /// How many activation elements to poison.
        elements: usize,
    },
    /// Spike memory pressure: only `usable` of HBM remains available to
    /// the serving layer from this point on.
    MemoryPressure {
        /// Usable fraction of HBM in `(0, 1]`.
        usable: f64,
    },
    /// Degrade one failure domain without killing it: for `duration`
    /// seconds every replica/shard in the zone answers `latency_factor`×
    /// slower and its durable WAL silently rots at `wal_rot`. The zone
    /// keeps *succeeding* — breakers must stay closed (slow ≠ dead)
    /// while hedging and replay-budget control absorb the damage.
    DegradeZone {
        /// Which failure domain degrades (`replica % zones`).
        zone: usize,
        /// Service-time multiplier while degraded (`> 1`).
        latency_factor: f64,
        /// Fractional byte offset the zone members' durable logs rot at
        /// (discovered only at the next recovery).
        wal_rot: f64,
        /// How long the degradation window lasts, in seconds.
        duration: f64,
    },
}

impl ChaosAction {
    /// Whether the action targets a serving replica (as opposed to the
    /// attention engine or the memory subsystem).
    pub fn targets_replica(&self) -> bool {
        matches!(
            self,
            ChaosAction::KillReplica { .. }
                | ChaosAction::RestartReplica { .. }
                | ChaosAction::TruncateWal { .. }
                | ChaosAction::DegradeZone { .. }
        )
    }
}

/// One timed action in a plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosEvent {
    /// Simulated time (seconds) the action fires at.
    pub time: f64,
    /// What happens.
    pub action: ChaosAction,
}

/// Shape of the chaos campaign a plan is drawn from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Number of replicas in the set under test (kill/restart targets).
    pub replicas: usize,
    /// Time horizon in seconds; every event lands in `(0, horizon)`.
    pub horizon: f64,
    /// Replica kills to schedule.
    pub kills: usize,
    /// Graceful restarts to schedule.
    pub restarts: usize,
    /// Silent WAL truncations to schedule.
    pub wal_truncations: usize,
    /// Activation-fault injections to schedule.
    pub faults: usize,
    /// Memory-pressure spikes to schedule.
    pub pressure_spikes: usize,
    /// Usable-HBM range pressure spikes draw from (`lo < hi`, both in
    /// `(0, 1]`).
    pub pressure_range: (f64, f64),
    /// Correlated kill bursts to schedule: each burst kills several
    /// replicas at the *same* instant (a rack power event, a bad rollout
    /// hitting many hosts at once) instead of the independent kills
    /// above.
    pub bursts: usize,
    /// Fraction of the replica set each correlated burst takes down
    /// (rounded up, at least 2 victims when the set allows it).
    pub burst_kill_fraction: f64,
    /// Zone-grouped faults to schedule: replicas partition round-robin
    /// into [`ChaosConfig::zones`] zones, and one whole zone dies
    /// together (shared switch / PDU failure domain).
    pub zone_faults: usize,
    /// Failure-domain count replicas divide into (`replica % zones`).
    pub zones: usize,
    /// Pressure storms to schedule: a cluster of severe memory-pressure
    /// spikes in quick succession (noisy-neighbor stampede), drawn from
    /// [`ChaosConfig::storm_pressure_range`] rather than the milder
    /// independent range.
    pub pressure_storms: usize,
    /// Usable-HBM range storm spikes draw from (tighter than
    /// `pressure_range`).
    pub storm_pressure_range: (f64, f64),
    /// Degraded-zone windows to schedule: a zone that gets *sick* rather
    /// than dying — latency inflates and WAL rot is injected, but every
    /// request still succeeds, so breakers must not trip.
    pub degraded_zones: usize,
    /// Latency-multiplier range degraded zones draw from (`1 < lo < hi`).
    pub degrade_latency_range: (f64, f64),
    /// WAL-rot cut range degraded zones draw from (fraction of the log
    /// body kept, in `(0, 1)`).
    pub degrade_rot_range: (f64, f64),
    /// How long each degradation window lasts, in seconds.
    pub degrade_duration: f64,
}

impl Default for ChaosConfig {
    /// A small but adversarial episode: two kills, one restart, one
    /// silent truncation, two fault injections, one pressure spike.
    fn default() -> Self {
        Self {
            replicas: 2,
            horizon: 60.0,
            kills: 2,
            restarts: 1,
            wal_truncations: 1,
            faults: 2,
            pressure_spikes: 1,
            pressure_range: (0.5, 0.95),
            // Correlated failures are opt-in: zero bursts keeps every
            // pre-existing (seed, config) plan byte-identical, because
            // the burst loops draw nothing from the RNG.
            bursts: 0,
            burst_kill_fraction: 0.5,
            zone_faults: 0,
            zones: 2,
            pressure_storms: 0,
            storm_pressure_range: (0.2, 0.5),
            degraded_zones: 0,
            degrade_latency_range: (2.0, 8.0),
            degrade_rot_range: (0.5, 0.95),
            degrade_duration: 5.0,
        }
    }
}

/// The species of correlated burst a plan scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstKind {
    /// Several replicas killed at the same instant.
    CorrelatedKills,
    /// One whole failure domain (zone) killed together.
    ZoneFault,
    /// A cluster of severe memory-pressure spikes in quick succession.
    PressureStorm,
    /// One failure domain degraded (slow + rotting) without dying.
    DegradedZone,
}

/// Metadata for one correlated burst: where its events sit in the plan
/// and what it did. The constituent [`ChaosEvent`]s use the ordinary
/// action vocabulary (kills / pressure), so the serving layer needs no
/// new machinery — this record exists so harnesses can find each burst
/// and assert bounded SLO recovery after it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosBurst {
    /// Instant the burst fires.
    pub time: f64,
    /// What kind of correlated failure it is.
    pub kind: BurstKind,
    /// Events the burst contributed to the plan.
    pub events: usize,
}

/// A deterministic, time-sorted chaos script.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// The seed the plan was generated from (replays identically).
    pub seed: u64,
    /// Events sorted by time (ties broken by generation order).
    pub events: Vec<ChaosEvent>,
    /// Correlated bursts scheduled (time-sorted); their constituent
    /// events are interleaved into [`ChaosPlan::events`].
    pub bursts: Vec<ChaosBurst>,
}

impl ChaosPlan {
    /// Generates a plan from `seed`. The same `(seed, config)` pair
    /// always yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas == 0`, `config.horizon <= 0`, or the
    /// pressure range is invalid.
    pub fn generate(seed: u64, config: &ChaosConfig) -> Self {
        assert!(config.replicas > 0, "need at least one replica");
        assert!(config.horizon > 0.0, "horizon must be positive");
        let (lo, hi) = config.pressure_range;
        assert!(
            0.0 < lo && lo < hi && hi <= 1.0,
            "pressure range must satisfy 0 < lo < hi <= 1"
        );
        let mut inj = FaultInjector::new(seed);
        let draw_time = |inj: &mut FaultInjector| inj.hbm_pressure(0.01, 0.99) * config.horizon;
        let mut events = Vec::new();
        for _ in 0..config.kills {
            let time = draw_time(&mut inj);
            let replica = inj.pick(config.replicas);
            let wal_cut = inj.hbm_pressure(0.01, 0.99);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::KillReplica { replica, wal_cut },
            });
        }
        for _ in 0..config.restarts {
            let time = draw_time(&mut inj);
            let replica = inj.pick(config.replicas);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::RestartReplica { replica },
            });
        }
        for _ in 0..config.wal_truncations {
            let time = draw_time(&mut inj);
            let replica = inj.pick(config.replicas);
            let wal_cut = inj.hbm_pressure(0.01, 0.99);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::TruncateWal { replica, wal_cut },
            });
        }
        for _ in 0..config.faults {
            let time = draw_time(&mut inj);
            let elements = 1 + inj.pick(4);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::InjectFault { elements },
            });
        }
        for _ in 0..config.pressure_spikes {
            let time = draw_time(&mut inj);
            let usable = inj.hbm_pressure(lo, hi);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::MemoryPressure { usable },
            });
        }
        // Correlated bursts draw strictly after the independent events,
        // so a config with zero bursts replays pre-burst plans
        // byte-identically.
        let mut bursts = Vec::new();
        if config.bursts > 0 {
            assert!(
                (0.0..=1.0).contains(&config.burst_kill_fraction),
                "burst kill fraction must be a fraction"
            );
        }
        for _ in 0..config.bursts {
            let time = draw_time(&mut inj);
            let want = ((config.replicas as f64 * config.burst_kill_fraction).ceil() as usize)
                .clamp(1, config.replicas)
                .max(2.min(config.replicas));
            // Distinct victims via a rotation from a random start: a
            // burst is "several replicas at once", which a contiguous
            // index window models as well as any subset while staying a
            // single deterministic draw.
            let start = inj.pick(config.replicas);
            let mut emitted = 0;
            for k in 0..want {
                let replica = (start + k) % config.replicas;
                let wal_cut = inj.hbm_pressure(0.01, 0.99);
                events.push(ChaosEvent {
                    time,
                    action: ChaosAction::KillReplica { replica, wal_cut },
                });
                emitted += 1;
            }
            bursts.push(ChaosBurst {
                time,
                kind: BurstKind::CorrelatedKills,
                events: emitted,
            });
        }
        if config.zone_faults > 0 {
            assert!(config.zones > 0, "need at least one zone");
        }
        for _ in 0..config.zone_faults {
            let time = draw_time(&mut inj);
            let zone = inj.pick(config.zones);
            let mut emitted = 0;
            for replica in (0..config.replicas).filter(|r| r % config.zones == zone) {
                let wal_cut = inj.hbm_pressure(0.01, 0.99);
                events.push(ChaosEvent {
                    time,
                    action: ChaosAction::KillReplica { replica, wal_cut },
                });
                emitted += 1;
            }
            // A zone can be empty (more zones than replicas drew an
            // unpopulated one); it still counts as a burst with zero
            // events so same-seed metadata stays stable.
            bursts.push(ChaosBurst {
                time,
                kind: BurstKind::ZoneFault,
                events: emitted,
            });
        }
        if config.pressure_storms > 0 {
            let (slo, shi) = config.storm_pressure_range;
            assert!(
                0.0 < slo && slo < shi && shi <= 1.0,
                "storm pressure range must satisfy 0 < lo < hi <= 1"
            );
        }
        for _ in 0..config.pressure_storms {
            let time = draw_time(&mut inj);
            let (slo, shi) = config.storm_pressure_range;
            // Three spikes 100 ms apart: pressure that *stays* bad
            // briefly, not one transient dip.
            let mut emitted = 0;
            for k in 0..3 {
                let usable = inj.hbm_pressure(slo, shi);
                events.push(ChaosEvent {
                    time: time + 0.1 * k as f64,
                    action: ChaosAction::MemoryPressure { usable },
                });
                emitted += 1;
            }
            bursts.push(ChaosBurst {
                time,
                kind: BurstKind::PressureStorm,
                events: emitted,
            });
        }
        // Degraded zones draw last of all, preserving byte-identical
        // replay for every pre-existing (seed, config) pair.
        if config.degraded_zones > 0 {
            assert!(config.zones > 0, "need at least one zone");
            let (llo, lhi) = config.degrade_latency_range;
            assert!(
                1.0 < llo && llo < lhi,
                "degrade latency range must satisfy 1 < lo < hi"
            );
            let (rlo, rhi) = config.degrade_rot_range;
            assert!(
                0.0 < rlo && rlo < rhi && rhi < 1.0,
                "degrade rot range must satisfy 0 < lo < hi < 1"
            );
            assert!(config.degrade_duration > 0.0, "degrade duration must be positive");
        }
        for _ in 0..config.degraded_zones {
            let time = draw_time(&mut inj);
            let zone = inj.pick(config.zones);
            let (llo, lhi) = config.degrade_latency_range;
            let latency_factor = inj.hbm_pressure(llo / lhi, 1.0) * lhi;
            let (rlo, rhi) = config.degrade_rot_range;
            let wal_rot = inj.hbm_pressure(rlo, rhi);
            events.push(ChaosEvent {
                time,
                action: ChaosAction::DegradeZone {
                    zone,
                    latency_factor,
                    wal_rot,
                    duration: config.degrade_duration,
                },
            });
            bursts.push(ChaosBurst {
                time,
                kind: BurstKind::DegradedZone,
                events: 1,
            });
        }
        // Stable sort keeps generation order for equal times, so the
        // plan is a pure function of (seed, config).
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        bursts.sort_by(|a, b| a.time.total_cmp(&b.time));
        Self {
            seed,
            events,
            bursts,
        }
    }

    /// Events that target serving replicas, in time order.
    pub fn replica_events(&self) -> Vec<ChaosEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.action.targets_replica())
            .collect()
    }

    /// Events the serving layer does not handle (fault injections and
    /// pressure spikes), in time order — the harness applies these.
    pub fn engine_events(&self) -> Vec<ChaosEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| !e.action.targets_replica())
            .collect()
    }

    /// The tightest memory-pressure spike in the plan, if any.
    pub fn min_pressure(&self) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e.action {
                ChaosAction::MemoryPressure { usable } => Some(usable),
                _ => None,
            })
            .min_by(|a, b| a.partial_cmp(b).expect("pressure fractions are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::default();
        let a = ChaosPlan::generate(99, &cfg);
        let b = ChaosPlan::generate(99, &cfg);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(100, &cfg);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn plan_is_sorted_and_sized() {
        let cfg = ChaosConfig {
            replicas: 3,
            kills: 4,
            restarts: 2,
            wal_truncations: 2,
            faults: 3,
            pressure_spikes: 2,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(7, &cfg);
        assert_eq!(plan.events.len(), 4 + 2 + 2 + 3 + 2);
        for w in plan.events.windows(2) {
            assert!(w[0].time <= w[1].time, "events must be time-sorted");
        }
        for e in &plan.events {
            assert!(e.time > 0.0 && e.time < cfg.horizon);
            match e.action {
                ChaosAction::KillReplica { replica, wal_cut }
                | ChaosAction::TruncateWal { replica, wal_cut } => {
                    assert!(replica < cfg.replicas);
                    assert!((0.0..1.0).contains(&wal_cut));
                }
                ChaosAction::RestartReplica { replica } => assert!(replica < cfg.replicas),
                ChaosAction::InjectFault { elements } => assert!(elements >= 1),
                ChaosAction::MemoryPressure { usable } => {
                    assert!((cfg.pressure_range.0..cfg.pressure_range.1).contains(&usable));
                }
                ChaosAction::DegradeZone { .. } => {
                    panic!("no degraded zones configured in this plan")
                }
            }
        }
    }

    #[test]
    fn partition_covers_every_event_once() {
        let plan = ChaosPlan::generate(3, &ChaosConfig::default());
        let replica = plan.replica_events();
        let engine = plan.engine_events();
        assert_eq!(replica.len() + engine.len(), plan.events.len());
        assert!(replica.iter().all(|e| e.action.targets_replica()));
        assert!(engine.iter().all(|e| !e.action.targets_replica()));
    }

    #[test]
    fn min_pressure_picks_tightest_spike() {
        let cfg = ChaosConfig {
            pressure_spikes: 5,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(5, &cfg);
        let min = plan.min_pressure().unwrap();
        for e in &plan.events {
            if let ChaosAction::MemoryPressure { usable } = e.action {
                assert!(min <= usable);
            }
        }
        let none = ChaosPlan::generate(
            5,
            &ChaosConfig {
                pressure_spikes: 0,
                ..cfg
            },
        );
        assert_eq!(none.min_pressure(), None);
    }

    #[test]
    fn zero_burst_config_schedules_no_bursts() {
        let plan = ChaosPlan::generate(42, &ChaosConfig::default());
        assert!(plan.bursts.is_empty());
        let base = ChaosConfig::default();
        assert_eq!(
            plan.events.len(),
            base.kills + base.restarts + base.wal_truncations + base.faults + base.pressure_spikes
        );
    }

    #[test]
    fn correlated_kills_fire_simultaneously_on_distinct_replicas() {
        let cfg = ChaosConfig {
            replicas: 6,
            bursts: 3,
            burst_kill_fraction: 0.5,
            kills: 0,
            restarts: 0,
            wal_truncations: 0,
            faults: 0,
            pressure_spikes: 0,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(17, &cfg);
        assert_eq!(plan.bursts.len(), 3);
        for b in &plan.bursts {
            assert_eq!(b.kind, BurstKind::CorrelatedKills);
            assert_eq!(b.events, 3, "ceil(6 * 0.5) victims");
            let victims: Vec<usize> = plan
                .events
                .iter()
                .filter(|e| e.time == b.time)
                .map(|e| match e.action {
                    ChaosAction::KillReplica { replica, .. } => replica,
                    other => panic!("burst emitted {other:?}"),
                })
                .collect();
            assert_eq!(victims.len(), b.events, "all victims die at one instant");
            let mut dedup = victims.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), victims.len(), "victims are distinct");
        }
    }

    #[test]
    fn zone_fault_kills_exactly_one_failure_domain() {
        let cfg = ChaosConfig {
            replicas: 6,
            zones: 3,
            zone_faults: 1,
            kills: 0,
            restarts: 0,
            wal_truncations: 0,
            faults: 0,
            pressure_spikes: 0,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(23, &cfg);
        assert_eq!(plan.bursts.len(), 1);
        let b = plan.bursts[0];
        assert_eq!(b.kind, BurstKind::ZoneFault);
        assert_eq!(b.events, 2, "6 replicas / 3 zones");
        let zones: Vec<usize> = plan
            .events
            .iter()
            .map(|e| match e.action {
                ChaosAction::KillReplica { replica, .. } => replica % cfg.zones,
                other => panic!("zone fault emitted {other:?}"),
            })
            .collect();
        assert!(zones.windows(2).all(|w| w[0] == w[1]), "one zone only");
    }

    #[test]
    fn pressure_storms_cluster_severe_spikes() {
        let cfg = ChaosConfig {
            pressure_storms: 2,
            storm_pressure_range: (0.2, 0.4),
            kills: 0,
            restarts: 0,
            wal_truncations: 0,
            faults: 0,
            pressure_spikes: 0,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(31, &cfg);
        assert_eq!(plan.bursts.len(), 2);
        assert_eq!(plan.events.len(), 6, "three spikes per storm");
        for e in &plan.events {
            match e.action {
                ChaosAction::MemoryPressure { usable } => {
                    assert!((0.2..0.4).contains(&usable), "storm severity range")
                }
                other => panic!("storm emitted {other:?}"),
            }
        }
        for b in &plan.bursts {
            let in_burst = plan
                .events
                .iter()
                .filter(|e| e.time >= b.time && e.time <= b.time + 0.21)
                .count();
            assert!(in_burst >= 3, "spikes cluster within the storm window");
        }
    }

    #[test]
    fn burst_plans_replay_bit_identically() {
        let cfg = ChaosConfig {
            replicas: 4,
            bursts: 2,
            zone_faults: 1,
            pressure_storms: 1,
            degraded_zones: 1,
            ..ChaosConfig::default()
        };
        assert_eq!(ChaosPlan::generate(5, &cfg), ChaosPlan::generate(5, &cfg));
        assert_ne!(ChaosPlan::generate(5, &cfg), ChaosPlan::generate(6, &cfg));
    }

    #[test]
    fn degraded_zones_inflate_latency_without_killing() {
        let cfg = ChaosConfig {
            replicas: 8,
            zones: 4,
            degraded_zones: 3,
            degrade_latency_range: (2.0, 8.0),
            degrade_rot_range: (0.5, 0.95),
            degrade_duration: 4.0,
            kills: 0,
            restarts: 0,
            wal_truncations: 0,
            faults: 0,
            pressure_spikes: 0,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::generate(61, &cfg);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.bursts.len(), 3);
        for (e, b) in plan.events.iter().zip(&plan.bursts) {
            assert_eq!(b.kind, BurstKind::DegradedZone);
            assert_eq!(b.events, 1);
            assert!(e.action.targets_replica(), "serving layer applies it");
            match e.action {
                ChaosAction::DegradeZone {
                    zone,
                    latency_factor,
                    wal_rot,
                    duration,
                } => {
                    assert!(zone < cfg.zones);
                    assert!((2.0..=8.0).contains(&latency_factor));
                    assert!((0.5..0.95).contains(&wal_rot));
                    assert_eq!(duration, 4.0);
                }
                other => panic!("degraded zone emitted {other:?}"),
            }
        }
    }

    #[test]
    fn degraded_zone_draws_do_not_disturb_legacy_plans() {
        // A config that only adds degraded zones on top of the default
        // must keep the default's events byte-identical (new draws come
        // strictly after every legacy draw).
        let base = ChaosPlan::generate(77, &ChaosConfig::default());
        let extended = ChaosPlan::generate(
            77,
            &ChaosConfig {
                degraded_zones: 2,
                ..ChaosConfig::default()
            },
        );
        let legacy: Vec<ChaosEvent> = extended
            .events
            .iter()
            .copied()
            .filter(|e| !matches!(e.action, ChaosAction::DegradeZone { .. }))
            .collect();
        assert_eq!(base.events, legacy);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        ChaosPlan::generate(
            1,
            &ChaosConfig {
                replicas: 0,
                ..ChaosConfig::default()
            },
        );
    }
}
