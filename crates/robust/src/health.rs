//! Health counters for the fault-tolerance layer.
//!
//! [`HealthStats`] is a small fixed registry of atomic counters keyed by
//! [`HealthEvent`]. Every detection, repair, and fallback in the stack
//! records itself here, so tests (and operators) can assert that the
//! number of *observed* faults matches the number of *injected* ones,
//! and dashboards can watch degradation rates. Counters use relaxed
//! atomics — they are monotonic tallies, not synchronization points —
//! and increment through `&self` so one registry can be shared across
//! an engine, its caches, and the serving simulator.

use std::sync::atomic::{AtomicU64, Ordering};

/// Everything the robustness layer knows how to count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum HealthEvent {
    /// A non-finite (NaN/±Inf) value was detected in a query/key/value
    /// input and sanitized to zero.
    NonFiniteInput,
    /// A non-finite value surfaced in an attention *output*, triggering
    /// recompute at a higher-precision rung.
    NonFiniteOutput,
    /// Progressive quantization detected a scale overflow (outlier too
    /// large for the INT8 → INT4/2 second stage).
    ScaleOverflow,
    /// A persisted-cache block failed its checksum or structural checks.
    CorruptBlock,
    /// A paged-pool page failed its checksum scrub and was dropped.
    DroppedPage,
    /// A head fell back one rung on the precision ladder.
    PrecisionFallback,
    /// A head was promoted back up after a healthy streak.
    PrecisionPromotion,
    /// A serving request missed its deadline and was cancelled.
    DeadlineMiss,
    /// A serving admission was retried after backoff.
    AdmissionRetry,
    /// A live sequence was demoted to a lower bitwidth to relieve HBM
    /// pressure.
    PressureDemotion,
    /// A request was rejected outright (could never fit, or retries
    /// exhausted).
    RequestRejected,
    /// A persisted cache was recovered partially (valid prefix kept,
    /// corrupt suffix dropped).
    PartialRecovery,
    /// The execution runtime spawned a persistent pool worker. The total
    /// count is bounded by the configured pool size for the life of the
    /// process — the regression guard against per-call thread spawning.
    RuntimeWorkerSpawned,
    /// The execution runtime ran one pooled task to completion.
    RuntimeTaskRun,
    /// A pool worker (or helping submitter) stole a task from another
    /// worker's queue.
    RuntimeTaskStolen,
    /// A write-ahead log was replayed onto a recovered snapshot.
    WalReplay,
    /// A torn or corrupt WAL tail was dropped during recovery (one event
    /// per salvage, not per byte).
    WalRecordDropped,
    /// A serving replica was killed by a fault (crash, chaos kill).
    ReplicaKilled,
    /// A killed replica finished rebuilding (snapshot + WAL replay +
    /// re-prefill) and rejoined the set.
    ReplicaRebuilt,
    /// A replica's circuit breaker tripped from closed to open.
    BreakerOpened,
    /// A request was re-dispatched to another replica after its original
    /// replica failed.
    FailoverRetry,
    /// A request was hedged onto a standby replica at dispatch time.
    RequestHedged,
    /// One group-commit record — every head of every layer's K/V rows for
    /// one token — was appended to a layer-level write-ahead log.
    LayerGroupCommit,
    /// K/V row-pairs carried by group-commit records (recorded with
    /// `record_n`; divided by [`HealthEvent::LayerGroupCommit`] this gives
    /// the mean group-commit size).
    LayerGroupRows,
    /// The adaptive checkpoint scheduler fired on bytes-since-checkpoint.
    CheckpointByBytes,
    /// The adaptive checkpoint scheduler fired on records-since-checkpoint.
    CheckpointByRecords,
    /// The adaptive checkpoint scheduler fired because the estimated WAL
    /// replay time exceeded its budget.
    CheckpointByReplayBudget,
    /// Records applied while replaying a layer-level WAL (recorded with
    /// `record_n`; the replay length recovery actually paid).
    LayerWalReplayedRecords,
    /// A resident block's INT8 expansion was served from the dequant tile
    /// cache (decode hot path avoided re-running the integer dequant).
    DequantCacheHit,
    /// A resident block's INT8 expansion was not cached and had to be
    /// recomputed (cold block, or invalidated by flush/eviction/recovery).
    DequantCacheMiss,
    /// A cached INT8 expansion was evicted to stay inside the tile cache's
    /// byte budget (LRU order).
    DequantCacheEvict,
    /// A request finished inside its latency SLO (tracked per window by
    /// [`crate::SloTracker`]).
    SloRequestOk,
    /// A request finished over its latency SLO or missed its deadline
    /// outright (an SLO violation).
    SloViolation,
    /// An [`crate::SloTracker`] observation window closed and its
    /// percentiles were folded into the running report.
    SloWindowClosed,
    /// The online tuner backed off (multiplicative-decrease): admission /
    /// hedging / breaker knobs moved toward the conservative end after a
    /// violating window.
    TunerBackoff,
    /// The online tuner relaxed (additive-increase): knobs moved toward
    /// the aggressive end after a healthy window.
    TunerRelax,
    /// A correlated chaos burst began (multi-replica kills, zone fault,
    /// or pressure storm — one event per burst, not per victim).
    ChaosBurst,
    /// The fleet autoscaler added a replica after an SLO breach.
    FleetScaleUp,
    /// The fleet autoscaler drained and retired a replica after a
    /// sustained healthy run.
    FleetScaleDown,
    /// The fleet's p99/violation-rate signal returned under the SLO
    /// threshold after a correlated burst (one event per recovery).
    FleetSloRecovered,
}

/// Number of [`HealthEvent`] variants; keep in sync with the enum.
pub const EVENT_COUNT: usize = 40;

/// All events, in discriminant order, for iteration/reporting.
pub const ALL_EVENTS: [HealthEvent; EVENT_COUNT] = [
    HealthEvent::NonFiniteInput,
    HealthEvent::NonFiniteOutput,
    HealthEvent::ScaleOverflow,
    HealthEvent::CorruptBlock,
    HealthEvent::DroppedPage,
    HealthEvent::PrecisionFallback,
    HealthEvent::PrecisionPromotion,
    HealthEvent::DeadlineMiss,
    HealthEvent::AdmissionRetry,
    HealthEvent::PressureDemotion,
    HealthEvent::RequestRejected,
    HealthEvent::PartialRecovery,
    HealthEvent::RuntimeWorkerSpawned,
    HealthEvent::RuntimeTaskRun,
    HealthEvent::RuntimeTaskStolen,
    HealthEvent::WalReplay,
    HealthEvent::WalRecordDropped,
    HealthEvent::ReplicaKilled,
    HealthEvent::ReplicaRebuilt,
    HealthEvent::BreakerOpened,
    HealthEvent::FailoverRetry,
    HealthEvent::RequestHedged,
    HealthEvent::LayerGroupCommit,
    HealthEvent::LayerGroupRows,
    HealthEvent::CheckpointByBytes,
    HealthEvent::CheckpointByRecords,
    HealthEvent::CheckpointByReplayBudget,
    HealthEvent::LayerWalReplayedRecords,
    HealthEvent::DequantCacheHit,
    HealthEvent::DequantCacheMiss,
    HealthEvent::DequantCacheEvict,
    HealthEvent::SloRequestOk,
    HealthEvent::SloViolation,
    HealthEvent::SloWindowClosed,
    HealthEvent::TunerBackoff,
    HealthEvent::TunerRelax,
    HealthEvent::ChaosBurst,
    HealthEvent::FleetScaleUp,
    HealthEvent::FleetScaleDown,
    HealthEvent::FleetSloRecovered,
];

impl HealthEvent {
    /// Short stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            HealthEvent::NonFiniteInput => "non_finite_input",
            HealthEvent::NonFiniteOutput => "non_finite_output",
            HealthEvent::ScaleOverflow => "scale_overflow",
            HealthEvent::CorruptBlock => "corrupt_block",
            HealthEvent::DroppedPage => "dropped_page",
            HealthEvent::PrecisionFallback => "precision_fallback",
            HealthEvent::PrecisionPromotion => "precision_promotion",
            HealthEvent::DeadlineMiss => "deadline_miss",
            HealthEvent::AdmissionRetry => "admission_retry",
            HealthEvent::PressureDemotion => "pressure_demotion",
            HealthEvent::RequestRejected => "request_rejected",
            HealthEvent::PartialRecovery => "partial_recovery",
            HealthEvent::RuntimeWorkerSpawned => "runtime_worker_spawned",
            HealthEvent::RuntimeTaskRun => "runtime_task_run",
            HealthEvent::RuntimeTaskStolen => "runtime_task_stolen",
            HealthEvent::WalReplay => "wal_replay",
            HealthEvent::WalRecordDropped => "wal_record_dropped",
            HealthEvent::ReplicaKilled => "replica_killed",
            HealthEvent::ReplicaRebuilt => "replica_rebuilt",
            HealthEvent::BreakerOpened => "breaker_opened",
            HealthEvent::FailoverRetry => "failover_retry",
            HealthEvent::RequestHedged => "request_hedged",
            HealthEvent::LayerGroupCommit => "layer_group_commit",
            HealthEvent::LayerGroupRows => "layer_group_rows",
            HealthEvent::CheckpointByBytes => "checkpoint_by_bytes",
            HealthEvent::CheckpointByRecords => "checkpoint_by_records",
            HealthEvent::CheckpointByReplayBudget => "checkpoint_by_replay_budget",
            HealthEvent::LayerWalReplayedRecords => "layer_wal_replayed_records",
            HealthEvent::DequantCacheHit => "dequant_cache_hit",
            HealthEvent::DequantCacheMiss => "dequant_cache_miss",
            HealthEvent::DequantCacheEvict => "dequant_cache_evict",
            HealthEvent::SloRequestOk => "slo_request_ok",
            HealthEvent::SloViolation => "slo_violation",
            HealthEvent::SloWindowClosed => "slo_window_closed",
            HealthEvent::TunerBackoff => "tuner_backoff",
            HealthEvent::TunerRelax => "tuner_relax",
            HealthEvent::ChaosBurst => "chaos_burst",
            HealthEvent::FleetScaleUp => "fleet_scale_up",
            HealthEvent::FleetScaleDown => "fleet_scale_down",
            HealthEvent::FleetSloRecovered => "fleet_slo_recovered",
        }
    }
}

/// Shared registry of per-event counters.
#[derive(Debug)]
pub struct HealthStats {
    counters: [AtomicU64; EVENT_COUNT],
}

// Arrays only derive `Default` up to 32 elements; build the counter
// bank explicitly.
impl Default for HealthStats {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HealthStats {
    /// Fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `event` by one.
    pub fn record(&self, event: HealthEvent) {
        self.record_n(event, 1);
    }

    /// Increments `event` by `n`.
    pub fn record_n(&self, event: HealthEvent, n: u64) {
        self.counters[event as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current count for `event`.
    pub fn count(&self, event: HealthEvent) -> u64 {
        self.counters[event as usize].load(Ordering::Relaxed)
    }

    /// Sum over every counter.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Snapshot as `(name, count)` pairs for non-zero counters.
    pub fn report(&self) -> Vec<(&'static str, u64)> {
        ALL_EVENTS
            .iter()
            .filter_map(|&e| {
                let n = self.count(e);
                (n > 0).then(|| (e.name(), n))
            })
            .collect()
    }

    /// Resets every counter to zero (test convenience).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Merges another registry's counts into this one.
    pub fn absorb(&self, other: &HealthStats) {
        for (i, c) in other.counters.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                self.counters[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

impl Clone for HealthStats {
    fn clone(&self) -> Self {
        let out = Self::new();
        out.absorb(self);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let h = HealthStats::new();
        assert!(h.is_clean());
        h.record(HealthEvent::NonFiniteInput);
        h.record_n(HealthEvent::NonFiniteInput, 2);
        h.record(HealthEvent::DroppedPage);
        assert_eq!(h.count(HealthEvent::NonFiniteInput), 3);
        assert_eq!(h.count(HealthEvent::DroppedPage), 1);
        assert_eq!(h.total(), 4);
        assert!(!h.is_clean());
    }

    #[test]
    fn report_lists_only_nonzero() {
        let h = HealthStats::new();
        h.record_n(HealthEvent::ScaleOverflow, 5);
        assert_eq!(h.report(), vec![("scale_overflow", 5)]);
        h.reset();
        assert!(h.report().is_empty());
    }

    #[test]
    fn absorb_merges() {
        let a = HealthStats::new();
        let b = HealthStats::new();
        a.record(HealthEvent::DeadlineMiss);
        b.record_n(HealthEvent::DeadlineMiss, 4);
        a.absorb(&b);
        assert_eq!(a.count(HealthEvent::DeadlineMiss), 5);
    }

    #[test]
    fn all_events_cover_enum() {
        for (i, e) in ALL_EVENTS.iter().enumerate() {
            assert_eq!(*e as usize, i, "discriminant order mismatch");
        }
    }
}
