//! Health counters for the fault-tolerance layer.
//!
//! [`HealthStats`] is a small fixed registry of atomic counters keyed by
//! [`HealthEvent`]. Every detection, repair, and fallback in the stack
//! records itself here, so tests (and operators) can assert that the
//! number of *observed* faults matches the number of *injected* ones,
//! and dashboards can watch degradation rates. Counters use relaxed
//! atomics — they are monotonic tallies, not synchronization points —
//! and increment through `&self` so one registry can be shared across
//! an engine, its caches, and the serving simulator.
//!
//! The event enum, [`ALL_EVENTS`], [`EVENT_COUNT`], and
//! [`HealthEvent::name`] are all generated from one declaration list by
//! the `health_events!` macro below, so the three tables can never drift
//! out of lockstep: adding an event without a name (or vice versa) is a
//! compile error, and the counter bank is sized from the same list.

use std::sync::atomic::{AtomicU64, Ordering};

/// Generates [`HealthEvent`], [`EVENT_COUNT`], [`ALL_EVENTS`], and
/// [`HealthEvent::name`] from a single `Variant => "name"` list. One
/// source of truth: the enum, the iteration table, the count, and the
/// name table cannot disagree by construction.
macro_rules! health_events {
    ($( $(#[$meta:meta])* $variant:ident => $name:literal, )+) => {
        /// Everything the robustness layer knows how to count.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum HealthEvent {
            $( $(#[$meta])* $variant, )+
        }

        /// Number of [`HealthEvent`] variants. Derived from the same
        /// declaration list as the enum, so it cannot drift.
        pub const EVENT_COUNT: usize = ALL_EVENTS.len();

        /// All events, in discriminant order, for iteration/reporting.
        pub const ALL_EVENTS: [HealthEvent; [$(HealthEvent::$variant),+].len()] =
            [$(HealthEvent::$variant),+];

        impl HealthEvent {
            /// Short stable name for logs and reports.
            pub fn name(self) -> &'static str {
                match self {
                    $(HealthEvent::$variant => $name,)+
                }
            }
        }
    };
}

health_events! {
    /// A non-finite (NaN/±Inf) value was detected in a query/key/value
    /// input and sanitized to zero.
    NonFiniteInput => "non_finite_input",
    /// A non-finite value surfaced in an attention *output*, triggering
    /// recompute at a higher-precision rung.
    NonFiniteOutput => "non_finite_output",
    /// Progressive quantization detected a scale overflow (outlier too
    /// large for the INT8 → INT4/2 second stage).
    ScaleOverflow => "scale_overflow",
    /// A persisted-cache block failed its checksum or structural checks.
    CorruptBlock => "corrupt_block",
    /// A paged-pool page failed its checksum scrub and was dropped.
    DroppedPage => "dropped_page",
    /// A head fell back one rung on the precision ladder.
    PrecisionFallback => "precision_fallback",
    /// A head was promoted back up after a healthy streak.
    PrecisionPromotion => "precision_promotion",
    /// A serving request missed its deadline and was cancelled.
    DeadlineMiss => "deadline_miss",
    /// A serving admission was retried after backoff.
    AdmissionRetry => "admission_retry",
    /// A live sequence was demoted to a lower bitwidth to relieve HBM
    /// pressure.
    PressureDemotion => "pressure_demotion",
    /// A request was rejected outright (could never fit, or retries
    /// exhausted).
    RequestRejected => "request_rejected",
    /// A persisted cache was recovered partially (valid prefix kept,
    /// corrupt suffix dropped).
    PartialRecovery => "partial_recovery",
    /// The execution runtime spawned a persistent pool worker. The total
    /// count is bounded by the configured pool size for the life of the
    /// process — the regression guard against per-call thread spawning.
    RuntimeWorkerSpawned => "runtime_worker_spawned",
    /// The execution runtime ran one pooled task to completion.
    RuntimeTaskRun => "runtime_task_run",
    /// A pool worker (or helping submitter) stole a task from another
    /// worker's queue.
    RuntimeTaskStolen => "runtime_task_stolen",
    /// A write-ahead log was replayed onto a recovered snapshot.
    WalReplay => "wal_replay",
    /// A torn or corrupt WAL tail was dropped during recovery (one event
    /// per salvage, not per byte).
    WalRecordDropped => "wal_record_dropped",
    /// A serving replica was killed by a fault (crash, chaos kill).
    ReplicaKilled => "replica_killed",
    /// A killed replica finished rebuilding (snapshot + WAL replay +
    /// re-prefill) and rejoined the set.
    ReplicaRebuilt => "replica_rebuilt",
    /// A replica's circuit breaker tripped from closed to open.
    BreakerOpened => "breaker_opened",
    /// A request was re-dispatched to another replica after its original
    /// replica failed.
    FailoverRetry => "failover_retry",
    /// A request was hedged onto a standby replica at dispatch time.
    RequestHedged => "request_hedged",
    /// One group-commit record — every head of every layer's K/V rows for
    /// one token — was appended to a layer-level write-ahead log.
    LayerGroupCommit => "layer_group_commit",
    /// K/V row-pairs carried by group-commit records (recorded with
    /// `record_n`; divided by [`HealthEvent::LayerGroupCommit`] this gives
    /// the mean group-commit size).
    LayerGroupRows => "layer_group_rows",
    /// The adaptive checkpoint scheduler fired on bytes-since-checkpoint.
    CheckpointByBytes => "checkpoint_by_bytes",
    /// The adaptive checkpoint scheduler fired on records-since-checkpoint.
    CheckpointByRecords => "checkpoint_by_records",
    /// The adaptive checkpoint scheduler fired because the estimated WAL
    /// replay time exceeded its budget.
    CheckpointByReplayBudget => "checkpoint_by_replay_budget",
    /// Records applied while replaying a layer-level WAL (recorded with
    /// `record_n`; the replay length recovery actually paid).
    LayerWalReplayedRecords => "layer_wal_replayed_records",
    /// A resident block's INT8 expansion was served from the dequant tile
    /// cache (decode hot path avoided re-running the integer dequant).
    DequantCacheHit => "dequant_cache_hit",
    /// A resident block's INT8 expansion was not cached and had to be
    /// recomputed (cold block, or invalidated by flush/eviction/recovery).
    DequantCacheMiss => "dequant_cache_miss",
    /// A cached INT8 expansion was evicted to stay inside the tile cache's
    /// byte budget (LRU order).
    DequantCacheEvict => "dequant_cache_evict",
    /// A request finished inside its latency SLO (tracked per window by
    /// [`crate::SloTracker`]).
    SloRequestOk => "slo_request_ok",
    /// A request finished over its latency SLO or missed its deadline
    /// outright (an SLO violation).
    SloViolation => "slo_violation",
    /// An [`crate::SloTracker`] observation window closed and its
    /// percentiles were folded into the running report.
    SloWindowClosed => "slo_window_closed",
    /// The online tuner backed off (multiplicative-decrease): admission /
    /// hedging / breaker knobs moved toward the conservative end after a
    /// violating window.
    TunerBackoff => "tuner_backoff",
    /// The online tuner relaxed (additive-increase): knobs moved toward
    /// the aggressive end after a healthy window.
    TunerRelax => "tuner_relax",
    /// A correlated chaos burst began (multi-replica kills, zone fault,
    /// or pressure storm — one event per burst, not per victim).
    ChaosBurst => "chaos_burst",
    /// The fleet autoscaler added a replica after an SLO breach.
    FleetScaleUp => "fleet_scale_up",
    /// The fleet autoscaler drained and retired a replica after a
    /// sustained healthy run.
    FleetScaleDown => "fleet_scale_down",
    /// The fleet's p99/violation-rate signal returned under the SLO
    /// threshold after a correlated burst (one event per recovery).
    FleetSloRecovered => "fleet_slo_recovered",
    /// A KV shard serving a slice of a long context was killed by a
    /// fault (its WAL torn at the cut point).
    ShardKilled => "shard_killed",
    /// A killed shard's KV range finished redistributing to the
    /// surviving shards (replay + migrate + re-prefill complete).
    ShardResharded => "shard_resharded",
    /// The shard map's migration epoch was bumped after a re-shard,
    /// invalidating every pre-migration dequant tile generation.
    ShardMapEpochBump => "shard_map_epoch_bump",
    /// A zone entered degraded service: latency inflated and WAL rot
    /// injected, but its shards keep answering (slow ≠ dead).
    ZoneDegraded => "zone_degraded",
    /// A degraded zone's window elapsed and it returned to healthy
    /// service.
    ZoneRestored => "zone_restored",
    /// A degraded zone silently rotted a shard's WAL tail (the damage
    /// surfaces only at the next recovery).
    DegradedWalRot => "degraded_wal_rot",
    /// The replay-budget controller tightened checkpoint cadence
    /// (multiplicative-decrease) after observing rebuild churn.
    ReplayBudgetTightened => "replay_budget_tightened",
    /// The replay-budget controller relaxed checkpoint cadence
    /// (additive-increase) after a calm window.
    ReplayBudgetRelaxed => "replay_budget_relaxed",
}

// Compile-time lockstep guard: the counter bank, iteration table, and
// name table are all sized/generated from the one macro list, and the
// last discriminant must equal EVENT_COUNT - 1 (catches any future
// hand-edit that bypasses the macro).
const _: () = assert!(ALL_EVENTS[EVENT_COUNT - 1] as usize == EVENT_COUNT - 1);

/// Shared registry of per-event counters.
#[derive(Debug)]
pub struct HealthStats {
    counters: [AtomicU64; EVENT_COUNT],
}

// Arrays only derive `Default` up to 32 elements; build the counter
// bank explicitly.
impl Default for HealthStats {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HealthStats {
    /// Fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `event` by one.
    pub fn record(&self, event: HealthEvent) {
        self.record_n(event, 1);
    }

    /// Increments `event` by `n`.
    pub fn record_n(&self, event: HealthEvent, n: u64) {
        self.counters[event as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current count for `event`.
    pub fn count(&self, event: HealthEvent) -> u64 {
        self.counters[event as usize].load(Ordering::Relaxed)
    }

    /// Sum over every counter.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Snapshot as `(name, count)` pairs for non-zero counters.
    pub fn report(&self) -> Vec<(&'static str, u64)> {
        ALL_EVENTS
            .iter()
            .filter_map(|&e| {
                let n = self.count(e);
                (n > 0).then(|| (e.name(), n))
            })
            .collect()
    }

    /// Resets every counter to zero (test convenience).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Merges another registry's counts into this one.
    pub fn absorb(&self, other: &HealthStats) {
        for (i, c) in other.counters.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                self.counters[i].fetch_add(n, Ordering::Relaxed);
            }
        }
    }
}

impl Clone for HealthStats {
    fn clone(&self) -> Self {
        let out = Self::new();
        out.absorb(self);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let h = HealthStats::new();
        assert!(h.is_clean());
        h.record(HealthEvent::NonFiniteInput);
        h.record_n(HealthEvent::NonFiniteInput, 2);
        h.record(HealthEvent::DroppedPage);
        assert_eq!(h.count(HealthEvent::NonFiniteInput), 3);
        assert_eq!(h.count(HealthEvent::DroppedPage), 1);
        assert_eq!(h.total(), 4);
        assert!(!h.is_clean());
    }

    #[test]
    fn report_lists_only_nonzero() {
        let h = HealthStats::new();
        h.record_n(HealthEvent::ScaleOverflow, 5);
        assert_eq!(h.report(), vec![("scale_overflow", 5)]);
        h.reset();
        assert!(h.report().is_empty());
    }

    #[test]
    fn absorb_merges() {
        let a = HealthStats::new();
        let b = HealthStats::new();
        a.record(HealthEvent::DeadlineMiss);
        b.record_n(HealthEvent::DeadlineMiss, 4);
        a.absorb(&b);
        assert_eq!(a.count(HealthEvent::DeadlineMiss), 5);
    }

    #[test]
    fn all_events_cover_enum() {
        for (i, e) in ALL_EVENTS.iter().enumerate() {
            assert_eq!(*e as usize, i, "discriminant order mismatch");
        }
    }

    #[test]
    fn every_event_has_a_unique_nonempty_name() {
        let mut seen = std::collections::HashSet::new();
        for e in ALL_EVENTS {
            let name = e.name();
            assert!(!name.is_empty(), "{e:?} has an empty name");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{e:?} name {name:?} is not snake_case"
            );
            assert!(seen.insert(name), "duplicate event name {name:?}");
        }
        assert_eq!(seen.len(), EVENT_COUNT);
    }

    #[test]
    fn shard_and_degradation_events_are_named() {
        // Satellite guard: every shard/degradation/replay-budget event
        // introduced for sharded serving resolves to a stable name.
        let expected = [
            (HealthEvent::ShardKilled, "shard_killed"),
            (HealthEvent::ShardResharded, "shard_resharded"),
            (HealthEvent::ShardMapEpochBump, "shard_map_epoch_bump"),
            (HealthEvent::ZoneDegraded, "zone_degraded"),
            (HealthEvent::ZoneRestored, "zone_restored"),
            (HealthEvent::DegradedWalRot, "degraded_wal_rot"),
            (HealthEvent::ReplayBudgetTightened, "replay_budget_tightened"),
            (HealthEvent::ReplayBudgetRelaxed, "replay_budget_relaxed"),
        ];
        for (e, name) in expected {
            assert_eq!(e.name(), name);
        }
    }
}
