//! AIMD online tuning of the serving layer's protection knobs.
//!
//! [`OnlineTuner`] closes the loop between observed [`SloWindow`]s and
//! the admission/hedging/breaker parameters the serving layer runs
//! with. It maintains one scalar *aggressiveness* position `t ∈ [0, 1]`
//! and moves it AIMD-style: a healthy window nudges `t` up by an
//! additive step (toward the throughput end — admit faster, hedge
//! later, tolerate more failures before tripping a breaker); a
//! violating window cuts `t` multiplicatively (toward the protective
//! end — back admission off harder, hedge sooner, trip breakers faster
//! and hold them open longer). Every concrete knob is a linear
//! interpolation between its protective and throughput endpoints, so
//! the whole controller is a pure, seed-free function of the window
//! stream — deterministic by construction.
//!
//! The single-position design is deliberate: independent per-knob
//! controllers can end up in contradictory corners (aggressive
//! admission with paranoid breakers), whereas one shared position keeps
//! the knob set self-consistent and makes the controller's state
//! trivially auditable (one number).

use crate::health::{HealthEvent, HealthStats};
use crate::slo::{SloConfig, SloWindow};

/// The serving knobs the tuner emits. Plain numbers, not serving-layer
/// types: `robust` sits below the serving crate in the dependency
/// graph, so the fleet layer maps these onto its own config structs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunedParams {
    /// Admission retry backoff base, seconds.
    pub admission_backoff: f64,
    /// Hedge a request onto a standby if its replica has not answered
    /// within this many seconds.
    pub hedge_threshold: f64,
    /// Consecutive failures before a replica's circuit breaker opens.
    pub breaker_failure_threshold: u32,
    /// Seconds an open breaker waits before probing half-open.
    pub breaker_cooldown: f64,
}

/// Endpoint ranges and AIMD step sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TunerConfig {
    /// Admission backoff endpoints `(throughput, protective)` — the
    /// protective end backs off harder.
    pub backoff_range: (f64, f64),
    /// Hedge threshold endpoints `(protective, throughput)` — the
    /// protective end hedges sooner.
    pub hedge_range: (f64, f64),
    /// Breaker failure-threshold endpoints `(protective, throughput)` —
    /// the protective end trips after fewer failures.
    pub breaker_failures_range: (u32, u32),
    /// Breaker cooldown endpoints `(throughput, protective)` — the
    /// protective end holds breakers open longer.
    pub breaker_cooldown_range: (f64, f64),
    /// Additive step applied to the position after a healthy window.
    pub relax_step: f64,
    /// Multiplicative factor applied to the position after a violating
    /// window (in `(0, 1)`).
    pub backoff_factor: f64,
    /// Starting position in `[0, 1]`.
    pub initial_position: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self {
            backoff_range: (0.05, 1.0),
            hedge_range: (0.25, 4.0),
            breaker_failures_range: (1, 6),
            breaker_cooldown_range: (1.0, 10.0),
            relax_step: 0.1,
            backoff_factor: 0.5,
            initial_position: 0.5,
        }
    }
}

/// AIMD controller over one aggressiveness position; see the module
/// docs for the update rule.
///
/// # Example
///
/// ```
/// use turbo_robust::{OnlineTuner, TunerConfig, SloConfig, SloTracker};
///
/// let slo = SloConfig::default();
/// let mut tuner = OnlineTuner::new(TunerConfig::default());
/// let before = tuner.params();
/// let mut tracker = SloTracker::new(SloConfig { window: 2, ..slo });
/// tracker.record(10.0, true, None); // violating window
/// tracker.record(10.0, true, None);
/// let after = tuner.observe(tracker.last_window().unwrap(), &slo, None);
/// assert!(after.admission_backoff > before.admission_backoff);
/// assert!(after.hedge_threshold < before.hedge_threshold);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineTuner {
    cfg: TunerConfig,
    /// Aggressiveness position: 0 = fully protective, 1 = full
    /// throughput.
    position: f64,
    /// Windows observed.
    observed: usize,
    /// Multiplicative-decrease steps taken.
    backoffs: usize,
    /// Additive-increase steps taken.
    relaxes: usize,
}

impl OnlineTuner {
    /// Fresh tuner at the configured initial position.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted/non-finite, the steps are not in
    /// range, or the initial position is outside `[0, 1]`.
    pub fn new(cfg: TunerConfig) -> Self {
        let ok = |(a, b): (f64, f64)| a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0;
        assert!(
            ok(cfg.backoff_range) && ok(cfg.hedge_range) && ok(cfg.breaker_cooldown_range),
            "tuner ranges must be positive and finite"
        );
        assert!(
            cfg.breaker_failures_range.0 >= 1
                && cfg.breaker_failures_range.0 <= cfg.breaker_failures_range.1,
            "breaker failure range must be ordered and at least 1"
        );
        assert!(
            cfg.relax_step > 0.0 && cfg.relax_step <= 1.0,
            "relax step must be in (0, 1]"
        );
        assert!(
            cfg.backoff_factor > 0.0 && cfg.backoff_factor < 1.0,
            "backoff factor must be in (0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.initial_position),
            "initial position must be a fraction"
        );
        Self {
            position: cfg.initial_position,
            cfg,
            observed: 0,
            backoffs: 0,
            relaxes: 0,
        }
    }

    /// Current aggressiveness position in `[0, 1]`.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// `(windows observed, backoff steps, relax steps)`.
    pub fn counters(&self) -> (usize, usize, usize) {
        (self.observed, self.backoffs, self.relaxes)
    }

    /// Knobs for the current position.
    pub fn params(&self) -> TunedParams {
        let t = self.position;
        // Protective end is t = 0: hardest backoff, earliest hedge,
        // twitchiest breaker, longest cooldown.
        let (back_thr, back_prot) = self.cfg.backoff_range;
        let (hedge_prot, hedge_thr) = self.cfg.hedge_range;
        let (fail_prot, fail_thr) = self.cfg.breaker_failures_range;
        let (cool_thr, cool_prot) = self.cfg.breaker_cooldown_range;
        TunedParams {
            admission_backoff: lerp(back_prot, back_thr, t),
            hedge_threshold: lerp(hedge_prot, hedge_thr, t),
            breaker_failure_threshold: lerp(fail_prot as f64, fail_thr as f64, t).round() as u32,
            breaker_cooldown: lerp(cool_prot, cool_thr, t),
        }
    }

    /// Folds one closed window in and returns the re-tuned knobs.
    /// Healthy window ⇒ additive increase; violating window ⇒
    /// multiplicative decrease.
    pub fn observe(
        &mut self,
        window: &SloWindow,
        slo: &SloConfig,
        health: Option<&HealthStats>,
    ) -> TunedParams {
        self.observed += 1;
        if window.healthy(slo) {
            self.position = (self.position + self.cfg.relax_step).min(1.0);
            self.relaxes += 1;
            if let Some(hs) = health {
                hs.record(HealthEvent::TunerRelax);
            }
        } else {
            self.position *= self.cfg.backoff_factor;
            self.backoffs += 1;
            if let Some(hs) = health {
                hs.record(HealthEvent::TunerBackoff);
            }
        }
        self.params()
    }
}

fn lerp(at_zero: f64, at_one: f64, t: f64) -> f64 {
    at_zero + (at_one - at_zero) * t
}

/// One window's worth of rebuild telemetry for the replay-budget
/// controller: how many recoveries ran and how much WAL they replayed.
/// The fleet layer derives this from `replica_killed` /
/// `layer_wal_replayed_records` deltas between epochs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplayTelemetry {
    /// Rebuilds (WAL recoveries) observed in the window.
    pub rebuilds: u64,
    /// Total records replayed across those rebuilds
    /// (`layer_wal_replayed_records` delta).
    pub replayed_records: u64,
    /// Replay speed in records/second (the serving layer's
    /// `wal_replay_rate`), used to convert records into latency.
    pub replay_rate: f64,
}

impl ReplayTelemetry {
    /// Mean replay latency per rebuild, in seconds (zero when calm).
    pub fn mean_replay_secs(&self) -> f64 {
        if self.rebuilds == 0 || self.replay_rate <= 0.0 {
            return 0.0;
        }
        self.replayed_records as f64 / self.replay_rate / self.rebuilds as f64
    }
}

/// Endpoint range and AIMD steps for the replay-budget controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayTunerConfig {
    /// Replay-budget endpoints `(tightest, most relaxed)` in seconds of
    /// worst-case WAL replay: position 0 emits the tight end.
    pub budget_range: (f64, f64),
    /// Additive step applied to the position after a calm window.
    pub relax_step: f64,
    /// Multiplicative factor applied to the position after a churning
    /// window (in `(0, 1)`).
    pub tighten_factor: f64,
    /// Tighten when the observed mean replay latency per rebuild
    /// exceeds this fraction of the current budget; a window whose
    /// rebuilds replayed less than that holds the position steady.
    pub tighten_above: f64,
    /// Starting position in `[0, 1]`.
    pub initial_position: f64,
}

impl Default for ReplayTunerConfig {
    fn default() -> Self {
        Self {
            budget_range: (0.001, 0.05),
            relax_step: 0.1,
            tighten_factor: 0.5,
            tighten_above: 0.5,
            initial_position: 0.5,
        }
    }
}

/// Sibling AIMD controller to [`OnlineTuner`] for checkpoint cadence:
/// folds observed rebuild telemetry (`layer_wal_replayed_records`,
/// rebuild latency) into a `ReplayBudget` checkpoint-policy ceiling
/// (the kvcache layer's replay-bounded `CheckpointPolicy`). Under churn — rebuilds actually paying long replays — the
/// budget tightens multiplicatively, forcing more frequent checkpoints
/// and shorter worst-case recovery; when the fleet is calm it relaxes
/// additively, amortizing checkpoint cost back out. Deterministic: a
/// pure function of the telemetry stream, no seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayTuner {
    cfg: ReplayTunerConfig,
    /// Budget position: 0 = tightest replay ceiling, 1 = most relaxed.
    position: f64,
    /// Windows observed.
    observed: usize,
    /// Multiplicative tighten steps taken.
    tightens: usize,
    /// Additive relax steps taken.
    relaxes: usize,
}

impl ReplayTuner {
    /// Fresh controller at the configured initial position.
    ///
    /// # Panics
    ///
    /// Panics if the budget range is inverted/non-positive, the steps
    /// are out of range, or the initial position is outside `[0, 1]`.
    pub fn new(cfg: ReplayTunerConfig) -> Self {
        let (lo, hi) = cfg.budget_range;
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi,
            "replay budget range must be positive and ordered"
        );
        assert!(
            cfg.relax_step > 0.0 && cfg.relax_step <= 1.0,
            "relax step must be in (0, 1]"
        );
        assert!(
            cfg.tighten_factor > 0.0 && cfg.tighten_factor < 1.0,
            "tighten factor must be in (0, 1)"
        );
        assert!(
            cfg.tighten_above > 0.0 && cfg.tighten_above <= 1.0,
            "tighten threshold must be a fraction"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.initial_position),
            "initial position must be a fraction"
        );
        Self {
            position: cfg.initial_position,
            cfg,
            observed: 0,
            tightens: 0,
            relaxes: 0,
        }
    }

    /// Current budget position in `[0, 1]`.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// `(windows observed, tighten steps, relax steps)`.
    pub fn counters(&self) -> (usize, usize, usize) {
        (self.observed, self.tightens, self.relaxes)
    }

    /// Replay-budget ceiling (seconds) for the current position.
    pub fn budget_secs(&self) -> f64 {
        let (tight, relaxed) = self.cfg.budget_range;
        lerp(tight, relaxed, self.position)
    }

    /// Folds one window's rebuild telemetry in and returns the re-tuned
    /// replay budget. Calm window (no rebuilds) ⇒ additive relax;
    /// rebuilds paying more than `tighten_above` of the current budget
    /// ⇒ multiplicative tighten; cheap rebuilds hold steady.
    pub fn observe(&mut self, window: &ReplayTelemetry, health: Option<&HealthStats>) -> f64 {
        self.observed += 1;
        if window.rebuilds == 0 {
            self.position = (self.position + self.cfg.relax_step).min(1.0);
            self.relaxes += 1;
            if let Some(hs) = health {
                hs.record(HealthEvent::ReplayBudgetRelaxed);
            }
        } else if window.mean_replay_secs() > self.cfg.tighten_above * self.budget_secs() {
            self.position *= self.cfg.tighten_factor;
            self.tightens += 1;
            if let Some(hs) = health {
                hs.record(HealthEvent::ReplayBudgetTightened);
            }
        }
        self.budget_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloTracker;

    fn violating_window() -> SloWindow {
        SloWindow {
            index: 0,
            samples: 4,
            p50: 5.0,
            p99: 9.0,
            violations: 4,
            violation_rate: 1.0,
        }
    }

    fn healthy_window() -> SloWindow {
        SloWindow {
            index: 0,
            samples: 4,
            p50: 0.2,
            p99: 0.5,
            violations: 0,
            violation_rate: 0.0,
        }
    }

    #[test]
    fn violations_move_protective_and_health_counts() {
        let slo = SloConfig::default();
        let hs = HealthStats::new();
        let mut tuner = OnlineTuner::new(TunerConfig::default());
        let before = tuner.params();
        let after = tuner.observe(&violating_window(), &slo, Some(&hs));
        assert!(after.admission_backoff > before.admission_backoff);
        assert!(after.hedge_threshold < before.hedge_threshold);
        assert!(after.breaker_failure_threshold <= before.breaker_failure_threshold);
        assert!(after.breaker_cooldown > before.breaker_cooldown);
        assert_eq!(hs.count(HealthEvent::TunerBackoff), 1);
        assert_eq!(hs.count(HealthEvent::TunerRelax), 0);
    }

    #[test]
    fn healthy_windows_relax_toward_throughput() {
        let slo = SloConfig::default();
        let mut tuner = OnlineTuner::new(TunerConfig::default());
        let before = tuner.params();
        tuner.observe(&healthy_window(), &slo, None);
        let after = tuner.params();
        assert!(after.admission_backoff < before.admission_backoff);
        assert!(after.hedge_threshold > before.hedge_threshold);
    }

    #[test]
    fn position_stays_bounded_and_knobs_stay_in_range() {
        let slo = SloConfig::default();
        let cfg = TunerConfig::default();
        let mut tuner = OnlineTuner::new(cfg);
        for _ in 0..50 {
            tuner.observe(&healthy_window(), &slo, None);
        }
        assert_eq!(tuner.position(), 1.0);
        let p = tuner.params();
        assert!((p.admission_backoff - cfg.backoff_range.0).abs() < 1e-12);
        assert_eq!(p.breaker_failure_threshold, cfg.breaker_failures_range.1);
        for _ in 0..200 {
            tuner.observe(&violating_window(), &slo, None);
        }
        assert!(tuner.position() >= 0.0 && tuner.position() < 1e-6);
        let p = tuner.params();
        assert!(p.admission_backoff <= cfg.backoff_range.1);
        assert!(p.breaker_failure_threshold >= cfg.breaker_failures_range.0);
        assert!(p.breaker_cooldown <= cfg.breaker_cooldown_range.1);
    }

    #[test]
    fn multiplicative_decrease_outpaces_additive_increase() {
        // One bad window must undo more than one good window restored —
        // the classic AIMD stability argument.
        let slo = SloConfig::default();
        let mut tuner = OnlineTuner::new(TunerConfig::default());
        let start = tuner.position();
        tuner.observe(&healthy_window(), &slo, None);
        tuner.observe(&violating_window(), &slo, None);
        assert!(tuner.position() < start);
    }

    #[test]
    fn same_window_stream_same_params() {
        let slo = SloConfig {
            window: 4,
            ..SloConfig::default()
        };
        let mut track_a = SloTracker::new(slo);
        let mut track_b = SloTracker::new(slo);
        let mut tun_a = OnlineTuner::new(TunerConfig::default());
        let mut tun_b = OnlineTuner::new(TunerConfig::default());
        for i in 0..64 {
            let lat = if i % 7 == 0 { 5.0 } else { 0.3 };
            track_a.record(lat, false, None);
            track_b.record(lat, false, None);
        }
        for (wa, wb) in track_a.windows().iter().zip(track_b.windows()) {
            assert_eq!(tun_a.observe(wa, &slo, None), tun_b.observe(wb, &slo, None));
        }
        assert_eq!(tun_a, tun_b);
    }

    #[test]
    #[should_panic(expected = "backoff factor")]
    fn bad_backoff_factor_rejected() {
        OnlineTuner::new(TunerConfig {
            backoff_factor: 1.5,
            ..TunerConfig::default()
        });
    }

    fn churn_window(budget: f64) -> ReplayTelemetry {
        // One rebuild whose replay alone costs the whole current budget.
        ReplayTelemetry {
            rebuilds: 1,
            replayed_records: (budget * 50_000.0) as u64 + 1,
            replay_rate: 50_000.0,
        }
    }

    const CALM: ReplayTelemetry = ReplayTelemetry {
        rebuilds: 0,
        replayed_records: 0,
        replay_rate: 50_000.0,
    };

    #[test]
    fn replay_budget_tightens_under_churn_and_relaxes_when_calm() {
        let hs = HealthStats::new();
        let mut tuner = ReplayTuner::new(ReplayTunerConfig::default());
        let start = tuner.budget_secs();
        let tightened = tuner.observe(&churn_window(start), Some(&hs));
        assert!(tightened < start, "churn must tighten the budget");
        assert_eq!(hs.count(HealthEvent::ReplayBudgetTightened), 1);
        let relaxed = tuner.observe(&CALM, Some(&hs));
        assert!(relaxed > tightened, "calm must relax the budget");
        assert_eq!(hs.count(HealthEvent::ReplayBudgetRelaxed), 1);
    }

    #[test]
    fn cheap_rebuilds_hold_the_budget_steady() {
        let mut tuner = ReplayTuner::new(ReplayTunerConfig::default());
        let before = tuner.budget_secs();
        // A rebuild that replayed almost nothing: neither churn nor calm.
        let after = tuner.observe(
            &ReplayTelemetry {
                rebuilds: 1,
                replayed_records: 1,
                replay_rate: 50_000.0,
            },
            None,
        );
        assert_eq!(before, after);
        assert_eq!(tuner.counters(), (1, 0, 0));
    }

    #[test]
    fn replay_budget_stays_inside_its_range() {
        let cfg = ReplayTunerConfig::default();
        let mut tuner = ReplayTuner::new(cfg);
        for _ in 0..100 {
            tuner.observe(&CALM, None);
        }
        assert_eq!(tuner.budget_secs(), cfg.budget_range.1);
        for _ in 0..200 {
            let b = tuner.budget_secs();
            tuner.observe(&churn_window(b), None);
        }
        assert!(tuner.budget_secs() >= cfg.budget_range.0);
        assert!(tuner.budget_secs() <= cfg.budget_range.0 * 1.01, "converges to the tight end");
    }

    #[test]
    fn replay_tuner_is_deterministic() {
        let mut a = ReplayTuner::new(ReplayTunerConfig::default());
        let mut b = ReplayTuner::new(ReplayTunerConfig::default());
        for i in 0..32u64 {
            let w = ReplayTelemetry {
                rebuilds: i % 3,
                replayed_records: i * 997,
                replay_rate: 50_000.0,
            };
            assert_eq!(a.observe(&w, None), b.observe(&w, None));
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "tighten factor")]
    fn bad_tighten_factor_rejected() {
        ReplayTuner::new(ReplayTunerConfig {
            tighten_factor: 1.0,
            ..ReplayTunerConfig::default()
        });
    }
}
