//! Windowed latency-SLO accounting.
//!
//! [`SloTracker`] turns a stream of per-request completions into the
//! control signals the fleet layer steers by: per-window p50/p99
//! latency, the fraction of requests that violated their SLO (finished
//! over the latency target or missed their deadline outright), and a
//! running violation history. It is pure data — no clocks, no
//! threads — so every fleet episode replays bit-for-bit from its seed,
//! and it reports into the shared [`HealthStats`] registry so chaos
//! suites can cross-check SLO verdicts against injected faults.
//!
//! The window is *count-based* (every `window` finished requests close
//! one [`SloWindow`]), not wall-clock-based: the simulator's virtual
//! time advances at wildly different rates under load spikes, and a
//! count basis keeps percentile estimates equally conditioned in calm
//! and stormy windows.

use crate::health::{HealthEvent, HealthStats};

/// Latency-SLO contract one tracker enforces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloConfig {
    /// Per-request latency target in seconds; a request finishing slower
    /// than this (or missing its deadline) counts as a violation.
    pub latency_slo: f64,
    /// Finished requests per observation window.
    pub window: usize,
    /// Highest per-window violation fraction still considered healthy.
    pub max_violation_rate: f64,
}

impl Default for SloConfig {
    /// 2-second latency target, 32-request windows, 10% violation budget.
    fn default() -> Self {
        Self {
            latency_slo: 2.0,
            window: 32,
            max_violation_rate: 0.1,
        }
    }
}

/// One closed observation window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloWindow {
    /// Zero-based window sequence number.
    pub index: usize,
    /// Requests folded into this window (== `SloConfig::window`).
    pub samples: usize,
    /// Median finish latency (seconds) of the window.
    pub p50: f64,
    /// 99th-percentile finish latency (seconds) of the window.
    pub p99: f64,
    /// Requests that violated the SLO in this window.
    pub violations: usize,
    /// `violations / samples`.
    pub violation_rate: f64,
}

impl SloWindow {
    /// Whether the window met its violation budget.
    pub fn healthy(&self, cfg: &SloConfig) -> bool {
        self.violation_rate <= cfg.max_violation_rate
    }
}

/// Streaming per-request SLO accounting with count-based windows.
///
/// # Example
///
/// ```
/// use turbo_robust::{SloConfig, SloTracker};
///
/// let cfg = SloConfig { latency_slo: 1.0, window: 4, max_violation_rate: 0.25 };
/// let mut slo = SloTracker::new(cfg);
/// for lat in [0.2, 0.4, 1.5, 0.3] {
///     slo.record(lat, false, None);
/// }
/// let w = &slo.windows()[0];
/// assert_eq!(w.violations, 1);
/// assert!(w.healthy(&cfg));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SloTracker {
    cfg: SloConfig,
    /// Latencies of the currently-open window.
    open: Vec<f64>,
    /// Violations in the currently-open window.
    open_violations: usize,
    /// Closed windows, oldest first.
    windows: Vec<SloWindow>,
    /// Lifetime totals.
    total: usize,
    total_violations: usize,
}

impl SloTracker {
    /// Fresh tracker with no observations.
    ///
    /// # Panics
    ///
    /// Panics if the window size is zero, the latency target is not
    /// positive, or the violation budget is outside `[0, 1]`.
    pub fn new(cfg: SloConfig) -> Self {
        assert!(cfg.window > 0, "SLO window must hold at least one request");
        assert!(
            cfg.latency_slo > 0.0 && cfg.latency_slo.is_finite(),
            "latency SLO must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.max_violation_rate),
            "violation budget must be a fraction"
        );
        Self {
            cfg,
            open: Vec::with_capacity(cfg.window),
            open_violations: 0,
            windows: Vec::new(),
            total: 0,
            total_violations: 0,
        }
    }

    /// The contract this tracker enforces.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Folds one finished request in: its end-to-end latency and whether
    /// it missed its hard deadline (deadline misses violate regardless
    /// of latency). Non-finite latencies are treated as violations with
    /// the latency clamped to the SLO bound — a poisoned measurement
    /// must never poison the percentile estimates.
    pub fn record(&mut self, latency: f64, deadline_missed: bool, health: Option<&HealthStats>) {
        let lat = if latency.is_finite() && latency >= 0.0 {
            latency
        } else {
            self.cfg.latency_slo
        };
        let violated =
            deadline_missed || lat > self.cfg.latency_slo || !latency.is_finite() || latency < 0.0;
        self.open.push(lat);
        self.total += 1;
        if violated {
            self.open_violations += 1;
            self.total_violations += 1;
        }
        if let Some(hs) = health {
            hs.record(if violated {
                HealthEvent::SloViolation
            } else {
                HealthEvent::SloRequestOk
            });
        }
        if self.open.len() == self.cfg.window {
            self.close_window(health);
        }
    }

    fn close_window(&mut self, health: Option<&HealthStats>) {
        let mut lats = std::mem::take(&mut self.open);
        lats.sort_by(f64::total_cmp);
        let samples = lats.len();
        let window = SloWindow {
            index: self.windows.len(),
            samples,
            p50: percentile(&lats, 0.50),
            p99: percentile(&lats, 0.99),
            violations: self.open_violations,
            violation_rate: self.open_violations as f64 / samples as f64,
        };
        self.open = lats;
        self.open.clear();
        self.open_violations = 0;
        self.windows.push(window);
        if let Some(hs) = health {
            hs.record(HealthEvent::SloWindowClosed);
        }
    }

    /// Closed windows, oldest first.
    pub fn windows(&self) -> &[SloWindow] {
        &self.windows
    }

    /// The most recently closed window, if any.
    pub fn last_window(&self) -> Option<&SloWindow> {
        self.windows.last()
    }

    /// Requests observed (including ones still in the open window).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Lifetime violation fraction over every observed request (0 when
    /// nothing was observed).
    pub fn violation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.total_violations as f64 / self.total as f64
        }
    }

    /// Requests buffered in the not-yet-closed window.
    pub fn pending(&self) -> usize {
        self.open.len()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in
/// `[0, 1]`); 0 for an empty slice.
///
/// This is the **one** percentile definition in the workspace: the
/// serving report, the fleet epoch reports, and the SLO windows all
/// quote it, so the tuner and the serving stats can never disagree on
/// the same latency vector. (The serving layer previously used
/// `((n-1)·q).round()` — a different rank for most n — which let the
/// two reports contradict each other on one episode.)
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize) -> SloConfig {
        SloConfig {
            latency_slo: 1.0,
            window,
            max_violation_rate: 0.25,
        }
    }

    #[test]
    fn windows_close_on_count_and_report_percentiles() {
        let mut slo = SloTracker::new(cfg(4));
        for lat in [0.1, 0.2, 0.3, 0.4, 0.5, 2.0, 0.7, 0.8] {
            slo.record(lat, false, None);
        }
        assert_eq!(slo.windows().len(), 2);
        let w0 = slo.windows()[0];
        assert_eq!(w0.index, 0);
        assert_eq!(w0.samples, 4);
        assert_eq!(w0.p50, 0.2);
        assert_eq!(w0.p99, 0.4);
        assert_eq!(w0.violations, 0);
        assert!(w0.healthy(slo.config()));
        let w1 = slo.windows()[1];
        assert_eq!(w1.violations, 1);
        assert_eq!(w1.p99, 2.0);
        assert!(w1.healthy(slo.config())); // 1/4 == budget
    }

    #[test]
    fn deadline_miss_violates_even_when_fast() {
        let mut slo = SloTracker::new(cfg(2));
        slo.record(0.1, true, None);
        slo.record(0.1, false, None);
        assert_eq!(slo.windows()[0].violations, 1);
        assert_eq!(slo.violation_rate(), 0.5);
    }

    #[test]
    fn non_finite_latency_is_a_clamped_violation() {
        let mut slo = SloTracker::new(cfg(2));
        slo.record(f64::NAN, false, None);
        slo.record(f64::INFINITY, false, None);
        let w = slo.windows()[0];
        assert_eq!(w.violations, 2);
        assert!(w.p99.is_finite(), "poisoned samples must not leak");
    }

    #[test]
    fn health_counters_match_verdicts() {
        let hs = HealthStats::new();
        let mut slo = SloTracker::new(cfg(3));
        for lat in [0.5, 5.0, 0.5] {
            slo.record(lat, false, Some(&hs));
        }
        assert_eq!(hs.count(HealthEvent::SloRequestOk), 2);
        assert_eq!(hs.count(HealthEvent::SloViolation), 1);
        assert_eq!(hs.count(HealthEvent::SloWindowClosed), 1);
    }

    #[test]
    fn same_stream_same_windows() {
        let lats: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37) % 1.9).collect();
        let mut a = SloTracker::new(cfg(8));
        let mut b = SloTracker::new(cfg(8));
        for &l in &lats {
            a.record(l, false, None);
            b.record(l, false, None);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must hold")]
    fn zero_window_rejected() {
        SloTracker::new(SloConfig {
            window: 0,
            ..SloConfig::default()
        });
    }
}
