//! # turbo-robust
//!
//! Fault-tolerance toolkit for the TurboAttention reproduction: the
//! pieces a production quantized-attention deployment needs when a bit
//! flips, a persisted cache tears, or an outlier blows past the INT8
//! range.
//!
//! * [`FaultInjector`] — deterministic, seedable injection of bit-flips
//!   into packed codes, truncation/mutation of serialized caches,
//!   NaN/Inf poisoning of activations, and simulated HBM pressure.
//! * [`HealthStats`] / [`HealthEvent`] — a shared atomic counter
//!   registry every detection, repair, and fallback reports into, so
//!   observed-fault counts can be checked against injected-fault counts.
//! * [`crc32`] / [`Crc32`] — hand-rolled IEEE CRC32 (no external
//!   crates) backing per-block checksums in the persisted-cache format,
//!   page scrubbing in the paged pool, and WAL record framing.
//! * [`ChaosPlan`] — seeded, time-ordered scripts of kills, WAL
//!   truncations, fault injections, pressure spikes, and *correlated*
//!   failure bursts (simultaneous multi-replica kills, zone faults,
//!   pressure storms) for the chaos soak harness; pure data consumed by
//!   the serving layer.
//! * [`SloTracker`] — windowed p50/p99 latency and SLO-violation-rate
//!   accounting the fleet control plane steers by.
//! * [`OnlineTuner`] — AIMD re-tuning of admission backoff, hedging
//!   delay, and breaker thresholds from observed SLO windows.
//! * [`ReplayTuner`] — sibling AIMD controller folding checkpoint
//!   cadence into the control plane: rebuild/replay telemetry tightens
//!   the `ReplayBudget` ceiling under churn and relaxes it when calm.
//!
//! The crate sits *below* `turbo-kvcache` and `turbo-attention` in the
//! dependency graph (it only needs `turbo-tensor` and `turbo-quant`),
//! so cache, engine, and serving layers can all share one vocabulary of
//! faults and one counter registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod crc32;
mod fault;
mod health;
mod slo;
mod tuner;

pub use chaos::{BurstKind, ChaosAction, ChaosBurst, ChaosConfig, ChaosEvent, ChaosPlan};
pub use crc32::{crc32, Crc32};
pub use fault::{ActivationFault, ByteFault, FaultInjector};
pub use health::{HealthEvent, HealthStats, ALL_EVENTS, EVENT_COUNT};
pub use slo::{percentile, SloConfig, SloTracker, SloWindow};
pub use tuner::{
    OnlineTuner, ReplayTelemetry, ReplayTuner, ReplayTunerConfig, TunedParams, TunerConfig,
};
