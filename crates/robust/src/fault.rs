//! Deterministic, seedable fault injection.
//!
//! [`FaultInjector`] produces the failure modes a production quantized
//! KV-cache stack actually sees — bit-flips in packed code storage,
//! truncated or mutated persisted snapshots, NaN/Inf activations, and
//! HBM pressure — from a seed, so every fault campaign in the test
//! suite replays byte-for-byte. Each injection method returns a record
//! of what it did; tests compare those records against the engine's
//! [`crate::HealthStats`] counters to prove detection matches injection.

use turbo_quant::PackedCodes;
use turbo_tensor::{Matrix, TensorRng};

/// The non-finite payloads [`FaultInjector::inject_non_finite`] cycles
/// through.
const NON_FINITE: [f32; 3] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];

/// A record of one byte-level corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteFault {
    /// Byte offset that was mutated.
    pub offset: usize,
    /// XOR mask applied (never zero).
    pub mask: u8,
}

/// A record of one activation-poisoning campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct ActivationFault {
    /// Flat element indices that were overwritten.
    pub indices: Vec<usize>,
    /// The non-finite value written at each index.
    pub values: Vec<f32>,
}

/// Deterministic fault generator.
///
/// # Example
///
/// ```
/// use turbo_robust::FaultInjector;
/// use turbo_quant::{BitWidth, PackedCodes};
///
/// let mut inj = FaultInjector::new(7);
/// let mut codes = PackedCodes::pack(&[0, 1, 2, 3], BitWidth::Int2);
/// let fault = inj.flip_bit(&mut codes).unwrap();
/// assert_ne!(fault.mask, 0); // exactly one bit flipped
/// ```
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: TensorRng,
}

impl FaultInjector {
    /// Creates an injector; the same seed replays the same fault
    /// sequence.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: TensorRng::new(seed),
        }
    }

    /// Flips one random bit in a byte buffer. Returns `None` for an
    /// empty buffer.
    pub fn flip_bit_in_bytes(&mut self, bytes: &mut [u8]) -> Option<ByteFault> {
        if bytes.is_empty() {
            return None;
        }
        let offset = self.rng.index(bytes.len());
        let mask = 1u8 << self.rng.index(8);
        bytes[offset] ^= mask;
        Some(ByteFault { offset, mask })
    }

    /// Flips one random bit inside a [`PackedCodes`] store — the
    /// radiation-upset / HBM-fault model for the quantized KV cache.
    pub fn flip_bit(&mut self, codes: &mut PackedCodes) -> Option<ByteFault> {
        self.flip_bit_in_bytes(codes.bytes_mut())
    }

    /// XORs `count` random bytes of `bytes` with random non-zero masks
    /// (offsets may repeat). Models a corrupted storage sector in a
    /// persisted cache.
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8], count: usize) -> Vec<ByteFault> {
        let mut faults = Vec::with_capacity(count);
        if bytes.is_empty() {
            return faults;
        }
        for _ in 0..count {
            let offset = self.rng.index(bytes.len());
            let mask = 1 + self.rng.index(255) as u8; // non-zero: always a real change
            bytes[offset] ^= mask;
            faults.push(ByteFault { offset, mask });
        }
        faults
    }

    /// Truncates a serialized blob at a random interior point (strictly
    /// shorter than the original, possibly empty). Models a torn write
    /// or partial download of a persisted cache. Returns the new length,
    /// or `None` if the blob was already empty.
    pub fn truncate_bytes(&mut self, bytes: &mut Vec<u8>) -> Option<usize> {
        if bytes.is_empty() {
            return None;
        }
        let keep = self.rng.index(bytes.len());
        bytes.truncate(keep);
        Some(keep)
    }

    /// Overwrites `count` random elements of an activation matrix with
    /// NaN/±Inf. Returns the exact fault record so tests can match
    /// sanitizer counters one-for-one. Duplicate element hits are
    /// avoided, so `record.indices.len() == min(count, m.len())`.
    pub fn inject_non_finite(&mut self, m: &mut Matrix, count: usize) -> ActivationFault {
        let n = m.as_slice().len();
        let count = count.min(n);
        let indices = self.rng.distinct_indices(n, count);
        let mut values = Vec::with_capacity(count);
        let data = m.as_mut_slice();
        for (k, &i) in indices.iter().enumerate() {
            let v = NON_FINITE[k % NON_FINITE.len()];
            data[i] = v;
            values.push(v);
        }
        ActivationFault { indices, values }
    }

    /// Draws a simulated "usable HBM fraction" in `[lo, hi)` — the
    /// memory-pressure knob for the serving simulator (e.g. another
    /// tenant grabbing capacity, fragmentation, ECC page retirement).
    pub fn hbm_pressure(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&lo) && lo < hi && hi <= 1.0,
            "pressure fractions must satisfy 0 <= lo < hi <= 1"
        );
        self.rng.uniform_value(lo as f32, hi as f32) as f64
    }

    /// Uniform index helper exposed for campaign scripting (choose which
    /// page / head / request to target next).
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.index(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_quant::BitWidth;

    #[test]
    fn same_seed_same_faults() {
        let mut a = FaultInjector::new(11);
        let mut b = FaultInjector::new(11);
        let mut buf_a = vec![0u8; 64];
        let mut buf_b = vec![0u8; 64];
        assert_eq!(a.corrupt_bytes(&mut buf_a, 8), b.corrupt_bytes(&mut buf_b, 8));
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut inj = FaultInjector::new(3);
        let codes: Vec<u8> = (0..32).map(|i| i % 4).collect();
        let clean = PackedCodes::pack(&codes, BitWidth::Int2);
        let mut dirty = clean.clone();
        let fault = inj.flip_bit(&mut dirty).unwrap();
        let diff: u32 = clean
            .bytes()
            .iter()
            .zip(dirty.bytes())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert_eq!(clean.bytes()[fault.offset] ^ fault.mask, dirty.bytes()[fault.offset]);
    }

    #[test]
    fn truncation_strictly_shrinks() {
        let mut inj = FaultInjector::new(4);
        for _ in 0..50 {
            let mut blob = vec![1u8; 100];
            let kept = inj.truncate_bytes(&mut blob).unwrap();
            assert!(kept < 100);
            assert_eq!(blob.len(), kept);
        }
        let mut empty: Vec<u8> = vec![];
        assert_eq!(inj.truncate_bytes(&mut empty), None);
    }

    #[test]
    fn non_finite_injection_is_accounted() {
        let mut inj = FaultInjector::new(5);
        let mut m = TensorRng::new(0).normal(16, 16, 0.0, 1.0);
        let record = inj.inject_non_finite(&mut m, 10);
        assert_eq!(record.indices.len(), 10);
        let poisoned = m.as_slice().iter().filter(|x| !x.is_finite()).count();
        assert_eq!(poisoned, 10);
        for (&i, &v) in record.indices.iter().zip(&record.values) {
            let got = m.as_slice()[i];
            assert!(!got.is_finite());
            // NaN != NaN, so compare via bit semantics.
            assert_eq!(got.is_nan(), v.is_nan());
            if !v.is_nan() {
                assert_eq!(got, v);
            }
        }
    }

    #[test]
    fn injection_caps_at_matrix_size() {
        let mut inj = FaultInjector::new(6);
        let mut m = TensorRng::new(0).normal(2, 2, 0.0, 1.0);
        let record = inj.inject_non_finite(&mut m, 100);
        assert_eq!(record.indices.len(), 4);
        assert!(m.as_slice().iter().all(|x| !x.is_finite()));
    }

    #[test]
    fn hbm_pressure_in_range() {
        let mut inj = FaultInjector::new(7);
        for _ in 0..100 {
            let f = inj.hbm_pressure(0.3, 0.9);
            assert!((0.3..0.9).contains(&f));
        }
    }
}
