//! Hand-rolled CRC32 (IEEE 802.3 polynomial), slicing-by-8.
//!
//! Used for cache-page and persisted-snapshot integrity checks. The
//! eight lookup tables are built at compile time so the hot path
//! processes eight bytes per iteration (eight lookups, one XOR tree) —
//! no external crates, fully deterministic, and bit-identical to the
//! classic one-table-per-byte formulation. WAL group commits checksum a
//! multi-kilobyte frame per decoded token, so the checksum sits on the
//! serving hot path.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables. `TABLES[0]` is the classic byte table;
/// `TABLES[k][i]` advances the CRC of byte `i` through `k` further zero
/// bytes, letting eight input bytes fold in parallel.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Advances a raw (pre-finalized) CRC state over `data`.
fn update_raw(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32 (IEEE) of `data`, matching the common zlib/`crc32` convention
/// (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    update_raw(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC32 over several fragments without concatenating them.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds one fragment.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update_raw(self.state, data);
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"progressive quantization block payload";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn slicing_by_8_matches_bytewise_reference() {
        // The classic one-table formulation, kept as an oracle: the
        // slicing-by-8 hot path must agree at every length, including
        // the 1..7-byte remainders around the 8-byte fold boundary.
        fn reference(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for len in (0..64).chain([255, 256, 257, 1000, 1024]) {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x08;
        assert_ne!(crc32(&data), clean);
    }
}
