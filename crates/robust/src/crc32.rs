//! Hand-rolled CRC32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used for cache-page and persisted-snapshot integrity checks. The
//! table is built at compile time so the hot path is one lookup and one
//! shift per byte — no external crates, fully deterministic.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one CRC step per byte value.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `data`, matching the common zlib/`crc32` convention
/// (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Incremental CRC32 over several fragments without concatenating them.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds one fragment.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"progressive quantization block payload";
        let mut inc = Crc32::new();
        inc.update(&data[..10]);
        inc.update(&data[10..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x08;
        assert_ne!(crc32(&data), clean);
    }
}
