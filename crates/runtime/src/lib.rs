//! # turbo-runtime
//!
//! Shared, persistent work-stealing execution runtime for the CPU
//! substrate.
//!
//! Every parallel entry point in the workspace used to spawn one fresh OS
//! thread per head per call — oversubscribing the machine whenever
//! `heads > cores` and paying spawn latency on every decode step. This
//! crate replaces that with one lazily-initialized global pool
//! ([`global`]) sized from `std::thread::available_parallelism` and
//! overridable via the `TURBO_RUNTIME_THREADS` environment variable or a
//! per-instance [`Runtime::with_workers`] constructor.
//!
//! ## Determinism
//!
//! [`Runtime::par_map`] / [`Runtime::par_tiles`] partition work into a
//! *fixed* set of indexed tasks that depends only on the input (never on
//! the worker count), run each task's pure function independently, and
//! merge results in index order. Because floating-point reductions happen
//! inside a task — never across tasks in scheduling order — the output is
//! bit-identical to a serial sweep regardless of how many workers execute
//! it or how work gets stolen. The equivalence tests in
//! `turbo-attention` pin this at 1, 2, and N workers.
//!
//! ## Nesting and deadlock freedom
//!
//! A submitting thread does not sleep while its batch runs: it *helps*,
//! draining queued tasks (its own batch's or anyone else's) until its
//! completion latch drops. A pool worker that submits a nested batch
//! becomes a helper the same way, so nested `par_map` calls (e.g. head-
//! level parallelism over tile-level parallelism) cannot deadlock even on
//! a single-worker pool.
//!
//! ## Instrumentation
//!
//! The pool counts spawned workers, executed tasks, and steals into a
//! [`turbo_robust::HealthStats`] registry ([`Runtime::health`]) and keeps
//! richer gauges (per-task wall time, peak queue depth, peak concurrent
//! workers) in a [`RuntimeSnapshot`]. The worker-spawn counter is the
//! regression guard that the pool never exceeds its configured size.

//! ## Layer pipeline
//!
//! [`LayerPipeline`] layers a dependency-graph executor on top of
//! [`Runtime::scope`]'s dynamic task spawning: heterogeneous work classes
//! ([`WorkClass`] — prefill chunks, decode steps, WAL commits,
//! checkpoints) tagged per layer, released to the pool the moment their
//! dependency edges drop. Layer `k+1`'s prefill overlaps layer `k`'s
//! decode while per-layer token order — and the WAL's one-record-per-token
//! group commit — stay exact, because they are edges, not conventions.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod pipeline;
mod pool;

pub use pipeline::{LayerPipeline, PipelineStats, TaskId, WorkClass};
pub use pool::{global, worker_count_from, Runtime, RuntimeSnapshot, Scope, ENV_WORKERS};
