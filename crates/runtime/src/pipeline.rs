//! Dependency-graph pipeline executor with tagged per-layer work classes.
//!
//! A [`LayerPipeline`] is a DAG of one-shot tasks, each tagged with a
//! [`WorkClass`] (prefill chunk, decode step, WAL commit, checkpoint) and
//! a layer index. Tasks are submitted to the shared pool through
//! [`Runtime::scope`] as their dependencies complete, so layer `k+1`'s
//! prefill chunks can overlap layer `k`'s decode while every individual
//! ordering constraint — per-layer token order, the WAL's one-record-per-
//! token group commit — is expressed as an edge and therefore never
//! violated.
//!
//! ## Determinism
//!
//! The executor guarantees only edge order, not a global schedule; results
//! are bit-identical to a serial topological execution because every task
//! writes its own disjoint slot and reads only slots its (transitive)
//! dependencies wrote. No floating-point value ever depends on scheduling
//! order. [`LayerPipeline::run_serial`] executes the same graph in task-id
//! order (a topological order by construction) and is the reference the
//! equivalence tests compare against at 1/2/8 workers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::{Runtime, Scope};

/// What kind of work a pipeline task performs. Classes exist for
/// scheduling observability (heterogeneous task mixes are the point of
/// the pipeline) — they carry no execution semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkClass {
    /// A chunk of prompt prefill for one layer.
    PrefillChunk,
    /// One decode token step for one layer.
    DecodeStep,
    /// A write-ahead-log group commit (one atomic record per token).
    WalCommit,
    /// A checkpoint / WAL-sync barrier.
    Checkpoint,
}

impl WorkClass {
    /// Number of distinct work classes.
    pub const COUNT: usize = 4;

    /// Dense index for per-class counters.
    pub fn index(self) -> usize {
        match self {
            WorkClass::PrefillChunk => 0,
            WorkClass::DecodeStep => 1,
            WorkClass::WalCommit => 2,
            WorkClass::Checkpoint => 3,
        }
    }
}

/// Opaque handle to a task added to a [`LayerPipeline`]; used to declare
/// dependencies of later tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskId(usize);

/// A task body: boxed once at registration, taken exactly once at run.
type TaskBody<'env> = Option<Box<dyn FnOnce() + Send + 'env>>;

/// One node of the pipeline DAG.
struct TaskSpec<'env> {
    class: WorkClass,
    layer: usize,
    deps: Vec<TaskId>,
    body: TaskBody<'env>,
}

/// A DAG of tagged one-shot tasks executed on the shared pool with
/// maximal overlap, or serially in task-id order for reference.
///
/// Tasks may only depend on previously added tasks, which makes the graph
/// acyclic by construction and makes task-id order a topological order.
#[derive(Default)]
pub struct LayerPipeline<'env> {
    tasks: Vec<TaskSpec<'env>>,
}

/// Execution statistics returned by the pipeline runners.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total tasks executed.
    pub tasks: usize,
    /// Tasks executed per [`WorkClass`] (indexed by [`WorkClass::index`]).
    pub runs_per_class: [usize; WorkClass::COUNT],
    /// Most tasks ever simultaneously in flight — the overlap gauge.
    /// Always 1 for [`LayerPipeline::run_serial`].
    pub peak_in_flight: usize,
}

impl<'env> LayerPipeline<'env> {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self { tasks: Vec::new() }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds one task tagged `class`/`layer`, runnable once every task in
    /// `deps` has completed. Returns the new task's id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a task not yet added (forward
    /// edges are what would make cycles possible).
    pub fn task<F>(&mut self, class: WorkClass, layer: usize, deps: &[TaskId], body: F) -> TaskId
    where
        F: FnOnce() + Send + 'env,
    {
        let id = self.tasks.len();
        for d in deps {
            assert!(
                d.0 < id,
                "pipeline dependency {} must precede task {id}",
                d.0
            );
        }
        self.tasks.push(TaskSpec {
            class,
            layer,
            deps: deps.to_vec(),
            body: Some(Box::new(body)),
        });
        TaskId(id)
    }

    /// Runs every task serially in task-id order (a topological order by
    /// construction). This is the bit-identity reference for [`run_on`]:
    /// both runners invoke the same bodies under the same ordering
    /// constraints.
    ///
    /// [`run_on`]: LayerPipeline::run_on
    pub fn run_serial(self) -> PipelineStats {
        let mut stats = PipelineStats {
            tasks: self.tasks.len(),
            peak_in_flight: if self.tasks.is_empty() { 0 } else { 1 },
            ..PipelineStats::default()
        };
        for spec in self.tasks {
            stats.runs_per_class[spec.class.index()] += 1;
            let _ = spec.layer;
            (spec.body.expect("task body present"))();
        }
        stats
    }

    /// Runs the DAG on `rt` with maximal overlap: every task whose
    /// dependencies have completed is eligible immediately, so independent
    /// layers' work classes interleave freely on the pool.
    ///
    /// # Panics
    ///
    /// Re-throws the first task panic after the graph has drained as far
    /// as it can (a panicked task's dependents never run).
    pub fn run_on(self, rt: &Runtime) -> PipelineStats {
        let n = self.tasks.len();
        if n == 0 {
            return PipelineStats::default();
        }
        // Roots are determined statically before anything runs: reading
        // the live `pending` counters here would race with completions
        // already decrementing them, double-launching fast dependents.
        let roots: Vec<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.deps.is_empty())
            .map(|(id, _)| id)
            .collect();
        let exec = Exec::new(self.tasks);
        rt.scope(|s| {
            for &id in &roots {
                exec.launch(s, id);
            }
        });
        exec.into_stats()
    }
}

/// Shared executor state for [`LayerPipeline::run_on`]; borrowed (`'env`
/// of the scope) by every spawned task.
struct Exec<'env> {
    /// Unmet-dependency counters; a task is spawned when its count drops
    /// to zero.
    pending: Vec<AtomicUsize>,
    /// Reverse edges: tasks to notify when task `i` completes.
    children: Vec<Vec<usize>>,
    classes: Vec<WorkClass>,
    bodies: Vec<Mutex<TaskBody<'env>>>,
    runs_per_class: [AtomicUsize; WorkClass::COUNT],
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
}

impl<'env> Exec<'env> {
    fn new(tasks: Vec<TaskSpec<'env>>) -> Self {
        let n = tasks.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending = Vec::with_capacity(n);
        let mut classes = Vec::with_capacity(n);
        let mut bodies = Vec::with_capacity(n);
        for (id, spec) in tasks.into_iter().enumerate() {
            pending.push(AtomicUsize::new(spec.deps.len()));
            for d in &spec.deps {
                children[d.0].push(id);
            }
            classes.push(spec.class);
            bodies.push(Mutex::new(spec.body));
        }
        Self {
            pending,
            children,
            classes,
            bodies,
            runs_per_class: Default::default(),
            in_flight: AtomicUsize::new(0),
            peak_in_flight: AtomicUsize::new(0),
        }
    }

    fn into_stats(self) -> PipelineStats {
        let mut runs_per_class = [0usize; WorkClass::COUNT];
        let mut tasks = 0;
        for (slot, counter) in runs_per_class.iter_mut().zip(&self.runs_per_class) {
            *slot = counter.load(Ordering::Relaxed);
            tasks += *slot;
        }
        PipelineStats {
            tasks,
            runs_per_class,
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
        }
    }

    /// Spawns task `id` onto the scope; on completion, decrements each
    /// child's pending count and launches any child that becomes ready.
    ///
    /// The scope's environment lifetime is deliberately independent of
    /// `'env` (the bodies' borrows) so the executor itself can live on the
    /// caller's stack for exactly the duration of the scope call.
    fn launch<'scope>(&'scope self, s: &'scope Scope<'scope, '_>, id: usize) {
        s.spawn(move || {
            let body = self.bodies[id]
                .lock()
                .expect("pipeline body slot poisoned")
                .take()
                .expect("pipeline task launched twice");
            let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            let mut peak = self.peak_in_flight.load(Ordering::Relaxed);
            while now > peak {
                match self.peak_in_flight.compare_exchange_weak(
                    peak,
                    now,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => peak = seen,
                }
            }
            body();
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
            self.runs_per_class[self.classes[id].index()].fetch_add(1, Ordering::Relaxed);
            // Ready children are launched breadth-first; each dependency
            // edge is released exactly once, by the task completing it.
            let mut ready = VecDeque::new();
            for &child in &self.children[id] {
                if self.pending[child].fetch_sub(1, Ordering::AcqRel) == 1 {
                    ready.push_back(child);
                }
            }
            while let Some(child) = ready.pop_front() {
                self.launch(s, child);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Builds a diamond graph a → {b, c} → d recording execution order.
    fn diamond<'a>(order: &'a Mutex<Vec<&'static str>>) -> LayerPipeline<'a> {
        let mut p = LayerPipeline::new();
        let push = |tag: &'static str| {
            move || order.lock().unwrap().push(tag)
        };
        let a = p.task(WorkClass::PrefillChunk, 0, &[], push("a"));
        let b = p.task(WorkClass::DecodeStep, 0, &[a], push("b"));
        let c = p.task(WorkClass::PrefillChunk, 1, &[a], push("c"));
        let _d = p.task(WorkClass::WalCommit, 0, &[b, c], push("d"));
        p
    }

    #[test]
    fn diamond_respects_edges_at_every_worker_count() {
        for workers in [1usize, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let order = Mutex::new(Vec::new());
            let stats = diamond(&order).run_on(&rt);
            let order = order.into_inner().unwrap();
            assert_eq!(stats.tasks, 4, "workers = {workers}");
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], "a");
            assert_eq!(order[3], "d");
            assert_eq!(stats.runs_per_class, [2, 1, 1, 0]);
        }
    }

    #[test]
    fn serial_runner_executes_in_id_order() {
        let order = Mutex::new(Vec::new());
        let stats = diamond(&order).run_serial();
        assert_eq!(order.into_inner().unwrap(), vec!["a", "b", "c", "d"]);
        assert_eq!(stats.tasks, 4);
        assert_eq!(stats.peak_in_flight, 1);
    }

    #[test]
    fn chain_is_fully_ordered() {
        let rt = Runtime::with_workers(8);
        let value = AtomicU64::new(1);
        let mut p = LayerPipeline::new();
        let mut prev: Option<TaskId> = None;
        // Non-commutative updates: any reordering changes the result.
        for i in 1..=20u64 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(p.task(WorkClass::DecodeStep, 0, &deps, {
                let value = &value;
                move || {
                    let v = value.load(Ordering::Relaxed);
                    value.store(v.wrapping_mul(31).wrapping_add(i), Ordering::Relaxed);
                }
            }));
        }
        let mut expect = 1u64;
        for i in 1..=20u64 {
            expect = expect.wrapping_mul(31).wrapping_add(i);
        }
        let stats = p.run_on(&rt);
        assert_eq!(value.load(Ordering::Relaxed), expect);
        assert_eq!(stats.peak_in_flight, 1, "a chain can never overlap");
    }

    #[test]
    fn independent_tasks_overlap_on_a_multi_worker_pool() {
        let rt = Runtime::with_workers(4);
        let mut p = LayerPipeline::new();
        for layer in 0..8 {
            p.task(WorkClass::PrefillChunk, layer, &[], || {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        }
        let stats = p.run_on(&rt);
        assert_eq!(stats.tasks, 8);
        assert!(
            stats.peak_in_flight >= 2,
            "independent tasks never overlapped (peak {})",
            stats.peak_in_flight
        );
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_dependency_is_rejected() {
        let mut p = LayerPipeline::new();
        p.task(WorkClass::DecodeStep, 0, &[TaskId(3)], || {});
    }

    #[test]
    fn panicked_task_propagates_and_skips_dependents() {
        let rt = Runtime::with_workers(2);
        let ran_dependent = std::sync::Arc::new(AtomicUsize::new(0));
        let ran = std::sync::Arc::clone(&ran_dependent);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut p = LayerPipeline::new();
            let a = p.task(WorkClass::DecodeStep, 0, &[], || panic!("pipeline task died"));
            let ran = &ran;
            p.task(WorkClass::WalCommit, 0, &[a], move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
            p.run_on(&rt)
        }));
        assert!(out.is_err());
        assert_eq!(ran_dependent.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_pipeline_is_a_no_op() {
        let rt = Runtime::with_workers(2);
        let stats = LayerPipeline::new().run_on(&rt);
        assert_eq!(stats, PipelineStats::default());
        assert_eq!(LayerPipeline::new().run_serial(), PipelineStats::default());
    }
}
