//! The work-stealing thread pool and its deterministic batch APIs.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use turbo_robust::{HealthEvent, HealthStats};

/// Environment variable overriding the global pool's worker count.
pub const ENV_WORKERS: &str = "TURBO_RUNTIME_THREADS";

/// How long an idle worker sleeps before re-scanning the queues. Purely a
/// liveness backstop — submission always notifies under the sleep lock,
/// so no wakeup can be lost.
const IDLE_RESCAN: Duration = Duration::from_millis(20);

/// How long a helping submitter waits on its batch latch between attempts
/// to drain queued work.
const HELP_POLL: Duration = Duration::from_micros(200);

/// One schedulable task: a pointer to its batch plus the item index it
/// covers. The raw pointer is what lets persistent `'static` workers run
/// borrowed closures; see the safety argument on [`BatchCore`].
#[derive(Clone, Copy)]
struct Unit {
    batch: *const BatchCore,
    index: usize,
}

// SAFETY: a `Unit` is only ever dereferenced while its batch's submitter
// blocks inside `run_batch`, which keeps the `BatchCore` (and everything
// the erased closure borrows) alive until the completion latch drops.
unsafe impl Send for Unit {}

/// Shared state of one in-flight batch. Lives on the submitting thread's
/// stack for the whole execution:
///
/// * `run_batch` does not return until `remaining` has reached zero *and*
///   the `done` flag has been flipped under its mutex, so every queued
///   [`Unit`] pointing here is executed (and forgotten) strictly before
///   the core is dropped;
/// * the erased `run` closure therefore never outlives the borrows it
///   captures, even though the pointer type says `'static`-ish.
struct BatchCore {
    /// Lifetime-erased task body: invoked once per index in
    /// `0..task_count`. Erasure is sound because `run_batch` keeps the
    /// real closure alive until the latch drops.
    run: &'static (dyn Fn(usize) + Sync),
    /// Tasks not yet completed.
    remaining: AtomicUsize,
    /// Completion flag, flipped under the mutex so the submitter cannot
    /// miss the final notification.
    done: Mutex<bool>,
    /// Signalled when the last task completes.
    done_cv: Condvar,
    /// First panic payload observed in this batch, re-thrown by the
    /// submitter once the batch has fully drained.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl BatchCore {
    /// Marks one task complete; the last completion flips `done` under
    /// the mutex and wakes the submitter.
    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock().expect("batch latch poisoned");
            *done = true;
            self.done_cv.notify_all();
        }
    }
}

/// State shared between the pool's workers and every submitting thread.
struct Shared {
    /// One FIFO task queue per worker; submissions round-robin across
    /// them and idle workers steal from their siblings.
    queues: Vec<Mutex<VecDeque<Unit>>>,
    /// Sleep coordination: workers check all queues while holding this
    /// lock before sleeping; submitters notify while holding it.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for spreading submissions across queues.
    next_queue: AtomicUsize,
    /// Event tallies mirrored into the robustness registry.
    health: Arc<HealthStats>,
    // Instrumentation gauges.
    tasks_run: AtomicU64,
    tasks_stolen: AtomicU64,
    helper_tasks: AtomicU64,
    total_task_ns: AtomicU64,
    max_queue_depth: AtomicUsize,
    active_workers: AtomicUsize,
    max_active_workers: AtomicUsize,
}

impl Shared {
    fn new(workers: usize, health: Arc<HealthStats>) -> Self {
        Self {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
            health,
            tasks_run: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            helper_tasks: AtomicU64::new(0),
            total_task_ns: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            active_workers: AtomicUsize::new(0),
            max_active_workers: AtomicUsize::new(0),
        }
    }

    /// Pops a task for `home` (its own queue first, then stealing).
    /// Returns the unit and whether it was stolen. `home` may be
    /// `queues.len()` for helping submitters, who always "steal".
    fn grab(&self, home: usize) -> Option<(Unit, bool)> {
        if home < self.queues.len() {
            if let Some(u) = self.queues[home]
                .lock()
                .expect("queue poisoned")
                .pop_front()
            {
                return Some((u, false));
            }
        }
        let n = self.queues.len();
        for off in 0..n {
            let q = (home.wrapping_add(1).wrapping_add(off)) % n;
            if q == home {
                continue;
            }
            if let Some(u) = self.queues[q].lock().expect("queue poisoned").pop_front() {
                return Some((u, true));
            }
        }
        None
    }

    fn any_queued(&self) -> bool {
        self.queues
            .iter()
            .any(|q| !q.lock().expect("queue poisoned").is_empty())
    }

    /// Queues one unit on the round-robin cursor's next queue and wakes
    /// sleeping workers. Used by dynamically-spawned (scope) tasks; batch
    /// submission keeps its single post-loop notification instead.
    fn push_unit(&self, unit: Unit) {
        let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        let depth = {
            let mut queue = self.queues[q].lock().expect("queue poisoned");
            queue.push_back(unit);
            queue.len()
        };
        Self::bump_max(&self.max_queue_depth, depth);
        {
            // Empty critical section orders the push before any worker's
            // sleep decision, so the notification cannot be lost.
            let _guard = self.sleep.lock().expect("sleep lock poisoned");
            self.wake.notify_all();
        }
    }

    fn bump_max(cell: &AtomicUsize, value: usize) {
        let mut cur = cell.load(Ordering::Relaxed);
        while value > cur {
            match cell.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Runs one unit, recording wall time and health events. `stolen`
    /// counts a steal; `helper` marks execution by a submitting thread
    /// rather than a pool worker.
    fn execute(&self, unit: Unit, stolen: bool, helper: bool) {
        // SAFETY: the unit was queued by `run_batch`, whose submitter is
        // still blocked on the batch latch, so the core and everything
        // its closure borrows are alive.
        let core = unsafe { &*unit.batch };
        let t = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| (core.run)(unit.index)));
        let ns = t.elapsed().as_nanos() as u64;
        self.total_task_ns.fetch_add(ns, Ordering::Relaxed);
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
        self.health.record(HealthEvent::RuntimeTaskRun);
        if stolen {
            self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
            self.health.record(HealthEvent::RuntimeTaskStolen);
        }
        if helper {
            self.helper_tasks.fetch_add(1, Ordering::Relaxed);
        }
        if let Err(payload) = result {
            let mut slot = core.panic.lock().expect("panic slot poisoned");
            slot.get_or_insert(payload);
        }
        core.complete_one();
    }

    /// Persistent worker loop.
    fn worker_loop(&self, id: usize) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some((unit, stolen)) = self.grab(id) {
                let active = self.active_workers.fetch_add(1, Ordering::Relaxed) + 1;
                Self::bump_max(&self.max_active_workers, active);
                self.execute(unit, stolen, false);
                self.active_workers.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            // Nothing anywhere: sleep until a submitter notifies. The
            // queue re-check under the sleep lock closes the race with a
            // submitter that pushed between our scan and this lock.
            let guard = self.sleep.lock().expect("sleep lock poisoned");
            if self.shutdown.load(Ordering::Acquire) || self.any_queued() {
                continue;
            }
            let _ = self
                .wake
                .wait_timeout(guard, IDLE_RESCAN)
                .expect("sleep lock poisoned");
        }
    }
}

/// A persistent work-stealing thread pool with deterministic batch APIs.
///
/// Most code should use the process-wide [`global`] pool; tests construct
/// private pools via [`Runtime::with_workers`] to pin behavior at fixed
/// worker counts.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl Runtime {
    /// Builds a pool with exactly `workers` persistent threads (clamped
    /// to at least 1). Workers are spawned eagerly and recorded in the
    /// health registry.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let health = Arc::new(HealthStats::new());
        let shared = Arc::new(Shared::new(workers, health));
        let handles = (0..workers)
            .map(|id| {
                let s = Arc::clone(&shared);
                s.health.record(HealthEvent::RuntimeWorkerSpawned);
                std::thread::Builder::new()
                    .name(format!("turbo-runtime-{id}"))
                    .spawn(move || s.worker_loop(id))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
        }
    }

    /// Number of persistent pool workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The health registry the pool records
    /// spawn/task/steal events into.
    pub fn health(&self) -> &HealthStats {
        &self.shared.health
    }

    /// Point-in-time instrumentation snapshot.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let s = &self.shared;
        RuntimeSnapshot {
            workers: self.workers,
            tasks_run: s.tasks_run.load(Ordering::Relaxed),
            tasks_stolen: s.tasks_stolen.load(Ordering::Relaxed),
            helper_tasks: s.helper_tasks.load(Ordering::Relaxed),
            total_task_ns: s.total_task_ns.load(Ordering::Relaxed),
            max_queue_depth: s.max_queue_depth.load(Ordering::Relaxed),
            max_active_workers: s.max_active_workers.load(Ordering::Relaxed),
        }
    }

    /// Core erased executor: queues `tasks` indexed units running `run`,
    /// helps drain queues while waiting, and re-throws the first task
    /// panic once the batch has fully completed.
    fn run_batch(&self, tasks: usize, run: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // SAFETY: lifetime erasure only. This frame blocks on the batch
        // latch below until every queued unit has executed, so the erased
        // reference never outlives the closure (or anything it borrows).
        let run_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(run)
        };
        let core = BatchCore {
            run: run_static,
            remaining: AtomicUsize::new(tasks),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        };

        // Distribute units round-robin across worker queues. The mapping
        // of index -> queue affects only scheduling, never results.
        let n_queues = self.shared.queues.len();
        let start = self.shared.next_queue.fetch_add(1, Ordering::Relaxed);
        for index in 0..tasks {
            let unit = Unit {
                batch: &core as *const _,
                index,
            };
            let q = (start + index) % n_queues;
            let depth = {
                let mut queue = self.shared.queues[q].lock().expect("queue poisoned");
                queue.push_back(unit);
                queue.len()
            };
            Shared::bump_max(&self.shared.max_queue_depth, depth);
        }
        {
            // Empty critical section orders the pushes before any worker's
            // sleep decision, so the notification cannot be lost.
            let _guard = self.shared.sleep.lock().expect("sleep lock poisoned");
            self.shared.wake.notify_all();
        }

        self.help_until_done(&core);

        let payload = core.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Helps drain queued units (this batch's or any other's) until
    /// `core`'s completion latch drops.
    fn help_until_done(&self, core: &BatchCore) {
        let n_queues = self.shared.queues.len();
        loop {
            if let Some((unit, _stolen)) = self.shared.grab(n_queues) {
                self.shared.execute(unit, false, true);
                continue;
            }
            let guard = core.done.lock().expect("batch latch poisoned");
            if *guard {
                break;
            }
            let (guard, _) = core
                .done_cv
                .wait_timeout(guard, HELP_POLL)
                .expect("batch latch poisoned");
            if *guard {
                break;
            }
        }
    }

    /// Structured dynamic-task scope, the pool's analog of
    /// [`std::thread::scope`]: tasks are spawned one at a time (including
    /// from inside other tasks) rather than as a fixed-size batch, and all
    /// of them are guaranteed to have finished when `scope` returns.
    ///
    /// Spawned closures may borrow anything that outlives the `scope` call
    /// (`'env`), including the [`Scope`] handle itself for nested spawns.
    /// The submitting thread helps drain queues while it waits, so scopes
    /// complete even on a single-worker pool.
    ///
    /// # Panics
    ///
    /// A panic in the body is re-thrown after every spawned task has
    /// drained; otherwise the first task panic is re-thrown.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let tasks: Mutex<VecDeque<ScopeTask>> = Mutex::new(VecDeque::new());
        // Each queued unit runs exactly one spawned task. `spawn` pushes
        // the boxed task strictly before its unit, so the pop cannot miss.
        let run = |_index: usize| {
            let task = tasks
                .lock()
                .expect("scope task queue poisoned")
                .pop_front()
                .expect("scope unit queued without a task");
            task();
        };
        // SAFETY: lifetime erasure only, same argument as `run_batch`:
        // this frame blocks on the latch below until every queued unit has
        // executed, so the erased reference never outlives `run` (or the
        // `tasks` deque it borrows).
        let run_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&run)
        };
        // The latch starts at 1: an "owner" token held by this frame while
        // the body runs, so in-flight spawns can never drop it to zero
        // before the body has finished spawning.
        let core = BatchCore {
            run: run_static,
            remaining: AtomicUsize::new(1),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        };
        let scope = Scope {
            rt: self,
            core: &core,
            tasks: &tasks,
            scope_marker: PhantomData,
            env_marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Release the owner token (even if the body panicked — already-
        // spawned tasks still run to completion) and drain.
        core.complete_one();
        self.help_until_done(&core);

        let task_panic = core.panic.lock().expect("panic slot poisoned").take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                r
            }
        }
    }

    /// Deterministic indexed map: computes `f(0..n)` on the pool and
    /// returns results in index order. Output is bit-identical to the
    /// serial `(0..n).map(f).collect()` for any worker count, because
    /// each index is computed independently by the same pure function and
    /// merged in index order.
    ///
    /// # Panics
    ///
    /// Re-throws the first panic raised by any task, after the whole
    /// batch has drained.
    pub fn par_map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // A one-task batch gains nothing from the pool; inline
            // execution is bit-identical by construction.
            return vec![f(0)];
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let run = |i: usize| {
            let r = f(i);
            *slots[i].lock().expect("result slot poisoned") = Some(r);
        };
        self.run_batch(n, &run);
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("task completed without writing its result")
            })
            .collect()
    }

    /// Deterministic map over a slice; results are in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Deterministic map with exclusive mutable access to each item;
    /// results are in item order.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        self.par_map_indexed(n, move |i| {
            // SAFETY: `par_map_indexed` invokes each index exactly once
            // and `i < n = items.len()`, so every task gets exclusive
            // access to a distinct element while the slice borrow is held
            // by this frame.
            let item = unsafe { &mut *base.at(i) };
            f(item)
        })
    }

    /// Deterministic chunked map: partitions `0..n` into tiles of
    /// `tile_size` (the last may be ragged), computes `f` per tile on the
    /// pool, and returns per-tile results in tile order. The partition
    /// depends only on `(n, tile_size)` — never on the worker count — so
    /// any cross-tile merge the caller performs sees tiles in the same
    /// order a serial sweep would produce.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size == 0`.
    pub fn par_tiles<R, F>(&self, n: usize, tile_size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        assert!(tile_size > 0, "tile size must be positive");
        let tiles = n.div_ceil(tile_size);
        self.par_map_indexed(tiles, |t| {
            let lo = t * tile_size;
            let hi = (lo + tile_size).min(n);
            f(lo..hi)
        })
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep.lock().expect("sleep lock poisoned");
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

/// A boxed dynamically-spawned task. Stored lifetime-erased; soundness is
/// the scope latch (see [`Runtime::scope`]).
type ScopeTask = Box<dyn FnOnce() + Send + 'static>;

/// Handle for spawning tasks inside a [`Runtime::scope`] call.
///
/// Mirrors [`std::thread::Scope`]: `'scope` is the lifetime of the scope
/// itself (everything spawned joins before it ends), `'env` the lifetime
/// of borrows from outside it. Both are invariant. Tasks capture the
/// handle by reference to spawn nested tasks.
pub struct Scope<'scope, 'env: 'scope> {
    rt: &'scope Runtime,
    core: &'scope BatchCore,
    tasks: &'scope Mutex<VecDeque<ScopeTask>>,
    /// Invariance over `'scope`, exactly as in `std::thread::Scope`.
    scope_marker: PhantomData<&'scope mut &'scope ()>,
    /// Invariance over `'env`.
    env_marker: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns one task onto the pool. The task may borrow from `'env` and
    /// may itself spawn further tasks through a captured `&Scope`.
    ///
    /// Unlike the batch APIs there is no result plumbing: tasks
    /// communicate through whatever `'env` state they were given. Panics
    /// are collected and re-thrown by the owning `scope` call.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: lifetime erasure only. The owning `scope` frame cannot
        // return before this task has executed: the latch token added
        // below is only released by `execute` after the task body runs.
        let boxed: ScopeTask = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, ScopeTask>(boxed)
        };
        // Order matters: add the latch token first (so the latch can never
        // transiently read zero while this task is queued), then stage the
        // body, then publish the unit that will pop it.
        self.core.remaining.fetch_add(1, Ordering::AcqRel);
        self.tasks
            .lock()
            .expect("scope task queue poisoned")
            .push_back(boxed);
        self.rt.shared.push_unit(Unit {
            batch: self.core as *const _,
            index: 0,
        });
    }
}

/// Raw-pointer wrapper that is `Send`/`Sync` so disjoint-index tasks can
/// reach their slice element.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Pointer to element `i`. A method (rather than field access) so
    /// closures capture the whole `Sync` wrapper under edition-2021
    /// precise-capture rules.
    fn at(self, i: usize) -> *mut T {
        self.0.wrapping_add(i)
    }
}

// SAFETY: access discipline (one index per task) is enforced by
// `par_map_mut`; the pointer itself carries no aliasing.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Instrumentation snapshot of a [`Runtime`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    /// Configured persistent worker count.
    pub workers: usize,
    /// Tasks executed to completion (by workers and helpers).
    pub tasks_run: u64,
    /// Tasks a worker took from a sibling's queue.
    pub tasks_stolen: u64,
    /// Tasks executed by submitting threads while waiting on a latch.
    pub helper_tasks: u64,
    /// Total wall time spent inside task bodies, in nanoseconds.
    pub total_task_ns: u64,
    /// Deepest any single queue has been.
    pub max_queue_depth: usize,
    /// Most pool workers ever simultaneously inside a task body — the
    /// oversubscription regression gauge (helpers excluded).
    pub max_active_workers: usize,
}

/// Parses a worker-count override; falls back to `fallback` when the
/// value is missing, unparsable, or zero. Split out of [`global`] so the
/// policy is unit-testable without touching process environment.
pub fn worker_count_from(env_value: Option<&str>, fallback: usize) -> usize {
    env_value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(fallback)
        .max(1)
}

static GLOBAL: OnceLock<Runtime> = OnceLock::new();

/// The process-wide execution runtime, initialized on first use with
/// `available_parallelism` workers (or the `TURBO_RUNTIME_THREADS`
/// override).
pub fn global() -> &'static Runtime {
    GLOBAL.get_or_init(|| {
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = worker_count_from(
            std::env::var(ENV_WORKERS).ok().as_deref(),
            fallback,
        );
        Runtime::with_workers(workers)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_at_every_worker_count() {
        let items: Vec<f32> = (0..257).map(|i| i as f32 * 0.37 - 40.0).collect();
        let serial: Vec<f32> = items.iter().map(|x| (x * 1.7).sin() + x).collect();
        for workers in [1usize, 2, 3, 8] {
            let rt = Runtime::with_workers(workers);
            let pooled = rt.par_map(&items, |x| (x * 1.7).sin() + x);
            assert_eq!(pooled, serial, "workers = {workers}");
        }
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let rt = Runtime::with_workers(4);
        let out = rt.par_map_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_gives_each_task_its_own_element() {
        let rt = Runtime::with_workers(4);
        let mut items: Vec<u64> = (0..64).collect();
        let prior = rt.par_map_mut(&mut items, |x| {
            let before = *x;
            *x += 1000;
            before
        });
        assert_eq!(prior, (0..64).collect::<Vec<u64>>());
        assert_eq!(items, (1000..1064).collect::<Vec<u64>>());
    }

    #[test]
    fn par_tiles_partition_is_independent_of_workers() {
        let expected = vec![0..30, 30..60, 60..90, 90..100];
        for workers in [1usize, 2, 5] {
            let rt = Runtime::with_workers(workers);
            let ranges = rt.par_tiles(100, 30, |r| r);
            assert_eq!(ranges, expected, "workers = {workers}");
        }
    }

    #[test]
    fn nested_batches_do_not_deadlock_on_one_worker() {
        let rt = Runtime::with_workers(1);
        let out = rt.par_map_indexed(4, |outer| {
            let inner = rt.par_map_indexed(4, move |i| outer * 10 + i);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..4)
            .map(|o| (0..4).map(|i| o * 10 + i).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pool_never_exceeds_configured_worker_count() {
        let cap = 2;
        let rt = Runtime::with_workers(cap);
        // Many more tasks than workers, several times over: the old
        // thread-per-head code would have spawned 64 threads per call.
        for _ in 0..4 {
            let out = rt.par_map_indexed(64, |i| {
                std::thread::sleep(Duration::from_micros(200));
                i
            });
            assert_eq!(out.len(), 64);
        }
        let snap = rt.snapshot();
        assert_eq!(
            rt.health().count(HealthEvent::RuntimeWorkerSpawned),
            cap as u64,
            "workers are spawned once, not per call"
        );
        assert!(
            snap.max_active_workers <= cap,
            "{} pool workers ran concurrently under a cap of {cap}",
            snap.max_active_workers
        );
        assert_eq!(snap.tasks_run, 4 * 64);
        assert_eq!(
            rt.health().count(HealthEvent::RuntimeTaskRun),
            snap.tasks_run
        );
    }

    #[test]
    fn instrumentation_records_time_and_depth() {
        let rt = Runtime::with_workers(2);
        rt.par_map_indexed(32, |_| std::thread::sleep(Duration::from_micros(100)));
        let snap = rt.snapshot();
        assert!(snap.total_task_ns > 0);
        assert!(snap.max_queue_depth > 0);
        assert_eq!(snap.tasks_run, 32);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let rt = Runtime::with_workers(2);
        let none: Vec<u32> = rt.par_map_indexed(0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(rt.par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn task_panic_propagates_to_submitter() {
        let rt = Runtime::with_workers(2);
        rt.par_map_indexed(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let rt = Runtime::with_workers(2);
        let poisoned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.par_map_indexed(8, |i| {
                if i == 0 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(poisoned.is_err());
        // The pool still works afterwards.
        assert_eq!(rt.par_map_indexed(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn worker_count_policy() {
        assert_eq!(worker_count_from(None, 8), 8);
        assert_eq!(worker_count_from(Some("3"), 8), 3);
        assert_eq!(worker_count_from(Some(" 5 "), 8), 5);
        assert_eq!(worker_count_from(Some("0"), 8), 8);
        assert_eq!(worker_count_from(Some("lots"), 8), 8);
        assert_eq!(worker_count_from(None, 0), 1);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const Runtime;
        let b = global() as *const Runtime;
        assert_eq!(a, b);
        assert!(global().workers() >= 1);
        assert_eq!(global().par_map(&[1, 2, 3], |x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn dropping_a_runtime_joins_its_workers() {
        let rt = Runtime::with_workers(3);
        rt.par_map_indexed(16, |i| i);
        drop(rt); // must not hang
    }

    #[test]
    fn scope_joins_all_tasks_at_every_worker_count() {
        for workers in [1usize, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let slots: Vec<Mutex<Option<u64>>> = (0..64).map(|_| Mutex::new(None)).collect();
            rt.scope(|s| {
                for i in 0..64u64 {
                    let slot = &slots[i as usize];
                    s.spawn(move || {
                        *slot.lock().unwrap() = Some(i * i);
                    });
                }
            });
            let out: Vec<u64> = slots
                .iter()
                .map(|m| m.lock().unwrap().expect("task did not run"))
                .collect();
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>(), "workers = {workers}");
        }
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        for workers in [1usize, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let hits = AtomicUsize::new(0);
            rt.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..4 {
                            s.spawn(|| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 8 + 8 * 4, "workers = {workers}");
        }
    }

    #[test]
    fn scope_with_no_spawns_returns_body_value() {
        let rt = Runtime::with_workers(2);
        assert_eq!(rt.scope(|_| 41 + 1), 42);
    }

    #[test]
    #[should_panic(expected = "scoped task exploded")]
    fn scope_task_panic_propagates_after_drain() {
        let rt = Runtime::with_workers(2);
        let ran = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn(|| panic!("scoped task exploded"));
            for _ in 0..16 {
                s.spawn(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }

    #[test]
    fn scope_survives_body_panic_and_still_runs_spawned_tasks() {
        let rt = Runtime::with_workers(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                let ran = &ran2;
                for _ in 0..8 {
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("scope body exploded");
            })
        }));
        assert!(out.is_err());
        // Every task spawned before the panic still ran to completion.
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        // And the pool is healthy afterwards.
        assert_eq!(rt.par_map_indexed(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_runs_inside_par_map_tasks() {
        // Heterogeneous nesting: scopes inside batch tasks must not
        // deadlock even with one worker, because waiters help-drain.
        let rt = Runtime::with_workers(1);
        let out = rt.par_map_indexed(4, |outer| {
            let total = AtomicUsize::new(0);
            rt.scope(|s| {
                for i in 0..4 {
                    let total = &total;
                    s.spawn(move || {
                        total.fetch_add(outer * 10 + i, Ordering::Relaxed);
                    });
                }
            });
            total.load(Ordering::Relaxed)
        });
        let expect: Vec<usize> = (0..4).map(|o| (0..4).map(|i| o * 10 + i).sum()).collect();
        assert_eq!(out, expect);
    }
}
