//! Common interface for baseline KV compressors.

use turbo_tensor::Matrix;

/// A KV-cache compression scheme that dequantizes before attention.
///
/// The trait captures the baseline execution model the paper contrasts
/// with TurboAttention: tokens go in, a floating-point `(K, V)` comes back
/// out for the attention kernel, and the memory footprint is whatever the
/// scheme physically stores.
pub trait KvCompressor {
    /// Human-readable scheme name for table rows.
    fn name(&self) -> &'static str;

    /// Appends one decoded token's key/value vectors.
    ///
    /// # Panics
    ///
    /// Implementations panic if the vectors don't match the head dimension.
    fn append(&mut self, k: &[f32], v: &[f32]);

    /// Number of cached tokens.
    fn len(&self) -> usize;

    /// Whether the cache holds no tokens.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequantizes the full cache to `(K, V)` — the step whose latency
    /// TurboAttention eliminates.
    fn materialize(&self) -> (Matrix, Matrix);

    /// Physical bytes stored.
    fn storage_bytes(&self) -> usize;

    /// Bytes the same tokens would occupy in FP16 (K and V).
    fn fp16_reference_bytes(&self) -> usize;

    /// Compression ratio vs FP16; 1.0 when empty.
    fn compression_ratio(&self) -> f64 {
        let s = self.storage_bytes();
        if s == 0 {
            1.0
        } else {
            self.fp16_reference_bytes() as f64 / s as f64
        }
    }
}

/// Baseline decode-attention: materializes the cache and runs exact
/// FP16-matmul attention for the single query row (the kernel KIVI/GEAR
/// actually executes after dequantization).
///
/// # Panics
///
/// Panics if the cache is empty or widths mismatch.
pub fn decode_attention_fp16(q: &[f32], cache: &dyn KvCompressor) -> Vec<f32> {
    assert!(!cache.is_empty(), "cannot attend to an empty cache");
    let (k, v) = cache.materialize();
    assert_eq!(q.len(), k.cols(), "query width mismatch");
    let qm = Matrix::from_vec(1, q.len(), q.to_vec());
    let out = turbo_attention::reference::flash_attention_f16(
        &qm,
        &k,
        &v,
        turbo_attention::Masking::Causal,
        1,
        64,
    );
    out.row(0).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp16::Fp16Cache;

    #[test]
    fn decode_attention_single_token_returns_value() {
        let mut c = Fp16Cache::new(4);
        c.append(&[1.0, 0.0, 0.0, 0.0], &[5.0, 6.0, 7.0, 8.0]);
        let out = decode_attention_fp16(&[1.0, 1.0, 1.0, 1.0], &c);
        for (a, b) in out.iter().zip(&[5.0, 6.0, 7.0, 8.0]) {
            assert!((a - b).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "empty cache")]
    fn empty_cache_panics() {
        let c = Fp16Cache::new(2);
        decode_attention_fp16(&[0.0, 0.0], &c);
    }
}
