//! # turbo-baselines
//!
//! From-scratch reimplementations of the KV-cache compression baselines the
//! paper compares against (section 5.3):
//!
//! * [`fp16`] — the dense FP16 baseline: no compression, FlashAttention
//!   with FP16 matmuls.
//! * [`fp8cache`] — an FP8 (E4M3) KV cache, the Hopper-era simple
//!   baseline (FlashAttention-3 / FlashInfer style), as an extension
//!   beyond the paper's comparison set.
//! * [`kivi`] — KIVI (Liu et al. 2024): per-channel key / per-token value
//!   grouped asymmetric quantization with an FP16 residual window of the
//!   most recent `n_b` tokens.
//! * [`gear`] — GEAR-L (Kang et al. 2024): KIVI-style quantization plus a
//!   rank-`r` low-rank approximation of the quantization *error*, stored in
//!   FP16, added back at dequantization time.
//! * [`lowrank`] — the power-iteration low-rank factorization GEAR-L needs.
//!
//! All baselines implement [`KvCompressor`], which captures the crucial
//! architectural difference from TurboAttention: their `materialize` step
//! dequantizes to floating point *before* attention, so their attention
//! kernels run at FP16 precision and pay the dequantization latency that
//! Figures 1 and 6 measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compressor;
pub mod fp16;
pub mod fp8cache;
pub mod gear;
pub mod kivi;
pub mod lowrank;

pub use compressor::{decode_attention_fp16, KvCompressor};
pub use fp16::Fp16Cache;
pub use fp8cache::Fp8Cache;
pub use gear::{GearCache, GearConfig};
pub use kivi::{KiviCache, KiviConfig};
pub use lowrank::low_rank_approx;
