//! The dense FP16 baseline: no compression at all.

use crate::compressor::KvCompressor;
use turbo_tensor::{round_f16, Matrix};

/// KV cache stored as FP16 (emulated by rounding every element through
/// binary16). This is the paper's "FP16" row: exact attention, maximal
/// memory.
#[derive(Clone, Debug)]
pub struct Fp16Cache {
    d: usize,
    k: Vec<f32>,
    v: Vec<f32>,
    rows: usize,
}

impl Fp16Cache {
    /// Creates an empty FP16 cache for `d`-channel heads.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "head dimension must be positive");
        Self {
            d,
            k: Vec::new(),
            v: Vec::new(),
            rows: 0,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d
    }
}

impl KvCompressor for Fp16Cache {
    fn name(&self) -> &'static str {
        "FP16"
    }

    fn append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.d, "key width mismatch");
        assert_eq!(v.len(), self.d, "value width mismatch");
        self.k.extend(k.iter().map(|&x| round_f16(x)));
        self.v.extend(v.iter().map(|&x| round_f16(x)));
        self.rows += 1;
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn materialize(&self) -> (Matrix, Matrix) {
        (
            Matrix::from_vec(self.rows, self.d, self.k.clone()),
            Matrix::from_vec(self.rows, self.d, self.v.clone()),
        )
    }

    fn storage_bytes(&self) -> usize {
        2 * (self.k.len() + self.v.len())
    }

    fn fp16_reference_bytes(&self) -> usize {
        self.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_f16_rounded_values() {
        let mut c = Fp16Cache::new(2);
        c.append(&[1.0001, -2.0], &[0.33333, 4.0]);
        let (k, v) = c.materialize();
        assert_eq!(k.get(0, 0), round_f16(1.0001));
        assert_eq!(v.get(0, 0), round_f16(0.33333));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn compression_ratio_is_one() {
        let mut c = Fp16Cache::new(4);
        for _ in 0..10 {
            c.append(&[1.0; 4], &[2.0; 4]);
        }
        assert_eq!(c.compression_ratio(), 1.0);
        assert_eq!(c.storage_bytes(), 2 * 2 * 10 * 4);
    }
}
