//! Rank-`r` matrix approximation by subspace (block power) iteration.
//!
//! GEAR-L compensates quantization error with a low-rank term
//! `E ≈ A·Bᵀ`. The authors use a few steps of power iteration on the error
//! matrix; this module reimplements that primitive with Gram–Schmidt
//! re-orthogonalization for numerical stability.

use turbo_tensor::{matmul, matmul_transposed_b, Matrix, TensorRng};

/// Computes a rank-`r` approximation `A·Bᵀ ≈ m`, returning `(A, B)` with
/// `A: rows × r` and `B: cols × r`.
///
/// `iters` subspace iterations are performed (the GEAR paper uses 1–2;
/// more improves the approximation monotonically in expectation).
///
/// # Panics
///
/// Panics if `r == 0`, `r > min(rows, cols)`, or `iters == 0`.
pub fn low_rank_approx(m: &Matrix, r: usize, iters: usize, seed: u64) -> (Matrix, Matrix) {
    let (rows, cols) = m.shape();
    assert!(r > 0, "rank must be positive");
    assert!(r <= rows.min(cols), "rank {r} exceeds min dim");
    assert!(iters > 0, "need at least one iteration");

    let mut rng = TensorRng::new(seed);
    // B: cols × r random start; iterate B <- orth(MᵀM B) implicitly.
    let mut b = rng.normal(cols, r, 0.0, 1.0);
    orthonormalize(&mut b);
    for _ in 0..iters {
        // A = M B  (rows × r)
        let mut a = matmul(m, &b);
        orthonormalize(&mut a);
        // B = Mᵀ A (cols × r)
        b = matmul(&m.transpose(), &a);
        orthonormalize(&mut b);
    }
    // Final projection: A = M B gives M ≈ A Bᵀ with B orthonormal.
    let a = matmul(m, &b);
    (a, b)
}

/// Reconstructs the rank-`r` product `A·Bᵀ`.
pub fn reconstruct(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_transposed_b(a, b)
}

/// In-place modified Gram–Schmidt on the columns of `m`. Columns that are
/// (numerically) linearly dependent are replaced with zeros.
fn orthonormalize(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for c in 0..cols {
        // Subtract projections onto previous columns.
        for prev in 0..c {
            let mut dot = 0.0f32;
            for r in 0..rows {
                dot += m.get(r, c) * m.get(r, prev);
            }
            for r in 0..rows {
                let val = m.get(r, c) - dot * m.get(r, prev);
                m.set(r, c, val);
            }
        }
        let norm: f32 = (0..rows).map(|r| m.get(r, c).powi(2)).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for r in 0..rows {
                let val = m.get(r, c) / norm;
                m.set(r, c, val);
            }
        } else {
            for r in 0..rows {
                m.set(r, c, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{mse, relative_error};

    /// Builds an exactly rank-`r` matrix.
    fn rank_r_matrix(seed: u64, rows: usize, cols: usize, r: usize) -> Matrix {
        let mut rng = TensorRng::new(seed);
        let a = rng.normal(rows, r, 0.0, 1.0);
        let b = rng.normal(cols, r, 0.0, 1.0);
        matmul_transposed_b(&a, &b)
    }

    #[test]
    fn recovers_exactly_low_rank_matrices() {
        let m = rank_r_matrix(1, 32, 16, 3);
        let (a, b) = low_rank_approx(&m, 3, 4, 7);
        let back = reconstruct(&a, &b);
        assert!(
            relative_error(&back, &m) < 1e-3,
            "rel err {}",
            relative_error(&back, &m)
        );
    }

    #[test]
    fn higher_rank_never_hurts() {
        let mut rng = TensorRng::new(2);
        let m = rng.normal(40, 24, 0.0, 1.0);
        let err = |r| {
            let (a, b) = low_rank_approx(&m, r, 3, 11);
            mse(&reconstruct(&a, &b), &m)
        };
        let (e1, e4, e8) = (err(1), err(4), err(8));
        assert!(e4 < e1, "{e4} !< {e1}");
        assert!(e8 < e4, "{e8} !< {e4}");
    }

    #[test]
    fn full_rank_is_exact() {
        let mut rng = TensorRng::new(3);
        let m = rng.normal(8, 8, 0.0, 1.0);
        let (a, b) = low_rank_approx(&m, 8, 6, 5);
        assert!(relative_error(&reconstruct(&a, &b), &m) < 1e-2);
    }

    #[test]
    fn approximation_beats_zero_baseline() {
        // A rank-1 approximation must capture some energy: better than
        // approximating by the zero matrix.
        let mut rng = TensorRng::new(4);
        let m = rng.normal(64, 32, 0.0, 1.0);
        let (a, b) = low_rank_approx(&m, 1, 3, 13);
        let zero = Matrix::zeros(64, 32);
        assert!(mse(&reconstruct(&a, &b), &m) < mse(&zero, &m));
    }

    #[test]
    fn orthonormalize_produces_unit_orthogonal_columns() {
        let mut rng = TensorRng::new(5);
        let mut m = rng.normal(20, 4, 0.0, 1.0);
        orthonormalize(&mut m);
        for c1 in 0..4 {
            for c2 in 0..4 {
                let dot: f32 = (0..20).map(|r| m.get(r, c1) * m.get(r, c2)).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-4, "cols {c1},{c2}: {dot}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds min dim")]
    fn oversized_rank_panics() {
        low_rank_approx(&Matrix::zeros(4, 4), 5, 1, 0);
    }
}
