//! FP8 KV-cache baseline.
//!
//! On Hopper-class hardware the natural alternative to integer KV
//! quantization is storing the cache in FP8 E4M3 (as FlashAttention-3 and
//! FlashInfer do): 2× smaller than FP16 with no scales or zero points at
//! all, dequantized by a free type conversion. It cannot reach INT4/INT2
//! footprints, but it is the strongest *simple* baseline — useful for
//! positioning TurboAttention's compression/accuracy trade-off.

use crate::compressor::KvCompressor;
use turbo_tensor::fp8::Fp8Format;
use turbo_tensor::Matrix;

/// KV cache stored element-wise in FP8 (default E4M3).
///
/// A per-head tensor scale maps activations into FP8's dynamic range
/// (chosen from the first token, with generous headroom), mirroring the
/// static `scale` factor FP8 attention kernels carry.
#[derive(Clone, Debug)]
pub struct Fp8Cache {
    d: usize,
    format: Fp8Format,
    k: Vec<f32>,
    v: Vec<f32>,
    rows: usize,
    scale: Option<f32>,
}

impl Fp8Cache {
    /// Creates an empty E4M3 cache for `d`-channel heads.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        Self::with_format(d, Fp8Format::E4M3)
    }

    /// Creates a cache with an explicit FP8 flavour.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn with_format(d: usize, format: Fp8Format) -> Self {
        assert!(d > 0, "head dimension must be positive");
        Self {
            d,
            format,
            k: Vec::new(),
            v: Vec::new(),
            rows: 0,
            scale: None,
        }
    }

    /// The FP8 flavour in use.
    pub fn format(&self) -> Fp8Format {
        self.format
    }

    /// The tensor scale, once established.
    pub fn scale(&self) -> Option<f32> {
        self.scale
    }

    fn encode(&self, x: f32, scale: f32) -> f32 {
        self.format.round(x / scale) * scale
    }
}

impl KvCompressor for Fp8Cache {
    fn name(&self) -> &'static str {
        "FP8"
    }

    fn append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.d, "key width mismatch");
        assert_eq!(v.len(), self.d, "value width mismatch");
        let scale = *self.scale.get_or_insert_with(|| {
            // Map the opening token's peak to ~1/16 of max finite: wide
            // headroom, still far from the subnormal floor.
            let abs_max = k
                .iter()
                .chain(v)
                .fold(0.0f32, |m, &x| m.max(x.abs()))
                .max(1e-6);
            abs_max * 16.0 / self.format.max_finite()
        });
        let encoded_k: Vec<f32> = k.iter().map(|&x| self.encode(x, scale)).collect();
        let encoded_v: Vec<f32> = v.iter().map(|&x| self.encode(x, scale)).collect();
        self.k.extend(encoded_k);
        self.v.extend(encoded_v);
        self.rows += 1;
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn materialize(&self) -> (Matrix, Matrix) {
        (
            Matrix::from_vec(self.rows, self.d, self.k.clone()),
            Matrix::from_vec(self.rows, self.d, self.v.clone()),
        )
    }

    fn storage_bytes(&self) -> usize {
        // One byte per element plus the tensor scale.
        self.k.len() + self.v.len() + std::mem::size_of::<f32>()
    }

    fn fp16_reference_bytes(&self) -> usize {
        2 * (self.k.len() + self.v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{relative_error, TensorRng};

    #[test]
    fn round_trip_is_tight_for_normal_activations() {
        let mut rng = TensorRng::new(1);
        let data = rng.normal(64, 16, 0.0, 1.0);
        let mut c = Fp8Cache::new(16);
        for t in 0..64 {
            c.append(data.row(t), data.row(t));
        }
        let (k, v) = c.materialize();
        // E4M3 half-ulp is 1/16 relative: Frobenius error a few percent.
        assert!(
            relative_error(&k, &data) < 0.04,
            "{}",
            relative_error(&k, &data)
        );
        assert!(relative_error(&v, &data) < 0.04);
    }

    #[test]
    fn compression_is_exactly_2x() {
        let mut c = Fp8Cache::new(8);
        for _ in 0..32 {
            c.append(&[0.5; 8], &[1.0; 8]);
        }
        assert!((c.compression_ratio() - 2.0).abs() < 0.02);
    }

    #[test]
    fn wide_outliers_survive_thanks_to_exponent_bits() {
        // The decisive difference vs INT4: a 12x amplitude outlier (within
        // the 16x scale headroom) keeps ~6% relative accuracy in FP8 while
        // small values in the same tensor stay accurate too. Values beyond
        // the headroom saturate, like any static-scale FP8 kernel.
        let mut c = Fp8Cache::new(2);
        c.append(&[1.0, -1.0], &[1.0, -1.0]);
        c.append(&[12.0, 0.05], &[12.0, 0.05]);
        c.append(&[100.0, 0.0], &[0.0, 0.0]);
        let (k, _) = c.materialize();
        assert!((k.get(1, 0) - 12.0).abs() / 12.0 < 0.07);
        assert!((k.get(1, 1) - 0.05).abs() / 0.05 < 0.07);
        // 100x saturates at the headroom ceiling (16x the opening max).
        assert!((k.get(2, 0) - 16.0).abs() < 0.5);
    }

    #[test]
    fn e5m2_is_coarser_than_e4m3() {
        let mut rng = TensorRng::new(2);
        let data = rng.normal(64, 8, 0.0, 1.0);
        let err = |fmt| {
            let mut c = Fp8Cache::with_format(8, fmt);
            for t in 0..64 {
                c.append(data.row(t), data.row(t));
            }
            relative_error(&c.materialize().0, &data)
        };
        assert!(err(Fp8Format::E4M3) < err(Fp8Format::E5M2));
    }

    #[test]
    fn scale_fixed_after_first_token() {
        let mut c = Fp8Cache::new(2);
        c.append(&[1.0, 1.0], &[1.0, 1.0]);
        let s = c.scale().unwrap();
        c.append(&[100.0, 0.0], &[0.0, 0.0]);
        assert_eq!(c.scale(), Some(s));
    }
}
