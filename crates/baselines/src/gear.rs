//! GEAR-L: quantization plus low-rank error compensation.
//!
//! GEAR (Kang et al. 2024) compresses the KV cache with an aggressive
//! quantizer and then approximates the *residual error* `E = X − X̂` with a
//! rank-`r` factorization stored in FP16. GEAR-L is the efficiency variant
//! that keeps only quantization + low-rank (no sparse outlier matrix).
//! Like KIVI it holds the most recent `n_b` tokens in full precision and
//! dequantizes everything before attention.

use crate::compressor::KvCompressor;
use crate::lowrank::{low_rank_approx, reconstruct};
use turbo_quant::asymmetric::fake_quant_channelwise;
use turbo_quant::BitWidth;
use turbo_tensor::{round_f16, Matrix};

/// GEAR-L configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GearConfig {
    /// Code width of the quantized region.
    pub bits: BitWidth,
    /// Rank of the error compensation (the paper's GEAR-L uses `r = 4`).
    pub rank: usize,
    /// Quantization group size along tokens per channel.
    pub group: usize,
    /// Residual window length `n_b` kept in FP16.
    pub residual: usize,
}

impl Default for GearConfig {
    /// The paper's comparison point: 4-bit, rank 4, `g = n_b = 64`.
    fn default() -> Self {
        Self {
            bits: BitWidth::Int4,
            rank: 4,
            group: 64,
            residual: 64,
        }
    }
}

/// One flushed GEAR block: the dequantized snapshot plus its low-rank
/// error factors.
#[derive(Clone, Debug)]
struct GearBlock {
    /// Quantize→dequantize reconstruction (tokens × d).
    base: Matrix,
    /// Error factors `E ≈ A·Bᵀ`, stored FP16-rounded.
    a: Matrix,
    b: Matrix,
}

impl GearBlock {
    fn compensated(&self) -> Matrix {
        self.base.add(&reconstruct(&self.a, &self.b))
    }
}

/// A GEAR-L compressed KV cache for one head.
#[derive(Clone, Debug)]
pub struct GearCache {
    d: usize,
    config: GearConfig,
    k_blocks: Vec<GearBlock>,
    v_blocks: Vec<GearBlock>,
    quantized_rows: usize,
    k_res: Vec<f32>,
    v_res: Vec<f32>,
    res_rows: usize,
    flush_seed: u64,
}

impl GearCache {
    /// Creates an empty GEAR-L cache.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, or any config field is zero, or `rank > d`.
    pub fn new(d: usize, config: GearConfig) -> Self {
        assert!(d > 0, "head dimension must be positive");
        assert!(config.group > 0, "group must be positive");
        assert!(config.residual > 0, "residual window must be positive");
        assert!(config.rank > 0 && config.rank <= d, "invalid rank");
        Self {
            d,
            config,
            k_blocks: Vec::new(),
            v_blocks: Vec::new(),
            quantized_rows: 0,
            k_res: Vec::new(),
            v_res: Vec::new(),
            res_rows: 0,
            flush_seed: 0x6EA5,
        }
    }

    /// The configuration.
    pub fn config(&self) -> GearConfig {
        self.config
    }

    /// Tokens in the quantized (compensated) region.
    pub fn quantized_len(&self) -> usize {
        self.quantized_rows
    }

    /// Tokens in the FP16 residual window.
    pub fn residual_len(&self) -> usize {
        self.res_rows
    }

    fn compress_block(&mut self, x: Matrix) -> GearBlock {
        let g = x.rows();
        let base = fake_quant_channelwise(&x, self.config.bits, g);
        let err = x.sub(&base);
        let rank = self.config.rank.min(g).min(self.d);
        self.flush_seed = self
            .flush_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let (mut a, mut b) = low_rank_approx(&err, rank, 2, self.flush_seed);
        // Factors are stored in FP16.
        for v in a.as_mut_slice() {
            *v = round_f16(*v);
        }
        for v in b.as_mut_slice() {
            *v = round_f16(*v);
        }
        GearBlock { base, a, b }
    }

    fn flush_group(&mut self) {
        let g = self.config.group.min(self.res_rows);
        if g == 0 {
            return;
        }
        let k_old = Matrix::from_vec(g, self.d, self.k_res[..g * self.d].to_vec());
        let v_old = Matrix::from_vec(g, self.d, self.v_res[..g * self.d].to_vec());
        self.k_res.drain(..g * self.d);
        self.v_res.drain(..g * self.d);
        self.res_rows -= g;
        let kb = self.compress_block(k_old);
        let vb = self.compress_block(v_old);
        self.k_blocks.push(kb);
        self.v_blocks.push(vb);
        self.quantized_rows += g;
    }
}

impl KvCompressor for GearCache {
    fn name(&self) -> &'static str {
        "GEAR-L"
    }

    fn append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.d, "key width mismatch");
        assert_eq!(v.len(), self.d, "value width mismatch");
        self.k_res.extend(k.iter().map(|&x| round_f16(x)));
        self.v_res.extend(v.iter().map(|&x| round_f16(x)));
        self.res_rows += 1;
        if self.res_rows > self.config.residual {
            self.flush_group();
        }
    }

    fn len(&self) -> usize {
        self.quantized_rows + self.res_rows
    }

    fn materialize(&self) -> (Matrix, Matrix) {
        let mut ks: Vec<Matrix> = self.k_blocks.iter().map(GearBlock::compensated).collect();
        let mut vs: Vec<Matrix> = self.v_blocks.iter().map(GearBlock::compensated).collect();
        ks.push(Matrix::from_vec(self.res_rows, self.d, self.k_res.clone()));
        vs.push(Matrix::from_vec(self.res_rows, self.d, self.v_res.clone()));
        (Matrix::vstack(&ks), Matrix::vstack(&vs))
    }

    fn storage_bytes(&self) -> usize {
        let n_q = self.quantized_rows;
        // Packed codes for K and V + group params (f16 scale/zero per
        // channel-group) + low-rank factors in FP16.
        let codes = 2 * self.config.bits.packed_bytes(n_q * self.d);
        let params: usize = self
            .k_blocks
            .iter()
            .chain(&self.v_blocks)
            .map(|b| 4 * self.d * b.base.rows().div_ceil(self.config.group))
            .sum();
        let factors: usize = self
            .k_blocks
            .iter()
            .chain(&self.v_blocks)
            .map(|b| 2 * (b.a.len() + b.b.len()))
            .sum();
        let residual = 2 * 2 * self.res_rows * self.d;
        codes + params + factors + residual
    }

    fn fp16_reference_bytes(&self) -> usize {
        2 * 2 * self.len() * self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kivi::{KiviCache, KiviConfig};
    use turbo_tensor::{mse, relative_error, TensorRng};

    fn cfg(bits: BitWidth) -> GearConfig {
        GearConfig {
            bits,
            rank: 4,
            group: 16,
            residual: 16,
        }
    }

    #[test]
    fn residual_then_flush_counts() {
        let mut c = GearCache::new(8, cfg(BitWidth::Int4));
        let mut rng = TensorRng::new(101);
        let data = rng.normal(40, 8, 0.0, 1.0);
        for t in 0..40 {
            c.append(data.row(t), data.row(t));
        }
        assert_eq!(c.len(), 40);
        // Flushes of 16 fire when the window overflows at tokens 17 and 33.
        assert_eq!(c.quantized_len(), 32);
        assert_eq!(c.residual_len(), 8);
    }

    #[test]
    fn materialized_cache_tracks_original() {
        let mut rng = TensorRng::new(102);
        let k = rng.normal(64, 16, 0.0, 1.0);
        let v = rng.normal(64, 16, 0.0, 1.0);
        let mut c = GearCache::new(16, cfg(BitWidth::Int4));
        for t in 0..64 {
            c.append(k.row(t), v.row(t));
        }
        let (kq, vq) = c.materialize();
        assert!(relative_error(&kq, &k) < 0.08);
        assert!(relative_error(&vq, &v) < 0.08);
    }

    #[test]
    fn error_compensation_beats_plain_quantization_at_2bit() {
        // GEAR-L's selling point: at aggressive bit widths the low-rank
        // term recovers accuracy that plain (KIVI-style) quantization loses.
        let mut rng = TensorRng::new(103);
        let k = rng.normal_with_channel_outliers(128, 16, 1.0, &[2, 11], 10.0);
        let mut gear = GearCache::new(16, cfg(BitWidth::Int2));
        let mut kivi = KiviCache::new(
            16,
            KiviConfig {
                bits: BitWidth::Int2,
                group: 16,
                residual: 16,
            },
        );
        for t in 0..128 {
            gear.append(k.row(t), k.row(t));
            kivi.append(k.row(t), k.row(t));
        }
        let (kg, _) = gear.materialize();
        let (kk, _) = kivi.materialize();
        let eg = mse(&kg, &k);
        let ek = mse(&kk, &k);
        assert!(eg < ek, "GEAR {eg} should beat KIVI {ek} at 2-bit");
    }

    #[test]
    fn storage_includes_low_rank_overhead() {
        let mut rng = TensorRng::new(104);
        let data = rng.normal(64, 16, 0.0, 1.0);
        let fill = |g: &mut dyn KvCompressor| {
            for t in 0..64 {
                g.append(data.row(t), data.row(t));
            }
        };
        let mut gear = GearCache::new(16, cfg(BitWidth::Int4));
        let mut kivi = KiviCache::new(
            16,
            KiviConfig {
                bits: BitWidth::Int4,
                group: 16,
                residual: 16,
            },
        );
        fill(&mut gear);
        fill(&mut kivi);
        assert!(gear.storage_bytes() > kivi.storage_bytes());
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let mut rng = TensorRng::new(105);
        let data = rng.normal(40, 8, 0.0, 1.0);
        let run = || {
            let mut c = GearCache::new(8, cfg(BitWidth::Int4));
            for t in 0..40 {
                c.append(data.row(t), data.row(t));
            }
            c.materialize().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn oversized_rank_panics() {
        GearCache::new(
            4,
            GearConfig {
                rank: 8,
                ..GearConfig::default()
            },
        );
    }
}
