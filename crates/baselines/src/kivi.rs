//! KIVI: asymmetric grouped KV quantization with an FP16 residual window.
//!
//! KIVI (Liu et al. 2024) observes that key caches have channel outliers
//! while value caches are better behaved token-wise, so it quantizes the
//! **key cache per-channel** (groups of `g` tokens within each channel)
//! and the **value cache per-token** (groups of `g` channels within each
//! token). The most recent `n_b` tokens stay in full precision (the
//! "residual"), which is also why KIVI cannot run integer attention: the
//! mixed representation is dequantized to FP16 before every attention call.

use crate::compressor::KvCompressor;
use turbo_quant::asymmetric::{fake_quant_channelwise, fake_quant_tokenwise};
use turbo_quant::BitWidth;
use turbo_tensor::{round_f16, Matrix};

/// KIVI configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KiviConfig {
    /// Code width of the quantized region (the paper evaluates 4/3/2-bit).
    pub bits: BitWidth,
    /// Group size `g` for both key (token-direction) and value
    /// (channel-direction) grouping; KIVI's best setting is 64.
    pub group: usize,
    /// Residual window length `n_b` kept in FP16.
    pub residual: usize,
}

impl Default for KiviConfig {
    /// The paper's comparison point: `g = 64`, `n_b = 64`, 4-bit.
    fn default() -> Self {
        Self {
            bits: BitWidth::Int4,
            group: 64,
            residual: 64,
        }
    }
}

/// A KIVI-compressed KV cache for one head.
///
/// Tokens flow: append → FP16 residual → (when the residual window
/// overflows by a full group) quantized region.
#[derive(Clone, Debug)]
pub struct KiviCache {
    d: usize,
    config: KiviConfig,
    /// Quantize→dequantized snapshots of flushed tokens (stored
    /// reconstructed, since the baseline always dequantizes anyway; the
    /// *storage accounting* reflects the packed representation).
    k_quant: Matrix,
    v_quant: Matrix,
    /// FP16 residual window, newest last.
    k_res: Vec<f32>,
    v_res: Vec<f32>,
    res_rows: usize,
}

impl KiviCache {
    /// Creates an empty KIVI cache.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `group == 0`, or `residual == 0`.
    pub fn new(d: usize, config: KiviConfig) -> Self {
        assert!(d > 0, "head dimension must be positive");
        assert!(config.group > 0, "group must be positive");
        assert!(config.residual > 0, "residual window must be positive");
        Self {
            d,
            config,
            k_quant: Matrix::zeros(0, d),
            v_quant: Matrix::zeros(0, d),
            k_res: Vec::new(),
            v_res: Vec::new(),
            res_rows: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> KiviConfig {
        self.config
    }

    /// Tokens currently in the quantized region.
    pub fn quantized_len(&self) -> usize {
        self.k_quant.rows()
    }

    /// Tokens currently in the FP16 residual window.
    pub fn residual_len(&self) -> usize {
        self.res_rows
    }

    /// Moves the oldest `group` residual tokens into the quantized region.
    fn flush_group(&mut self) {
        let g = self.config.group.min(self.res_rows);
        if g == 0 {
            return;
        }
        let k_old = Matrix::from_vec(g, self.d, self.k_res[..g * self.d].to_vec());
        let v_old = Matrix::from_vec(g, self.d, self.v_res[..g * self.d].to_vec());
        self.k_res.drain(..g * self.d);
        self.v_res.drain(..g * self.d);
        self.res_rows -= g;

        // Key: per-channel groups along tokens; value: per-token groups
        // along channels.
        let kq = fake_quant_channelwise(&k_old, self.config.bits, g);
        let vq = fake_quant_tokenwise(&v_old, self.config.bits, self.config.group.min(self.d));
        self.k_quant.append_rows(&kq);
        self.v_quant.append_rows(&vq);
    }
}

impl KvCompressor for KiviCache {
    fn name(&self) -> &'static str {
        "KIVI"
    }

    fn append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.d, "key width mismatch");
        assert_eq!(v.len(), self.d, "value width mismatch");
        self.k_res.extend(k.iter().map(|&x| round_f16(x)));
        self.v_res.extend(v.iter().map(|&x| round_f16(x)));
        self.res_rows += 1;
        if self.res_rows > self.config.residual {
            self.flush_group();
        }
    }

    fn len(&self) -> usize {
        self.k_quant.rows() + self.res_rows
    }

    fn materialize(&self) -> (Matrix, Matrix) {
        let k_res = Matrix::from_vec(self.res_rows, self.d, self.k_res.clone());
        let v_res = Matrix::from_vec(self.res_rows, self.d, self.v_res.clone());
        let k = if self.k_quant.rows() == 0 {
            k_res
        } else {
            Matrix::vstack(&[self.k_quant.clone(), k_res])
        };
        let v = if self.v_quant.rows() == 0 {
            v_res
        } else {
            Matrix::vstack(&[self.v_quant.clone(), v_res])
        };
        (k, v)
    }

    fn storage_bytes(&self) -> usize {
        // Quantized region: packed codes + one f16 scale and zero per group.
        let n_q = self.k_quant.rows();
        let codes = 2 * self.config.bits.packed_bytes(n_q * self.d);
        let k_groups = if n_q == 0 {
            0
        } else {
            self.d * n_q.div_ceil(self.config.group)
        };
        let v_groups = n_q * self.d.div_ceil(self.config.group.min(self.d.max(1)));
        let params = 4 * (k_groups + v_groups);
        // Residual: FP16 K and V.
        let residual = 2 * 2 * self.res_rows * self.d;
        codes + params + residual
    }

    fn fp16_reference_bytes(&self) -> usize {
        2 * 2 * self.len() * self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::{relative_error, TensorRng};

    fn small_cfg(bits: BitWidth) -> KiviConfig {
        KiviConfig {
            bits,
            group: 8,
            residual: 8,
        }
    }

    #[test]
    fn residual_window_holds_recent_tokens_exactly() {
        let mut c = KiviCache::new(4, small_cfg(BitWidth::Int2));
        for t in 0..6 {
            let row = [t as f32 * 0.25; 4];
            c.append(&row, &row);
        }
        assert_eq!(c.residual_len(), 6);
        assert_eq!(c.quantized_len(), 0);
        let (k, _) = c.materialize();
        // f16-exact values round-trip.
        assert_eq!(k.get(5, 0), 1.25);
    }

    #[test]
    fn overflow_flushes_group_to_quantized_region() {
        let mut c = KiviCache::new(4, small_cfg(BitWidth::Int4));
        for t in 0..17 {
            let row = [t as f32 * 0.1; 4];
            c.append(&row, &row);
        }
        // 17 tokens, residual 8, group 8: flushes of 8 fire when the
        // window overflows at tokens 9 and 17.
        assert_eq!(c.quantized_len(), 16);
        assert_eq!(c.residual_len(), 1);
        assert_eq!(c.len(), 17);
    }

    #[test]
    fn materialized_cache_tracks_original() {
        let mut rng = TensorRng::new(91);
        let k = rng.normal(64, 16, 0.0, 1.0);
        let v = rng.normal(64, 16, 0.0, 1.0);
        let mut c = KiviCache::new(16, small_cfg(BitWidth::Int4));
        for t in 0..64 {
            c.append(k.row(t), v.row(t));
        }
        let (kq, vq) = c.materialize();
        assert!(relative_error(&kq, &k) < 0.1, "{}", relative_error(&kq, &k));
        assert!(relative_error(&vq, &v) < 0.1);
    }

    #[test]
    fn channelwise_keys_contain_outlier_contamination() {
        // KIVI quantizes keys channel-wise, so a channel outlier inflates
        // only its own channel's scale; token-wise value quantization lets
        // the outlier inflate the scale of every other channel sharing its
        // group. Compare error on the NON-outlier channels.
        let mut rng = TensorRng::new(92);
        let outlier = rng.normal_with_channel_outliers(64, 16, 1.0, &[3], 25.0);
        let mut c = KiviCache::new(16, small_cfg(BitWidth::Int2));
        for t in 0..64 {
            c.append(outlier.row(t), outlier.row(t));
        }
        let (kq, vq) = c.materialize();
        let clean_mse = |a: &turbo_tensor::Matrix| {
            let mut sum = 0.0f64;
            let mut n = 0usize;
            for r in 0..a.rows() {
                for col in 0..a.cols() {
                    if col != 3 {
                        sum += ((a.get(r, col) - outlier.get(r, col)) as f64).powi(2);
                        n += 1;
                    }
                }
            }
            sum / n as f64
        };
        let ek = clean_mse(&kq);
        let ev = clean_mse(&vq);
        assert!(ek < ev, "key err {ek} should beat value err {ev}");
    }

    #[test]
    fn lower_bits_compress_harder() {
        let mut rng = TensorRng::new(93);
        let data = rng.normal(128, 16, 0.0, 1.0);
        let bytes = |bits| {
            let mut c = KiviCache::new(16, small_cfg(bits));
            for t in 0..128 {
                c.append(data.row(t), data.row(t));
            }
            c.storage_bytes()
        };
        assert!(bytes(BitWidth::Int2) < bytes(BitWidth::Int3));
        // Int3 packs padded two-per-byte, so it ties Int4 physically.
        assert!(bytes(BitWidth::Int3) <= bytes(BitWidth::Int4));
        assert!(bytes(BitWidth::Int4) < bytes(BitWidth::Int8));
    }

    #[test]
    fn compression_ratio_reasonable_at_4bit() {
        let mut rng = TensorRng::new(94);
        let data = rng.normal(512, 64, 0.0, 1.0);
        let mut c = KiviCache::new(
            64,
            KiviConfig {
                bits: BitWidth::Int4,
                group: 64,
                residual: 64,
            },
        );
        for t in 0..512 {
            c.append(data.row(t), data.row(t));
        }
        // 448 quantized at ~4 bits + 64 FP16 residual -> ratio ~3.2.
        let r = c.compression_ratio();
        assert!(r > 2.5 && r < 4.0, "ratio {r}");
    }
}
