//! Transformer model geometry.

/// Shape parameters of a decoder-only transformer, as needed by the cost
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelGeometry {
    /// Model name for report headers.
    pub name: &'static str,
    /// Transformer layers.
    pub layers: usize,
    /// Attention (query) heads.
    pub heads: usize,
    /// KV heads (`kv_heads == heads` for MHA; fewer for GQA). The paper's
    /// Phi3-medium latency runs behave like full multi-head KV — that is
    /// what reproduces Figure 6's OOM points — so [`Self::phi3_medium`]
    /// uses MHA and [`Self::phi3_medium_gqa`] models the GQA variant.
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Total parameter count (for weight-memory accounting).
    pub params: u64,
}

impl ModelGeometry {
    /// Phi3-medium (14B), the model of Figures 1, 6 and 7a.
    pub fn phi3_medium() -> Self {
        ModelGeometry {
            name: "Phi3-medium",
            layers: 40,
            heads: 40,
            kv_heads: 40,
            head_dim: 128,
            hidden: 5120,
            ffn: 17920,
            params: 14_000_000_000,
        }
    }

    /// Phi3-medium with its grouped-query configuration (10 KV heads).
    pub fn phi3_medium_gqa() -> Self {
        ModelGeometry {
            name: "Phi3-medium-GQA",
            kv_heads: 10,
            ..Self::phi3_medium()
        }
    }

    /// LLaMA3-8B (GQA with 8 KV heads).
    pub fn llama3_8b() -> Self {
        ModelGeometry {
            name: "LLaMA3-8B",
            layers: 32,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            hidden: 4096,
            ffn: 14336,
            params: 8_000_000_000,
        }
    }

    /// Phi3-mini (3.8B), used in ablations.
    pub fn phi3_mini() -> Self {
        ModelGeometry {
            name: "Phi3-mini",
            layers: 32,
            heads: 32,
            kv_heads: 32,
            head_dim: 96,
            hidden: 3072,
            ffn: 8192,
            params: 3_800_000_000,
        }
    }

    /// FP16 weight bytes.
    pub fn weight_bytes(&self) -> f64 {
        self.params as f64 * 2.0
    }

    /// FP16 K+V cache bytes for one token across all layers and KV heads.
    pub fn kv_bytes_per_token_fp16(&self) -> f64 {
        (2 * self.layers * self.kv_heads * self.head_dim * 2) as f64
    }

    /// MACs in the linear parts (QKV/O projections + FFN) for one token.
    pub fn linear_macs_per_token(&self) -> f64 {
        let qkvo = 4.0 * self.hidden as f64 * self.hidden as f64;
        let ffn = 2.0 * self.hidden as f64 * self.ffn as f64;
        (qkvo + ffn) * self.layers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi3_medium_weights_are_28_gb() {
        let g = ModelGeometry::phi3_medium();
        assert!((g.weight_bytes() - 28.0e9).abs() < 1.0e9);
    }

    #[test]
    fn kv_bytes_per_token() {
        let g = ModelGeometry::phi3_medium();
        // 2 (K,V) * 40 layers * 40 heads * 128 dim * 2 bytes = 819200 B.
        assert_eq!(g.kv_bytes_per_token_fp16(), 819_200.0);
    }

    #[test]
    fn gqa_shrinks_kv_but_not_compute() {
        let mha = ModelGeometry::phi3_medium();
        let gqa = ModelGeometry::phi3_medium_gqa();
        assert_eq!(
            mha.kv_bytes_per_token_fp16() / gqa.kv_bytes_per_token_fp16(),
            4.0
        );
        assert_eq!(mha.linear_macs_per_token(), gqa.linear_macs_per_token());
    }

    #[test]
    fn llama3_kv_per_token() {
        let g = ModelGeometry::llama3_8b();
        // 2 * 32 layers * 8 kv heads * 128 * 2B = 131072 B.
        assert_eq!(g.kv_bytes_per_token_fp16(), 131_072.0);
    }

    #[test]
    fn linear_macs_scale_with_layers() {
        let medium = ModelGeometry::phi3_medium();
        let mini = ModelGeometry::phi3_mini();
        assert!(medium.linear_macs_per_token() > 2.0 * mini.linear_macs_per_token());
    }
}
