//! Sharded long-context serving with crash-consistent re-sharding.
//!
//! A 64k–128k-token context is too large for any single replica's paged
//! pool, so its KV cache is partitioned across N **shards**: each shard
//! owns a contiguous slice of the global token range as a durable
//! [`DurableLayerSet`] (group-commit WAL + checkpoint), and the layout
//! is recorded in a CRC32-framed, versioned [`ShardMap`]. Serving is
//! ring-style: every request fans out to all live shards, each computes
//! its partial attention over its slice, and the partials merge exactly
//! (`turbo_attention::merge_shards` semantics) — so the episode ledger
//! must agree across shards in lockstep.
//!
//! **Re-sharding.** When chaos kills a shard, its WAL is torn at an
//! arbitrary byte offset (compounded by any silent rot a degraded zone
//! injected earlier). The deterministic re-shard protocol then:
//!
//! 1. replays the surviving WAL prefix (`recover_or_empty`) to learn
//!    how many of the victim's tokens are recoverable,
//! 2. redistributes the victim's global token range to the survivors in
//!    near-equal contiguous chunks (ascending survivor order) — the
//!    recovered prefix *migrates* at WAL-replay speed, only the lost
//!    suffix is *re-prefilled* from the canonical context at the much
//!    slower re-prefill rate,
//! 3. bumps the shard map's migration **epoch**, which is the
//!    generation key of every per-shard [`DequantTileCache`]: stale
//!    pre-migration tiles become unreachable and are purged,
//! 4. adopts the new map only after an encode → decode → validate
//!    round-trip (crash-consistent: a torn map write leaves the old map
//!    in force).
//!
//! The exactly-once request ledger and zero-token-loss ledger are
//! asserted at the end of every episode, and the logical context
//! content is fingerprinted (`context_crc`, per-token CRCs chained in
//! global token order through the live shard map) so tests can pin a
//! faulted episode bit-identical to its no-fault twin.
//!
//! **Degraded zones.** [`ChaosAction::DegradeZone`] makes a zone *sick*
//! rather than dead: service time inflates by a factor and WAL rot is
//! silently injected, but every request still succeeds. Breakers must
//! therefore stay closed (slow ≠ dead) while hedging absorbs the
//! latency — the dispatcher hedges a degraded shard's sub-query onto a
//! healthy read path and caps its effective slowdown.
//!
//! Phase 2 serves the kept flights per shard through the
//! continuous-batching scheduler path
//! ([`simulate_serving_robust_paged`], which delegates to
//! `gpusim::sched`) on pooled runtime tasks with an index-ordered
//! merge, so the whole episode is bit-identical at any worker count.

use crate::endtoend::linear_time;
use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::kernels::{decode_latency, prefill_latency};
use crate::method::AttnMethod;
use crate::replica::{BreakerConfig, CircuitBreaker};
use crate::serving::{
    simulate_serving_robust_paged, RequestSpec, RobustServingStats, ServingPolicy,
};
use turbo_kvcache::{
    policy_from_env, CheckpointPolicy, DequantTile, DequantTileCache, DurableLayerSet,
    KvCacheConfig, LayerKvCache, PagedKvPool, RecordBudget, ReplayBudget,
};
use turbo_robust::{crc32, ChaosAction, ChaosEvent, HealthEvent, HealthStats};
use turbo_runtime::{LayerPipeline, TaskId, WorkClass};
use turbo_tensor::{Matrix, TensorRng};

use std::sync::{Arc, Mutex};

/// Magic bytes opening every serialized shard map.
pub const SHARD_MAP_MAGIC: [u8; 4] = *b"TSMP";
/// Current shard-map format version.
pub const SHARD_MAP_VERSION: u16 = 1;

/// One contiguous slice of the global token range owned by one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// Owning shard id.
    pub shard: usize,
    /// First global token of the slice.
    pub start: usize,
    /// Tokens in the slice (always > 0).
    pub len: usize,
}

impl ShardRange {
    /// One-past-the-end global token.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Versioned, CRC32-framed record of which shard owns which slice of
/// the global token range. The `epoch` counts re-shard migrations and
/// doubles as the generation key of every per-shard dequant tile cache,
/// so bumping it invalidates all pre-migration tiles at once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Format version (`SHARD_MAP_VERSION`).
    pub version: u16,
    /// Migration epoch: 0 at initial layout, +1 per re-shard.
    pub epoch: u64,
    /// Global context length the map covers.
    pub total_tokens: usize,
    /// Slices sorted by `start`; together they partition
    /// `[0, total_tokens)` exactly. A shard may own several slices
    /// after migrations.
    pub assignments: Vec<ShardRange>,
}

impl ShardMap {
    /// Initial layout: `total` tokens split into near-equal contiguous
    /// slices, one per shard, ascending shard order, epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `total < shards` (every shard must
    /// own at least one token).
    pub fn balanced(shards: usize, total: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(total >= shards, "need at least one token per shard");
        let base = total / shards;
        let rem = total % shards;
        let mut assignments = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            assignments.push(ShardRange {
                shard: s,
                start,
                len,
            });
            start += len;
        }
        Self {
            version: SHARD_MAP_VERSION,
            epoch: 0,
            total_tokens: total,
            assignments,
        }
    }

    /// Structural validation: slices sorted, contiguous from 0, cover
    /// exactly `total_tokens`, every owner below `shards`, no empty
    /// slice.
    pub fn validate(&self, shards: usize) -> Result<(), String> {
        if self.version != SHARD_MAP_VERSION {
            return Err(format!("unsupported shard map version {}", self.version));
        }
        if self.assignments.is_empty() {
            return Err("empty shard map".to_string());
        }
        let mut cursor = 0usize;
        for r in &self.assignments {
            if r.len == 0 {
                return Err(format!("empty slice for shard {}", r.shard));
            }
            if r.shard >= shards {
                return Err(format!("slice owner {} out of range", r.shard));
            }
            if r.start != cursor {
                return Err(format!(
                    "gap or overlap at token {cursor} (slice starts at {})",
                    r.start
                ));
            }
            cursor = r.end();
        }
        if cursor != self.total_tokens {
            return Err(format!(
                "map covers {cursor} of {} tokens",
                self.total_tokens
            ));
        }
        Ok(())
    }

    /// Tokens currently owned by `shard`.
    pub fn tokens_of(&self, shard: usize) -> usize {
        self.assignments
            .iter()
            .filter(|r| r.shard == shard)
            .map(|r| r.len)
            .sum()
    }

    /// Serializes the map with a trailing CRC32 over everything before
    /// it. Layout: magic, version u16, epoch u64, total u64, count u32,
    /// then (shard u32, start u64, len u64) per slice, then CRC32 — all
    /// little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26 + 20 * self.assignments.len());
        out.extend_from_slice(&SHARD_MAP_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.total_tokens as u64).to_le_bytes());
        out.extend_from_slice(&(self.assignments.len() as u32).to_le_bytes());
        for r in &self.assignments {
            out.extend_from_slice(&(r.shard as u32).to_le_bytes());
            out.extend_from_slice(&(r.start as u64).to_le_bytes());
            out.extend_from_slice(&(r.len as u64).to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and checksum-verifies a serialized map. Any torn,
    /// corrupt, or version-skewed artifact is rejected, leaving the
    /// caller's previous map in force — the crash-consistent adoption
    /// rule.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 30 {
            return Err("shard map too short".to_string());
        }
        if bytes[..4] != SHARD_MAP_MAGIC {
            return Err("bad shard map magic".to_string());
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(body) != stored {
            return Err("shard map checksum mismatch".to_string());
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != SHARD_MAP_VERSION {
            return Err(format!("unsupported shard map version {version}"));
        }
        let epoch = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
        let total_tokens = u64::from_le_bytes(bytes[14..22].try_into().unwrap()) as usize;
        let count = u32::from_le_bytes(bytes[22..26].try_into().unwrap()) as usize;
        if body.len() != 26 + 20 * count {
            return Err("shard map length mismatch".to_string());
        }
        let mut assignments = Vec::with_capacity(count);
        for i in 0..count {
            let at = 26 + 20 * i;
            assignments.push(ShardRange {
                shard: u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize,
                start: u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize,
                len: u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize,
            });
        }
        Ok(Self {
            version,
            epoch,
            total_tokens,
            assignments,
        })
    }

    /// Deterministic re-shard: the victim's slices are split into
    /// near-equal contiguous chunks, one per survivor in ascending
    /// survivor order, and the epoch advances. Adjacent same-owner
    /// slices merge, so the map stays minimal.
    ///
    /// # Panics
    ///
    /// Panics if `survivors` is empty or contains the victim.
    pub fn reshard(&self, victim: usize, survivors: &[usize]) -> Self {
        assert!(!survivors.is_empty(), "re-shard needs at least one survivor");
        assert!(
            !survivors.contains(&victim),
            "victim cannot survive itself"
        );
        let victim_tokens: usize = self.tokens_of(victim);
        assert!(victim_tokens > 0, "victim owns no tokens");
        let base = victim_tokens / survivors.len();
        let rem = victim_tokens % survivors.len();
        // Chunk quota per survivor, ascending survivor order.
        let mut quotas: Vec<(usize, usize)> = survivors
            .iter()
            .enumerate()
            .map(|(k, &s)| (s, base + usize::from(k < rem)))
            .collect();
        quotas.retain(|&(_, q)| q > 0);

        let mut assignments: Vec<ShardRange> = Vec::with_capacity(self.assignments.len() + 4);
        let mut qi = 0usize; // current quota index
        let mut taken = 0usize; // tokens the current survivor has taken
        for r in &self.assignments {
            if r.shard != victim {
                assignments.push(*r);
                continue;
            }
            // Carve this victim slice across the remaining quotas.
            let mut start = r.start;
            let mut left = r.len;
            while left > 0 {
                let (owner, quota) = quotas[qi];
                let take = (quota - taken).min(left);
                assignments.push(ShardRange {
                    shard: owner,
                    start,
                    len: take,
                });
                start += take;
                left -= take;
                taken += take;
                if taken == quota {
                    qi += 1;
                    taken = 0;
                }
            }
        }
        assignments.sort_by_key(|r| r.start);
        // Merge adjacent same-owner slices.
        let mut merged: Vec<ShardRange> = Vec::with_capacity(assignments.len());
        for r in assignments {
            match merged.last_mut() {
                Some(last) if last.shard == r.shard && last.end() == r.start => {
                    last.len += r.len;
                }
                _ => merged.push(r),
            }
        }
        Self {
            version: self.version,
            epoch: self.epoch + 1,
            total_tokens: self.total_tokens,
            assignments: merged,
        }
    }
}

/// Tuning for a sharded long-context episode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardedConfig {
    /// Shards the context is partitioned across.
    pub shards: usize,
    /// Global context length in tokens (the whole point: larger than
    /// any single shard could hold).
    pub context_tokens: usize,
    /// Layers in each shard's durable slice.
    pub layers: usize,
    /// Heads per layer.
    pub heads: usize,
    /// Head dimension.
    pub dim: usize,
    /// Quantization config of every shard slice.
    pub cache: KvCacheConfig,
    /// Per-shard serving policy for phase 2 (scheduler deadlines,
    /// admission, HBM fraction).
    pub policy: ServingPolicy,
    /// Circuit-breaker tuning shared by every shard.
    pub breaker: BreakerConfig,
    /// Base failover backoff in seconds (doubles per attempt, jittered).
    pub retry_base: f64,
    /// Re-dispatch attempts tolerated per request before rejection.
    pub max_failovers: u32,
    /// Fan-out wait (seconds) above which a degraded shard's sub-query
    /// is hedged onto a healthy read path. `None` disables hedging.
    pub hedge_threshold: Option<f64>,
    /// WAL replay speed during re-shard migration, tokens per second.
    pub wal_replay_rate: f64,
    /// Re-prefill speed for tokens the WAL could not recover, tokens
    /// per second.
    pub reprefill_rate: f64,
    /// Failure-domain count shards group into (`shard % zones`).
    pub zones: usize,
    /// Optional replay-bounded checkpoint cadence (see
    /// [`crate::replica::ReplicaSetConfig::replay_budget_secs`]).
    pub replay_budget_secs: Option<f64>,
    /// Byte budget of each shard's dequant tile cache.
    pub tile_budget_bytes: usize,
    /// Resident blocks warmed into each shard's tile cache per epoch.
    pub warm_blocks: usize,
}

impl Default for ShardedConfig {
    /// Four shards over a 4096-token context — small enough for unit
    /// tests, structurally identical to the 128k acceptance scenario.
    fn default() -> Self {
        Self {
            shards: 4,
            context_tokens: 4096,
            layers: 1,
            heads: 2,
            dim: 4,
            cache: KvCacheConfig {
                group_size: 16,
                buffer_capacity: 16,
                ..KvCacheConfig::default()
            },
            policy: ServingPolicy::default(),
            breaker: BreakerConfig::default(),
            retry_base: 0.1,
            max_failovers: 6,
            hedge_threshold: Some(1.0),
            wal_replay_rate: 50_000.0,
            reprefill_rate: 5_000.0,
            zones: 2,
            replay_budget_secs: None,
            tile_budget_bytes: 1 << 20,
            warm_blocks: 8,
        }
    }
}

/// Ledger and durability accounting of one sharded episode.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedStats {
    /// Requests submitted.
    pub total: usize,
    /// Requests that generated every token.
    pub completed: usize,
    /// Requests truncated by their deadline.
    pub truncated: usize,
    /// Requests rejected (serving-level plus routing-level).
    pub rejected: usize,
    /// Rejections issued by the router (retry budget exhausted).
    pub routing_rejected: usize,
    /// Re-dispatches after a shard failure or unavailable fan-out.
    pub failovers: usize,
    /// Degraded-shard sub-queries hedged onto a healthy read path.
    pub hedged: usize,
    /// Hedges that actually capped a degraded shard's slowdown.
    pub hedge_saves: usize,
    /// Shard kills applied (each one triggers a re-shard).
    pub shard_kills: usize,
    /// Re-shard migrations completed.
    pub reshards: usize,
    /// Final shard-map migration epoch (= re-shards survived).
    pub map_epoch: u64,
    /// Victim tokens recovered from the torn WAL and migrated to
    /// survivors at replay speed.
    pub migrated_tokens: usize,
    /// Victim tokens the WAL could not recover, re-prefilled from the
    /// canonical context at re-prefill speed.
    pub reprefilled_tokens: usize,
    /// Tokens neither migrated nor re-prefilled — always zero.
    pub lost_tokens: usize,
    /// Degraded-zone windows entered.
    pub degraded_windows: usize,
    /// Stale pre-migration tiles purged across all tile caches when the
    /// map epoch bumped.
    pub stale_tiles_purged: usize,
    /// Valid-epoch tile hits observed across all shard tile caches.
    pub tile_hits: u64,
    /// Tile misses across all shard tile caches.
    pub tile_misses: u64,
    /// CRC32 chain of per-token content CRCs in global token order
    /// through the live shard map — the bit-identical-content
    /// fingerprint faulted runs must share with their no-fault twin.
    pub context_crc: u32,
    /// Final shard map.
    pub map: ShardMap,
    /// Tokens resident per shard at the end (index = shard id; retired
    /// shards hold zero).
    pub per_shard_tokens: Vec<usize>,
    /// Tokens generated by the ring-lockstep serve.
    pub generated_tokens: usize,
    /// Latest finish time across shards.
    pub makespan: f64,
    /// `FleetStats`-style trace for bit-exact comparison across runs
    /// and worker counts.
    pub trace: Vec<String>,
    /// Per-shard serving stats (`None` for retired shards or shards
    /// that served nothing).
    pub per_shard: Vec<Option<RobustServingStats>>,
}

impl ShardedStats {
    /// `completed + truncated + rejected` — the exactly-once check.
    pub fn accounted(&self) -> usize {
        self.completed + self.truncated + self.rejected
    }
}

#[derive(Clone, Copy, Debug)]
struct Flight {
    prompt: usize,
    gen: usize,
    dispatched_at: f64,
    est_finish: f64,
    attempts: u32,
    kept: bool,
}

struct Shard {
    up_at: f64,
    busy_until: f64,
    breaker: CircuitBreaker,
    durable: DurableLayerSet,
    /// Pending silent WAL rot (fraction of the log that survives).
    rot_cut: Option<f64>,
    /// Global token ids this shard holds, in append order.
    local_globals: Vec<usize>,
    /// Epoch-keyed memo of resident INT8 expansions.
    tiles: DequantTileCache,
    retired: bool,
}

impl Shard {
    fn is_up(&self, now: f64) -> bool {
        !self.retired && now >= self.up_at
    }
}

#[derive(Clone, Copy, Debug)]
enum Pending {
    Dispatch {
        prompt: usize,
        gen: usize,
        attempts: u32,
    },
    Chaos(ChaosAction),
    /// End of a degraded-zone window.
    Restore {
        zone: usize,
    },
}

#[derive(Clone, Copy, Debug)]
struct Timed {
    time: f64,
    seq: u64,
    item: Pending,
}

fn pop_next(queue: &mut Vec<Timed>) -> Option<Timed> {
    let idx = queue
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)))
        .map(|(i, _)| i)?;
    Some(queue.swap_remove(idx))
}

/// Appends `tokens` (global indices into `context`) to one shard's
/// durable set through a per-shard [`LayerPipeline`].
///
/// The shard's layers are detached
/// ([`DurableLayerSet::take_layers_for_pipeline`]), every `(token,
/// layer)` cache append becomes a [`WorkClass::PrefillChunk`] task
/// chained along the token axis within its layer (per-cell append order
/// stays deterministic), and each token gets one chained
/// [`WorkClass::WalCommit`] task that logs exactly the record
/// `try_append_token` would have written. Layer `k+1`'s append for one
/// token can overlap layer `k`'s for the next; the pipeline joins at
/// the WAL boundary, not per layer. The WAL bytes and the restored
/// cache state are byte-identical to the serialized append loop at any
/// worker count, so the episode's CRC/ledger invariants are unaffected.
fn pipelined_append_tokens(
    rt: &turbo_runtime::Runtime,
    durable: &mut DurableLayerSet,
    context: &Matrix,
    tokens: &[usize],
    health: Option<&HealthStats>,
) {
    if tokens.is_empty() {
        return;
    }
    let taken = durable.take_layers_for_pipeline();
    let nlayers = taken.len();
    let heads = taken[0].num_heads();
    let layer_cells: Vec<Mutex<LayerKvCache>> = taken.into_iter().map(Mutex::new).collect();
    {
        let committer = Mutex::new(&mut *durable);
        let mut pipeline = LayerPipeline::new();
        let mut prev_in_layer: Vec<Option<TaskId>> = vec![None; nlayers];
        let mut wal_prev: Option<TaskId> = None;
        for &t in tokens {
            let row = context.row(t);
            let mut last = None;
            for (l, cell) in layer_cells.iter().enumerate() {
                let deps: Vec<TaskId> = prev_in_layer[l].into_iter().collect();
                let id = pipeline.task(WorkClass::PrefillChunk, l, &deps, move || {
                    let mut layer = cell.lock().unwrap();
                    for h in 0..heads {
                        layer.head_mut(h).append(row, row);
                    }
                });
                prev_in_layer[l] = Some(id);
                last = Some(id);
            }
            let deps: Vec<TaskId> = last.into_iter().chain(wal_prev).collect();
            let committer = &committer;
            let id = pipeline.task(
                WorkClass::WalCommit,
                nlayers.saturating_sub(1),
                &deps,
                move || {
                    let rows: Vec<&[f32]> = vec![row; nlayers * heads];
                    let _ = committer
                        .lock()
                        .unwrap()
                        .commit_pipelined_token(&rows, &rows, health);
                },
            );
            wal_prev = Some(id);
        }
        pipeline.run_on(rt);
    }
    let layers: Vec<LayerKvCache> = layer_cells
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    durable.restore_layers_from_pipeline(layers, health);
}

/// Runs a sharded episode on the global runtime. See the module docs.
///
/// # Panics
///
/// Panics on caller errors (empty/unsorted requests, too few shards or
/// tokens) and if the exactly-once ledger, the zero-token-loss ledger,
/// the map/ownership agreement, or the cross-shard lockstep invariant
/// would be violated (simulator bugs, not input errors).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_episode(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    chaos: &[ChaosEvent],
    config: &ShardedConfig,
    seed: u64,
    health: Option<&HealthStats>,
) -> ShardedStats {
    run_sharded_episode_on(
        turbo_runtime::global(),
        gpu,
        geom,
        method,
        requests,
        chaos,
        config,
        seed,
        health,
    )
}

/// As [`run_sharded_episode`], but on an explicit runtime (worker-count
/// equivalence tests).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_episode_on(
    rt: &turbo_runtime::Runtime,
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    chaos: &[ChaosEvent],
    config: &ShardedConfig,
    seed: u64,
    health: Option<&HealthStats>,
) -> ShardedStats {
    assert!(config.shards >= 2, "sharded serving needs at least 2 shards");
    assert!(
        config.context_tokens >= config.shards,
        "need at least one token per shard"
    );
    assert!(!requests.is_empty(), "no requests to serve");
    for w in requests.windows(2) {
        assert!(
            w[0].arrival <= w[1].arrival,
            "requests must be sorted by arrival"
        );
    }
    assert!(config.retry_base > 0.0, "retry base must be positive");
    assert!(
        config.wal_replay_rate > 0.0 && config.reprefill_rate > 0.0,
        "migration rates must be positive"
    );
    assert!(
        config.layers > 0 && config.heads > 0 && config.dim > 0,
        "shard slice geometry must be non-empty"
    );
    let zones = config.zones.max(1);

    // Canonical context: the logical content the shards collectively
    // hold; re-prefills read lost suffixes from here. Every layer/head
    // cell of a shard carries the same logical tokens.
    let context =
        TensorRng::new(seed ^ 0x5A8D_11E7).normal(config.context_tokens, config.dim, 0.0, 1.0);
    let row_crc = |t: usize| -> u32 {
        let row = context.row(t);
        let mut bytes = Vec::with_capacity(row.len() * 4);
        for x in row {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        crc32(&bytes)
    };

    let make_policy = || -> Box<dyn CheckpointPolicy> {
        let default: Box<dyn CheckpointPolicy> = match config.replay_budget_secs {
            Some(max_replay_secs) => Box::new(ReplayBudget {
                max_replay_secs,
                replay_rate: config.wal_replay_rate,
            }),
            None => Box::new(RecordBudget { max_records: 4096 }),
        };
        policy_from_env(default)
    };

    // ------------------------------------------- initial shard layout --
    let mut map = ShardMap::balanced(config.shards, config.context_tokens);
    map.validate(config.shards).expect("balanced map is valid");
    let mut map_bytes = map.encode();

    // Per-token ownership ledger: which shard appended the token last,
    // and the CRC of the row it appended. Reconstructed through the map
    // at the end into the content fingerprint.
    let mut owner_crc: Vec<Option<(usize, u32)>> = vec![None; config.context_tokens];

    let mut shards: Vec<Shard> = Vec::with_capacity(config.shards);
    for s in 0..config.shards {
        let mut durable = DurableLayerSet::new(
            config.layers,
            config.heads,
            config.dim,
            config.cache,
            make_policy(),
        );
        let mut local_globals = Vec::new();
        let slice: Vec<usize> = map
            .assignments
            .iter()
            .filter(|r| r.shard == s)
            .flat_map(|r| r.start..r.end())
            .collect();
        let half = slice.len() / 2;
        pipelined_append_tokens(rt, &mut durable, &context, &slice[..half], None);
        if !slice.is_empty() {
            // Steady state: snapshot covers the first half, the WAL
            // holds the rest — a kill exercises real replay.
            durable.checkpoint(None);
        }
        pipelined_append_tokens(rt, &mut durable, &context, &slice[half..], None);
        for &t in &slice {
            owner_crc[t] = Some((s, row_crc(t)));
            local_globals.push(t);
        }
        shards.push(Shard {
            up_at: 0.0,
            busy_until: 0.0,
            breaker: CircuitBreaker::new(config.breaker),
            durable,
            rot_cut: None,
            local_globals,
            tiles: DequantTileCache::new(config.tile_budget_bytes),
            retired: false,
        });
    }

    // Warm each shard's tile cache at the current epoch.
    let warm = |shard: &mut Shard, epoch: u64, budget: usize| {
        let head = shard.durable.layer(0).head(0);
        let ks = head.resident_blocks();
        let vs = head.resident_value_blocks();
        for (b, (k, v)) in ks.iter().zip(vs).enumerate().take(budget) {
            shard
                .tiles
                .insert(b, epoch, Arc::new(DequantTile::from_blocks(k, v)));
        }
    };
    for shard in shards.iter_mut() {
        warm(shard, map.epoch, config.warm_blocks);
    }

    let est_service = |prompt: usize, gen: usize| -> f64 {
        prefill_latency(gpu, geom, method, 1, prompt).total()
            + linear_time(gpu, geom, 1, prompt)
            + gen as f64
                * (decode_latency(gpu, geom, method, 1, prompt + gen).total()
                    + linear_time(gpu, geom, 1, 1))
    };

    // ------------------------------------------------- phase 1: timeline --
    let mut queue: Vec<Timed> = Vec::with_capacity(requests.len() + chaos.len());
    let mut seq = 0u64;
    for r in requests {
        queue.push(Timed {
            time: r.arrival,
            seq,
            item: Pending::Dispatch {
                prompt: r.prompt,
                gen: r.gen,
                attempts: 0,
            },
        });
        seq += 1;
    }
    for e in chaos {
        queue.push(Timed {
            time: e.time,
            seq,
            item: Pending::Chaos(e.action),
        });
        seq += 1;
    }

    let mut jitter_rng = TensorRng::new(seed ^ 0x00C3_A051);
    let mut flights: Vec<Flight> = Vec::new();
    // Per-zone degradation window: (active_until, latency_factor).
    let mut degraded: Vec<Option<(f64, f64)>> = vec![None; zones];
    let mut pressure = config.policy.hbm_usable_fraction;
    let mut killed_tokens = 0usize;
    let mut trace: Vec<String> = Vec::new();
    let mut stats = ShardedStats {
        total: requests.len(),
        completed: 0,
        truncated: 0,
        rejected: 0,
        routing_rejected: 0,
        failovers: 0,
        hedged: 0,
        hedge_saves: 0,
        shard_kills: 0,
        reshards: 0,
        map_epoch: 0,
        migrated_tokens: 0,
        reprefilled_tokens: 0,
        lost_tokens: 0,
        degraded_windows: 0,
        stale_tiles_purged: 0,
        tile_hits: 0,
        tile_misses: 0,
        context_crc: 0,
        map: map.clone(),
        per_shard_tokens: Vec::new(),
        generated_tokens: 0,
        makespan: 0.0,
        trace: Vec::new(),
        per_shard: Vec::new(),
    };

    while let Some(ev) = pop_next(&mut queue) {
        let now = ev.time;
        match ev.item {
            Pending::Dispatch {
                prompt,
                gen,
                attempts,
            } => {
                // A long-context request needs *every* live shard: the
                // context spans all of them and the ring merge is exact
                // only over the full set.
                let live: Vec<usize> = (0..shards.len()).filter(|&s| !shards[s].retired).collect();
                let all_ready = live
                    .iter()
                    .all(|&s| shards[s].is_up(now) && shards[s].breaker.admits(now));
                if all_ready {
                    let est = est_service(prompt, gen);
                    let mut worst = now;
                    for &s in &live {
                        let raw_mult = match degraded[s % zones] {
                            Some((until, factor)) if now < until => factor,
                            _ => 1.0,
                        };
                        let mut mult = raw_mult;
                        if raw_mult > 1.0 {
                            let projected =
                                (shards[s].busy_until.max(now) - now) + est * raw_mult;
                            if let Some(h) = config.hedge_threshold {
                                if projected > h {
                                    // Slow, not dead: hedge the degraded
                                    // sub-query onto a healthy read path
                                    // and cap the slowdown.
                                    stats.hedged += 1;
                                    if let Some(hs) = health {
                                        hs.record(HealthEvent::RequestHedged);
                                    }
                                    let capped = raw_mult.min(2.0);
                                    if capped < raw_mult {
                                        stats.hedge_saves += 1;
                                    }
                                    mult = capped;
                                }
                            }
                        }
                        let finish = shards[s].busy_until.max(now) + est * mult;
                        shards[s].busy_until = finish;
                        shards[s].breaker.on_success();
                        worst = worst.max(finish);
                    }
                    flights.push(Flight {
                        prompt,
                        gen,
                        dispatched_at: now,
                        est_finish: worst,
                        attempts,
                        kept: true,
                    });
                } else if attempts >= config.max_failovers {
                    stats.routing_rejected += 1;
                    if let Some(hs) = health {
                        hs.record(HealthEvent::RequestRejected);
                    }
                } else {
                    let jitter = jitter_rng.uniform_value(0.5, 1.5) as f64;
                    let backoff = config.retry_base * f64::powi(2.0, attempts as i32) * jitter;
                    stats.failovers += 1;
                    if let Some(hs) = health {
                        hs.record(HealthEvent::FailoverRetry);
                    }
                    queue.push(Timed {
                        time: now + backoff,
                        seq,
                        item: Pending::Dispatch {
                            prompt,
                            gen,
                            attempts: attempts + 1,
                        },
                    });
                    seq += 1;
                }
            }
            Pending::Restore { zone } => {
                if let Some((until, _)) = degraded[zone] {
                    if now >= until {
                        degraded[zone] = None;
                        if let Some(hs) = health {
                            hs.record(HealthEvent::ZoneRestored);
                        }
                        trace.push(format!("t={now:.3} restore zone={zone}"));
                    }
                }
            }
            Pending::Chaos(action) => match action {
                ChaosAction::KillReplica { replica, wal_cut } => {
                    let v = replica % shards.len();
                    let live_count = shards.iter().filter(|s| !s.retired).count();
                    if shards[v].retired || live_count < 2 {
                        // Dead already, or no survivor to re-shard onto.
                        trace.push(format!("t={now:.3} kill shard={v} skipped"));
                        continue;
                    }
                    stats.shard_kills += 1;
                    if let Some(hs) = health {
                        hs.record(HealthEvent::ShardKilled);
                    }
                    // Tear the victim's WAL; silent degraded-zone rot
                    // compounds the damage.
                    let (snap, mut wal) = shards[v].durable.durable_state();
                    let cut = shards[v].rot_cut.take().map_or(wal_cut, |r| r.min(wal_cut));
                    let keep = (wal.len() as f64 * cut) as usize;
                    wal.truncate(keep);
                    let (_, outcome) = DurableLayerSet::recover_or_empty(
                        config.layers,
                        config.heads,
                        config.dim,
                        config.cache,
                        make_policy(),
                        &snap,
                        &wal,
                        health,
                    );
                    let local = shards[v].local_globals.len();
                    let recovered = outcome.tokens.min(local);
                    let lost = local - recovered;
                    killed_tokens += local;
                    stats.migrated_tokens += recovered;
                    stats.reprefilled_tokens += lost;

                    // Deterministic re-shard with crash-consistent map
                    // adoption: encode → decode → validate, then swap.
                    let survivors: Vec<usize> =
                        (0..shards.len()).filter(|&s| s != v && !shards[s].retired).collect();
                    let proposed = map.reshard(v, &survivors);
                    let encoded = proposed.encode();
                    let adopted = ShardMap::decode(&encoded)
                        .expect("freshly encoded shard map must decode");
                    adopted
                        .validate(config.shards)
                        .expect("re-sharded map must stay a partition");
                    map = adopted;
                    map_bytes = encoded;
                    if let Some(hs) = health {
                        hs.record(HealthEvent::ShardMapEpochBump);
                    }

                    // The epoch bump invalidates every pre-migration
                    // tile: purge stale generations everywhere, then
                    // re-warm the survivors at the new epoch.
                    for s in survivors.iter().copied() {
                        let before = shards[s].tiles.stats().entries;
                        shards[s].tiles.purge_generations_below(map.epoch);
                        stats.stale_tiles_purged +=
                            before - shards[s].tiles.stats().entries;
                    }
                    let before = shards[v].tiles.stats().entries;
                    shards[v].tiles.purge_generations_below(map.epoch);
                    stats.stale_tiles_purged += before - shards[v].tiles.stats().entries;

                    // Physically move the victim's tokens: survivors
                    // append their gained chunks in global order. The
                    // recovered prefix migrates at replay speed; only
                    // the lost suffix pays the re-prefill rate.
                    let victim_globals: std::collections::HashSet<usize> =
                        shards[v].local_globals.iter().copied().collect();
                    shards[v].local_globals.clear();
                    shards[v].retired = true;
                    shards[v].up_at = f64::INFINITY;
                    let rebuild_time = 0.01
                        + recovered as f64 / config.wal_replay_rate
                        + lost as f64 / config.reprefill_rate;
                    for r in map.assignments.clone() {
                        if !survivors.contains(&r.shard) {
                            continue;
                        }
                        let gained: Vec<usize> = (r.start..r.end())
                            .filter(|t| victim_globals.contains(t))
                            .collect();
                        pipelined_append_tokens(
                            rt,
                            &mut shards[r.shard].durable,
                            &context,
                            &gained,
                            health,
                        );
                        for &t in &gained {
                            owner_crc[t] = Some((r.shard, row_crc(t)));
                            shards[r.shard].local_globals.push(t);
                        }
                    }
                    for &s in &survivors {
                        shards[s].busy_until = shards[s].busy_until.max(now) + rebuild_time;
                        warm(&mut shards[s], map.epoch, config.warm_blocks);
                    }
                    stats.reshards += 1;
                    if let Some(hs) = health {
                        hs.record(HealthEvent::ShardResharded);
                    }

                    // Everything in the air at kill time fails over.
                    shards[v].breaker.on_failure(now, health);
                    let mut redispatch = 0usize;
                    for f in flights.iter_mut() {
                        if f.kept && f.est_finish > now {
                            f.kept = false;
                            let jitter = jitter_rng.uniform_value(0.5, 1.5) as f64;
                            let backoff =
                                config.retry_base * f64::powi(2.0, f.attempts as i32) * jitter;
                            stats.failovers += 1;
                            if let Some(hs) = health {
                                hs.record(HealthEvent::FailoverRetry);
                            }
                            queue.push(Timed {
                                time: now + backoff,
                                seq,
                                item: Pending::Dispatch {
                                    prompt: f.prompt,
                                    gen: f.gen,
                                    attempts: f.attempts + 1,
                                },
                            });
                            seq += 1;
                            redispatch += 1;
                        }
                    }
                    trace.push(format!(
                        "t={now:.3} kill shard={v} cut={cut:.4} recovered={recovered} \
                         reprefilled={lost} epoch={} redispatch={redispatch}",
                        map.epoch
                    ));
                }
                ChaosAction::RestartReplica { replica } => {
                    let i = replica % shards.len();
                    if shards[i].retired || !shards[i].is_up(now) {
                        continue;
                    }
                    shards[i].durable.checkpoint(health);
                    let pause = 0.05;
                    shards[i].up_at = now.max(shards[i].busy_until) + pause;
                    shards[i].busy_until = shards[i].up_at;
                    trace.push(format!("t={now:.3} restart shard={i}"));
                }
                ChaosAction::TruncateWal { replica, wal_cut } => {
                    let i = replica % shards.len();
                    if shards[i].retired {
                        continue;
                    }
                    let prev = shards[i].rot_cut.unwrap_or(1.0);
                    shards[i].rot_cut = Some(prev.min(wal_cut));
                }
                ChaosAction::MemoryPressure { usable } => {
                    pressure = pressure.min(usable);
                }
                ChaosAction::DegradeZone {
                    zone,
                    latency_factor,
                    wal_rot,
                    duration,
                } => {
                    let z = zone % zones;
                    degraded[z] = Some((now + duration, latency_factor.max(1.0)));
                    stats.degraded_windows += 1;
                    if let Some(hs) = health {
                        hs.record(HealthEvent::ZoneDegraded);
                    }
                    for i in (0..shards.len()).filter(|s| s % zones == z) {
                        if shards[i].retired {
                            continue;
                        }
                        let prev = shards[i].rot_cut.unwrap_or(1.0);
                        shards[i].rot_cut = Some(prev.min(wal_rot));
                        if let Some(hs) = health {
                            hs.record(HealthEvent::DegradedWalRot);
                        }
                    }
                    queue.push(Timed {
                        time: now + duration,
                        seq,
                        item: Pending::Restore { zone: z },
                    });
                    seq += 1;
                    trace.push(format!(
                        "t={now:.3} degrade zone={z} factor={latency_factor:.2} \
                         rot={wal_rot:.4} until={:.3}",
                        now + duration
                    ));
                }
                // Engine-level activation faults are applied by the
                // chaos harness to the attention engine, not here.
                ChaosAction::InjectFault { .. } => {}
            },
        }
    }

    // Valid-epoch tiles must still serve after any migration: touch the
    // warmed blocks at the final epoch and fold the cache counters in.
    for shard in shards.iter_mut() {
        if shard.retired {
            continue;
        }
        for b in 0..config.warm_blocks {
            let _ = shard.tiles.get(b, map.epoch);
        }
        let ts = shard.tiles.stats();
        stats.tile_hits += ts.hits;
        stats.tile_misses += ts.misses;
    }

    // ---------------------------------------- phase 2: lockstep serve --
    let policy = ServingPolicy {
        hbm_usable_fraction: pressure,
        ..config.policy
    };
    let kept: Vec<RequestSpec> = flights
        .iter()
        .filter(|f| f.kept)
        .map(|f| RequestSpec {
            arrival: f.dispatched_at,
            prompt: f.prompt,
            gen: f.gen,
        })
        .collect();
    let shard_inputs: Vec<Option<Vec<usize>>> = shards
        .iter()
        .map(|s| (!s.retired).then(|| s.local_globals.clone()))
        .collect();
    stats.per_shard = rt.par_map(&shard_inputs, |locals| {
        let locals = locals.as_ref()?;
        if kept.is_empty() {
            return None;
        }
        // Each shard serves the same kept flights over its own slice
        // through the continuous-batching scheduler path; the ring
        // merge is exact, so the ledgers must agree in lockstep. Pool
        // construction is a pure function of (map, context), keeping
        // the merge deterministic at any worker count.
        let mut pool = PagedKvPool::new(config.dim, config.cache);
        let prefix = pool.create_sequence();
        for &t in locals {
            let row = context.row(t);
            let _ = pool.try_append(prefix, row, row);
        }
        Some(simulate_serving_robust_paged(
            gpu, geom, method, &kept, &policy, &mut pool, prefix, health,
        ))
    });

    let served: Vec<&RobustServingStats> = stats.per_shard.iter().flatten().collect();
    if let Some(first) = served.first() {
        for s in &served[1..] {
            assert_eq!(
                (s.completed, s.truncated, s.rejected, s.generated_tokens),
                (
                    first.completed,
                    first.truncated,
                    first.rejected,
                    first.generated_tokens
                ),
                "ring lockstep violated: shard ledgers disagree"
            );
        }
        stats.completed = first.completed;
        stats.truncated = first.truncated;
        stats.rejected = first.rejected;
        stats.generated_tokens = first.generated_tokens;
        stats.makespan = served
            .iter()
            .map(|s| s.makespan)
            .fold(0.0f64, f64::max);
    }
    stats.rejected += stats.routing_rejected;

    // ----------------------------------------------- ledgers + content --
    stats.lost_tokens = killed_tokens - stats.migrated_tokens - stats.reprefilled_tokens;
    stats.map_epoch = map.epoch;
    stats.per_shard_tokens = (0..shards.len())
        .map(|s| shards[s].local_globals.len())
        .collect();

    // The durable artifact must round-trip to the adopted map.
    let durable_map = ShardMap::decode(&map_bytes).expect("durable shard map decodes");
    assert_eq!(durable_map, map, "durable map artifact diverged");
    for (s, shard) in shards.iter().enumerate() {
        assert_eq!(
            map.tokens_of(s),
            shard.local_globals.len(),
            "shard {s} resident tokens disagree with the map"
        );
        if !shard.retired {
            assert_eq!(
                shard.durable.tokens(),
                shard.local_globals.len(),
                "shard {s} durable set out of step with its ledger"
            );
        }
    }

    // Content fingerprint: every global token must be owned by exactly
    // the shard the map says, with the CRC recorded at append time.
    let mut chain = Vec::with_capacity(config.context_tokens * 4);
    for r in &map.assignments {
        for (t, cell) in owner_crc.iter().enumerate().take(r.end()).skip(r.start) {
            let (owner, crc) = cell.expect("every token has an owner");
            assert_eq!(owner, r.shard, "token {t} owned off-map");
            chain.extend_from_slice(&crc.to_le_bytes());
        }
    }
    stats.context_crc = crc32(&chain);

    assert_eq!(
        stats.accounted(),
        stats.total,
        "exactly-once accounting violated"
    );
    assert_eq!(stats.lost_tokens, 0, "context tokens were silently lost");

    trace.push(format!(
        "final epoch={} kills={} reshards={} migrated={} reprefilled={} \
         completed={} truncated={} rejected={} crc={:08x}",
        stats.map_epoch,
        stats.shard_kills,
        stats.reshards,
        stats.migrated_tokens,
        stats.reprefilled_tokens,
        stats.completed,
        stats.truncated,
        stats.rejected,
        stats.context_crc
    ));
    stats.trace = trace;
    stats.map = map;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::uniform_workload;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    fn workload() -> Vec<RequestSpec> {
        uniform_workload(12, 2.0, 256, 16, 42)
    }

    fn kill(time: f64, shard: usize, wal_cut: f64) -> ChaosEvent {
        ChaosEvent {
            time,
            action: ChaosAction::KillReplica {
                replica: shard,
                wal_cut,
            },
        }
    }

    #[test]
    fn balanced_map_partitions_exactly() {
        for shards in [2, 3, 4, 8] {
            for total in [shards, 100, 4096, 4097] {
                let m = ShardMap::balanced(shards, total);
                m.validate(shards).unwrap();
                let sum: usize = (0..shards).map(|s| m.tokens_of(s)).sum();
                assert_eq!(sum, total);
                let spread: Vec<usize> = (0..shards).map(|s| m.tokens_of(s)).collect();
                let (min, max) = (
                    *spread.iter().min().unwrap(),
                    *spread.iter().max().unwrap(),
                );
                assert!(max - min <= 1, "near-equal split");
            }
        }
    }

    #[test]
    fn map_roundtrips_and_rejects_corruption() {
        let m = ShardMap::balanced(4, 1000);
        let bytes = m.encode();
        assert_eq!(ShardMap::decode(&bytes).unwrap(), m);
        // Truncation at every byte boundary is rejected, never adopted.
        for cut in 0..bytes.len() {
            assert!(
                ShardMap::decode(&bytes[..cut]).is_err(),
                "torn map at {cut} must not decode"
            );
        }
        // Any single-byte flip fails the checksum (or the magic).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(ShardMap::decode(&bad).is_err(), "flip at {i} must fail");
        }
    }

    #[test]
    fn reshard_moves_only_victim_tokens_and_bumps_epoch() {
        let m = ShardMap::balanced(4, 4096);
        let resharded = m.reshard(1, &[0, 2, 3]);
        resharded.validate(4).unwrap();
        assert_eq!(resharded.epoch, m.epoch + 1);
        assert_eq!(resharded.tokens_of(1), 0);
        assert_eq!(
            resharded.tokens_of(0) + resharded.tokens_of(2) + resharded.tokens_of(3),
            4096
        );
        // Survivors keep everything they had.
        for s in [0, 2, 3] {
            assert!(resharded.tokens_of(s) >= m.tokens_of(s));
        }
        // Repeated re-shards stay valid down to one shard.
        let again = resharded.reshard(2, &[0, 3]);
        again.validate(4).unwrap();
        let last = again.reshard(0, &[3]);
        last.validate(4).unwrap();
        assert_eq!(last.tokens_of(3), 4096);
        assert_eq!(last.epoch, 3);
    }

    #[test]
    fn no_fault_episode_completes_and_fingerprints() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig::default();
        let reqs = workload();
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &reqs,
            &[],
            &cfg,
            7,
            None,
        );
        assert_eq!(stats.total, reqs.len());
        assert_eq!(stats.accounted(), stats.total);
        assert_eq!(stats.shard_kills, 0);
        assert_eq!(stats.map_epoch, 0);
        assert_eq!(stats.lost_tokens, 0);
        assert!(stats.completed > 0);
        assert_ne!(stats.context_crc, 0);
        assert_eq!(
            stats.per_shard_tokens.iter().sum::<usize>(),
            cfg.context_tokens
        );
    }

    #[test]
    fn shard_kill_reshards_with_zero_token_loss() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig::default();
        let reqs = workload();
        let hs = HealthStats::new();
        let faulted = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &reqs,
            &[kill(1.0, 2, 0.6)],
            &cfg,
            7,
            Some(&hs),
        );
        assert_eq!(faulted.shard_kills, 1);
        assert_eq!(faulted.reshards, 1);
        assert_eq!(faulted.map_epoch, 1);
        assert_eq!(faulted.lost_tokens, 0);
        assert_eq!(faulted.accounted(), faulted.total);
        assert!(faulted.migrated_tokens > 0, "torn WAL recovers a prefix");
        assert!(faulted.reprefilled_tokens > 0, "the tail is re-prefilled");
        assert_eq!(
            faulted.migrated_tokens + faulted.reprefilled_tokens,
            cfg.context_tokens / 4
        );
        assert_eq!(faulted.per_shard_tokens[2], 0, "victim retired");
        assert_eq!(hs.count(HealthEvent::ShardKilled), 1);
        assert_eq!(hs.count(HealthEvent::ShardResharded), 1);
        assert_eq!(hs.count(HealthEvent::ShardMapEpochBump), 1);

        // Bit-identical logical content to the no-fault run.
        let clean = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &reqs,
            &[],
            &cfg,
            7,
            None,
        );
        assert_eq!(faulted.context_crc, clean.context_crc);
    }

    #[test]
    fn epoch_bump_purges_stale_tiles() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig::default();
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &workload(),
            &[kill(1.0, 0, 0.5)],
            &cfg,
            11,
            None,
        );
        assert!(
            stats.stale_tiles_purged > 0,
            "pre-migration tiles must be purged on the epoch bump"
        );
        assert!(stats.tile_hits > 0, "current-epoch tiles still serve");
    }

    #[test]
    fn degraded_zone_keeps_breakers_closed_and_hedges() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig {
            hedge_threshold: Some(1e-6),
            ..ShardedConfig::default()
        };
        let hs = HealthStats::new();
        let chaos = [ChaosEvent {
            time: 0.5,
            action: ChaosAction::DegradeZone {
                zone: 0,
                latency_factor: 8.0,
                wal_rot: 0.7,
                duration: 100.0,
            },
        }];
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &workload(),
            &chaos,
            &cfg,
            13,
            Some(&hs),
        );
        // Slow ≠ dead: nothing is rejected, nothing re-shards, no
        // breaker opens — but the dispatcher hedges the slow shards.
        assert_eq!(stats.shard_kills, 0);
        assert_eq!(stats.routing_rejected, 0);
        assert_eq!(hs.count(HealthEvent::BreakerOpened), 0);
        assert_eq!(hs.count(HealthEvent::ZoneDegraded), 1);
        assert!(stats.hedged > 0, "degraded fan-outs must hedge");
        assert!(stats.hedge_saves > 0, "hedges cap the slowdown");
        assert_eq!(stats.degraded_windows, 1);
        assert_eq!(stats.accounted(), stats.total);
    }

    #[test]
    fn degraded_rot_compounds_into_the_next_kill() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig::default();
        // Zone 0 rots shard 0's WAL hard, then shard 0 dies with a mild
        // cut: recovery must see the *compounded* (worse) cut.
        let rot_then_kill = [
            ChaosEvent {
                time: 0.2,
                action: ChaosAction::DegradeZone {
                    zone: 0,
                    latency_factor: 2.0,
                    wal_rot: 0.1,
                    duration: 0.1,
                },
            },
            kill(1.0, 0, 0.99),
        ];
        let rotted = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &workload(),
            &rot_then_kill,
            &cfg,
            17,
            None,
        );
        let unrotted = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &workload(),
            &[kill(1.0, 0, 0.99)],
            &cfg,
            17,
            None,
        );
        assert!(
            rotted.migrated_tokens < unrotted.migrated_tokens,
            "rot must shrink the recoverable prefix ({} vs {})",
            rotted.migrated_tokens,
            unrotted.migrated_tokens
        );
        assert_eq!(rotted.lost_tokens, 0, "but never lose tokens");
        assert_eq!(rotted.context_crc, unrotted.context_crc);
    }

    #[test]
    fn episode_is_bit_identical_across_worker_counts() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig::default();
        let reqs = workload();
        let chaos = [
            ChaosEvent {
                time: 0.4,
                action: ChaosAction::DegradeZone {
                    zone: 1,
                    latency_factor: 4.0,
                    wal_rot: 0.8,
                    duration: 2.0,
                },
            },
            kill(1.0, 3, 0.7),
        ];
        let runs: Vec<ShardedStats> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let rt = turbo_runtime::Runtime::with_workers(w);
                run_sharded_episode_on(
                    &rt,
                    &gpu,
                    &geom,
                    AttnMethod::Turbo { kv_bits: 3.0 },
                    &reqs,
                    &chaos,
                    &cfg,
                    23,
                    None,
                )
            })
            .collect();
        assert_eq!(runs[0], runs[1], "1 vs 2 workers");
        assert_eq!(runs[0], runs[2], "1 vs 8 workers");
        assert_eq!(runs[0].trace, runs[2].trace, "traces bit-identical");
    }

    #[test]
    fn double_kill_leaves_two_survivors_holding_everything() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig::default();
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &workload(),
            &[kill(0.8, 1, 0.5), kill(1.6, 3, 0.4)],
            &cfg,
            29,
            None,
        );
        assert_eq!(stats.shard_kills, 2);
        assert_eq!(stats.map_epoch, 2);
        assert_eq!(stats.lost_tokens, 0);
        assert_eq!(stats.per_shard_tokens[1], 0);
        assert_eq!(stats.per_shard_tokens[3], 0);
        assert_eq!(
            stats.per_shard_tokens[0] + stats.per_shard_tokens[2],
            cfg.context_tokens
        );
        assert_eq!(stats.accounted(), stats.total);
    }

    #[test]
    fn kill_with_no_survivor_is_skipped() {
        let (gpu, geom) = setup();
        let cfg = ShardedConfig {
            shards: 2,
            ..ShardedConfig::default()
        };
        let stats = run_sharded_episode(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &workload(),
            &[kill(0.5, 0, 0.5), kill(1.0, 1, 0.5)],
            &cfg,
            31,
            None,
        );
        // The second kill would leave nobody; it is skipped and the
        // episode still accounts for every request and token.
        assert_eq!(stats.shard_kills, 1);
        assert_eq!(stats.lost_tokens, 0);
        assert_eq!(stats.accounted(), stats.total);
    }
}
