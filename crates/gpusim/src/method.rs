//! Attention methods the cost model distinguishes.

use std::fmt;

/// One attention execution strategy, with its KV-cache precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttnMethod {
    /// FlashAttention with FP16 matmuls and FP32 exponentiation; FP16 KV
    /// cache (the paper's baseline).
    FlashFp16,
    /// KIVI-compressed KV cache at `bits`, dequantized to FP16 before a
    /// FlashAttention-style kernel.
    Kivi {
        /// KV-cache code width.
        bits: f64,
    },
    /// GEAR-L: as KIVI plus a rank-`rank` low-rank error-compensation
    /// reconstruction on every decode load.
    GearL {
        /// KV-cache code width.
        bits: f64,
        /// Error-compensation rank.
        rank: usize,
    },
    /// TurboAttention: INT8 execution, SAS softmax, progressive KV cache
    /// at an average of `kv_bits` (4.0 uniform, 3.0 for mixed 2/4).
    Turbo {
        /// Average resident KV-cache bits.
        kv_bits: f64,
    },
}

impl AttnMethod {
    /// The paper's four Figure 6 lines, in plot order.
    pub fn figure6_lineup() -> Vec<AttnMethod> {
        vec![
            AttnMethod::FlashFp16,
            AttnMethod::Kivi { bits: 4.0 },
            AttnMethod::GearL { bits: 4.0, rank: 4 },
            AttnMethod::Turbo { kv_bits: 3.0 },
        ]
    }

    /// Bits per stored KV element (including an amortized allowance for
    /// group parameters/residual windows).
    pub fn kv_bits(&self) -> f64 {
        match *self {
            AttnMethod::FlashFp16 => 16.0,
            // Quantized caches carry ~0.5 bit/elem of scales, zeros and
            // full-precision residual amortized over a long context.
            AttnMethod::Kivi { bits } => bits + 0.5,
            AttnMethod::GearL { bits, rank } => bits + 0.5 + 0.1 * rank as f64,
            AttnMethod::Turbo { kv_bits } => kv_bits + 0.5,
        }
    }

    /// KV bytes per token per layer-head-channel element.
    pub fn kv_bytes_per_elem(&self) -> f64 {
        self.kv_bits() / 8.0
    }

    /// Whether score/output matmuls run on the INT8 tensor path.
    pub fn int8_matmul(&self) -> bool {
        matches!(self, AttnMethod::Turbo { .. })
    }

    /// Whether exponentiation uses SAS (FP16-path polynomial) instead of
    /// FP32 CUDA exp.
    pub fn sas_softmax(&self) -> bool {
        matches!(self, AttnMethod::Turbo { .. })
    }

    /// Floating-point dequantization ops per loaded KV element
    /// (scale/zero multiply-add, type conversion). Zero for FP16 and for
    /// Turbo (whose dequantization is integer, see
    /// [`AttnMethod::int_dequant_ops_per_elem`]).
    pub fn fp_dequant_ops_per_elem(&self) -> f64 {
        match *self {
            AttnMethod::FlashFp16 => 0.0,
            // unpack + scale + zero-add + f16 convert
            AttnMethod::Kivi { .. } => 4.0,
            // KIVI-style dequant + low-rank add
            AttnMethod::GearL { .. } => 5.0,
            AttnMethod::Turbo { .. } => 0.0,
        }
    }

    /// Integer dequantization ops per loaded KV element (Turbo's
    /// `(q² + z)·s` path).
    pub fn int_dequant_ops_per_elem(&self) -> f64 {
        match *self {
            AttnMethod::Turbo { .. } => 2.0,
            _ => 0.0,
        }
    }

    /// Extra MACs per loaded KV element for low-rank error reconstruction
    /// (GEAR-L only): `A·Bᵀ` costs `rank` MACs per reconstructed element.
    pub fn lowrank_macs_per_elem(&self) -> f64 {
        match *self {
            AttnMethod::GearL { rank, .. } => rank as f64,
            _ => 0.0,
        }
    }

    /// Per-tile quantization ops per produced element during prefill
    /// (Turbo quantizes Q/K/V/P tiles; baselines compress K/V once).
    pub fn quant_ops_per_elem(&self) -> f64 {
        match *self {
            AttnMethod::FlashFp16 => 0.0,
            AttnMethod::Kivi { .. } | AttnMethod::GearL { .. } => 2.0,
            AttnMethod::Turbo { .. } => 2.0,
        }
    }
}

impl fmt::Display for AttnMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AttnMethod::FlashFp16 => write!(f, "Flash-FP16"),
            AttnMethod::Kivi { bits } => write!(f, "KIVI-{bits:.0}bit"),
            AttnMethod::GearL { bits, rank } => write!(f, "GEAR-L-{bits:.0}bit(r{rank})"),
            AttnMethod::Turbo { kv_bits } => {
                if (kv_bits - 3.0).abs() < 1e-9 {
                    write!(f, "TurboAttention(2/4)")
                } else {
                    write!(f, "TurboAttention({kv_bits:.0}bit)")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_bits_ordering() {
        let fp16 = AttnMethod::FlashFp16.kv_bits();
        let kivi = AttnMethod::Kivi { bits: 4.0 }.kv_bits();
        let turbo = AttnMethod::Turbo { kv_bits: 3.0 }.kv_bits();
        assert!(fp16 > kivi && kivi > turbo);
        // Compression ratio vs FP16 exceeds the paper's 4.4x for mixed 2/4.
        assert!(fp16 / turbo > 4.4);
    }

    #[test]
    fn only_turbo_runs_integer_attention() {
        for m in AttnMethod::figure6_lineup() {
            assert_eq!(m.int8_matmul(), matches!(m, AttnMethod::Turbo { .. }));
            assert_eq!(m.sas_softmax(), matches!(m, AttnMethod::Turbo { .. }));
        }
    }

    #[test]
    fn dequant_cost_ordering_matches_figure_1b() {
        // GEAR decompression > KIVI decompression > Turbo integer path.
        let kivi = AttnMethod::Kivi { bits: 4.0 };
        let gear = AttnMethod::GearL { bits: 4.0, rank: 4 };
        let turbo = AttnMethod::Turbo { kv_bits: 3.0 };
        assert!(
            gear.fp_dequant_ops_per_elem() + gear.lowrank_macs_per_elem()
                > kivi.fp_dequant_ops_per_elem()
        );
        assert!(turbo.fp_dequant_ops_per_elem() == 0.0);
        assert!(turbo.int_dequant_ops_per_elem() > 0.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(AttnMethod::FlashFp16.to_string(), "Flash-FP16");
        assert_eq!(
            AttnMethod::Turbo { kv_bits: 3.0 }.to_string(),
            "TurboAttention(2/4)"
        );
    }
}
