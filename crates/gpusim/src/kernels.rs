//! Attention-kernel latency model (prefill and decode).
//!
//! Latency decomposes into the categories Figure 1b/1c plot:
//!
//! * `mem` — HBM traffic of the attention kernel itself,
//! * `matmul` — score and output GEMMs/GEMVs,
//! * `softmax` — exponentiation plus max/sum/rescale bookkeeping,
//! * `dequant` — KV-cache decompression (a *separate materializing
//!   kernel* for KIVI/GEAR, the paper's "time-intensive floating-point
//!   decompression"; an in-kernel integer path for Turbo),
//! * `quant` — compression work (tile quantization for Turbo inside the
//!   kernel; a separate compression kernel for the baselines),
//! * `launch` — fixed kernel-launch overhead.
//!
//! Prefill is compute-bound at realistic context lengths, so its total is
//! `launch + dequant + quant_extra + max(mem, compute)`; decode kernels
//! are GEMV-shaped and poorly overlapped, so their phases serialize.

use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::method::AttnMethod;

/// FP32 bookkeeping ops per score element in the FP16/FP32 softmax path
/// (row max, subtract, running sum, rescale, two FP16↔FP32 conversions…).
/// Calibrated so FlashAttention-FP16 prefill spends ~25–30 % of its time
/// in softmax, matching the paper's measurement.
const SOFTMAX_BOOKKEEPING_FP32: f64 = 8.0;
/// Integer bookkeeping ops per score element on the SAS path (no
/// conversions; max/sum only).
const SOFTMAX_BOOKKEEPING_SAS: f64 = 3.0;
/// Fraction of tensor peak an INT8 attention kernel achieves (dequant
/// interleaving and scale fixups cost issue slots).
const INT8_KERNEL_EFFICIENCY: f64 = 0.85;
/// GEMV (decode) efficiency of tensor-path matmuls: single-row products
/// cannot fill tensor-core tiles.
const GEMV_EFFICIENCY: f64 = 0.25;
/// Effective-bandwidth factor for packed sub-byte KV loads (group
/// parameters and unpacking hurt coalescing).
const PACKED_BW_FACTOR: f64 = 0.85;

/// Per-phase latency decomposition, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelBreakdown {
    /// Attention-kernel HBM time.
    pub mem: f64,
    /// Matmul time.
    pub matmul: f64,
    /// Softmax (exponentiation + bookkeeping) time.
    pub softmax: f64,
    /// KV-cache decompression time (incl. the baselines' materialization
    /// traffic).
    pub dequant: f64,
    /// Compression/quantization time.
    pub quant: f64,
    /// Kernel-launch overhead.
    pub launch: f64,
    /// Whether the compute phases overlap memory (prefill) or serialize
    /// (decode).
    pub overlapped: bool,
}

impl KernelBreakdown {
    /// Total latency in seconds.
    pub fn total(&self) -> f64 {
        let compute = self.matmul + self.softmax + self.quant;
        if self.overlapped {
            self.launch + self.dequant + self.mem.max(compute)
        } else {
            self.launch + self.dequant + self.mem + compute
        }
    }

    /// Fraction of total spent in `softmax`.
    pub fn softmax_share(&self) -> f64 {
        self.softmax / self.total()
    }

    /// Fraction of total spent in `dequant`.
    pub fn dequant_share(&self) -> f64 {
        self.dequant / self.total()
    }
}

/// Latency of the attention mechanism across a full forward pass over
/// `ctx` prompt tokens (all layers, all heads), for one prefill.
///
/// # Panics
///
/// Panics if `batch == 0` or `ctx == 0`.
pub fn prefill_latency(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    batch: usize,
    ctx: usize,
) -> KernelBreakdown {
    assert!(batch > 0 && ctx > 0, "batch and context must be positive");
    let b = batch as f64;
    let n = ctx as f64;
    let d = geom.head_dim as f64;
    let hl = (geom.heads * geom.layers) as f64;
    let kv_hl = (geom.kv_heads * geom.layers) as f64;

    // Causal attention touches ~n²/2 score elements (per query head).
    let score_elems = b * hl * n * n / 2.0;
    let qkv_elems = 3.0 * b * n * (geom.hidden as f64) * geom.layers as f64;
    let kv_elems = 2.0 * b * kv_hl * n * d;

    // Attention-kernel HBM traffic: read Q,K,V (FP16 activations), write O,
    // write the KV cache at the method's precision.
    let mem_bytes = qkv_elems * 2.0
        + b * n * (geom.hidden as f64) * geom.layers as f64 * 2.0
        + kv_elems * method.kv_bytes_per_elem();
    let mem = mem_bytes / gpu.hbm_bandwidth;

    // Score + output GEMMs: 2 matmuls × d MACs per score element.
    let macs = 2.0 * score_elems * d;
    let matmul = if method.int8_matmul() {
        macs / (gpu.int8_tensor_macs * INT8_KERNEL_EFFICIENCY)
    } else {
        macs / gpu.fp16_tensor_macs
    };

    let softmax = if method.sas_softmax() {
        score_elems / gpu.sas_exp_ops + score_elems * SOFTMAX_BOOKKEEPING_SAS / gpu.int_alu_ops
    } else {
        score_elems / gpu.fp32_exp_ops + score_elems * SOFTMAX_BOOKKEEPING_FP32 / gpu.fp32_cuda_ops
    };

    // Quantization.
    let (quant, extra_kernel_launches, dequant) = match method {
        AttnMethod::FlashFp16 => (0.0, 0.0, 0.0),
        AttnMethod::Kivi { .. } | AttnMethod::GearL { .. } => {
            // Separate post-hoc compression kernel: read KV FP16, write
            // compressed, a couple of float ops per element. GEAR also
            // factorizes the error (a few extra passes over the block).
            let extra_macs = method.lowrank_macs_per_elem() * kv_elems * 3.0;
            let t = (kv_elems * 2.0 + kv_elems * method.kv_bytes_per_elem()) / gpu.hbm_bandwidth
                + kv_elems * method.quant_ops_per_elem() / gpu.fp32_cuda_ops
                + extra_macs / gpu.fp16_tensor_macs;
            (t, geom.layers as f64, 0.0)
        }
        AttnMethod::Turbo { .. } => {
            // Fused in-kernel quantization of Q/K/V tiles and P tiles.
            let elems = qkv_elems + score_elems;
            (
                elems * method.quant_ops_per_elem() / gpu.int_alu_ops,
                0.0,
                0.0,
            )
        }
    };

    let in_kernel_quant = if matches!(method, AttnMethod::Turbo { .. }) {
        quant
    } else {
        0.0
    };
    let separate_quant = quant - in_kernel_quant;

    KernelBreakdown {
        mem,
        matmul,
        softmax,
        quant: in_kernel_quant,
        // Report the baselines' separate compression kernel under
        // `dequant` share (it is the same (de)compression overhead lane of
        // Figure 1b) — it never overlaps the attention kernel.
        dequant: dequant + separate_quant,
        launch: gpu.kernel_launch * (geom.layers as f64 + extra_kernel_launches),
        overlapped: true,
    }
}

/// Latency of one decode step's attention over a cache of `ctx` tokens.
///
/// # Panics
///
/// Panics if `batch == 0` or `ctx == 0`.
pub fn decode_latency(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    batch: usize,
    ctx: usize,
) -> KernelBreakdown {
    assert!(batch > 0 && ctx > 0, "batch and context must be positive");
    let b = batch as f64;
    let n = ctx as f64;
    let d = geom.head_dim as f64;
    let hl = (geom.heads * geom.layers) as f64;
    let kv_hl = (geom.kv_heads * geom.layers) as f64;
    let kv_elems = 2.0 * b * kv_hl * n * d;

    // Attention-kernel HBM traffic: the KV cache read dominates. The
    // baselines' attention kernel reads the *materialized FP16* cache;
    // Turbo reads the packed cache directly.
    let (attn_kv_bytes, bw_factor) = match method {
        AttnMethod::FlashFp16 => (kv_elems * 2.0, 1.0),
        AttnMethod::Kivi { .. } | AttnMethod::GearL { .. } => (kv_elems * 2.0, 1.0),
        AttnMethod::Turbo { .. } => (kv_elems * method.kv_bytes_per_elem(), PACKED_BW_FACTOR),
    };
    let mem = attn_kv_bytes / (gpu.hbm_bandwidth * bw_factor);

    // Decompression:
    // * KIVI/GEAR run a separate kernel per step: read packed, apply float
    //   dequant (+ GEAR's low-rank reconstruction), write FP16.
    // * Turbo dequantizes INT4/2→INT8 in registers: integer ops only.
    let dequant = match method {
        AttnMethod::FlashFp16 => 0.0,
        AttnMethod::Kivi { .. } | AttnMethod::GearL { .. } => {
            (kv_elems * method.kv_bytes_per_elem() + kv_elems * 2.0) / gpu.hbm_bandwidth
                + kv_elems * method.fp_dequant_ops_per_elem() / gpu.fp32_cuda_ops
                + kv_elems * method.lowrank_macs_per_elem() / gpu.fp16_tensor_macs
        }
        AttnMethod::Turbo { .. } => {
            // Unpack + (q²+z)·s, ~4 integer ops per element fused in-kernel.
            kv_elems * (2.0 + method.int_dequant_ops_per_elem()) / gpu.int_alu_ops
        }
    };

    // Two GEMVs (q·Kᵀ and P·V) at GEMV efficiency.
    let macs = 2.0 * b * hl * n * d;
    let matmul = if method.int8_matmul() {
        macs / (gpu.int8_tensor_macs * GEMV_EFFICIENCY)
    } else {
        macs / (gpu.fp16_tensor_macs * GEMV_EFFICIENCY)
    };

    let score_elems = b * hl * n;
    let softmax = if method.sas_softmax() {
        score_elems / gpu.sas_exp_ops + score_elems * SOFTMAX_BOOKKEEPING_SAS / gpu.int_alu_ops
    } else {
        score_elems / gpu.fp32_exp_ops + score_elems * SOFTMAX_BOOKKEEPING_FP32 / gpu.fp32_cuda_ops
    };

    let kernels = match method {
        AttnMethod::Kivi { .. } | AttnMethod::GearL { .. } => 2.0 * geom.layers as f64,
        _ => geom.layers as f64,
    };

    KernelBreakdown {
        mem,
        matmul,
        softmax,
        dequant,
        quant: 0.0,
        launch: gpu.kernel_launch * kernels,
        overlapped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    #[test]
    fn fp16_prefill_softmax_share_matches_paper() {
        // "softmax computation costs over 30% of the attention execution
        // time" — the model should land in the 20–40 % band.
        let (gpu, geom) = setup();
        let bd = prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, 8192);
        let share = bd.softmax_share();
        assert!((0.20..=0.40).contains(&share), "softmax share {share}");
    }

    #[test]
    fn turbo_prefill_speedup_in_paper_band() {
        // Figure 6: up to 1.8x prefill speedup. Accept 1.4–2.3x.
        let (gpu, geom) = setup();
        for ctx in [4096usize, 8192, 16384, 32768] {
            let base = prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, ctx).total();
            let turbo =
                prefill_latency(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, 4, ctx).total();
            let speedup = base / turbo;
            assert!(
                (1.4..=2.3).contains(&speedup),
                "ctx {ctx}: prefill speedup {speedup}"
            );
        }
    }

    #[test]
    fn turbo_decode_speedup_in_paper_band() {
        // Figure 6: up to 1.7x decode speedup. Accept 1.3–3.0x.
        let (gpu, geom) = setup();
        for ctx in [4096usize, 8192] {
            let base = decode_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, ctx).total();
            let turbo =
                decode_latency(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, 4, ctx).total();
            let speedup = base / turbo;
            assert!(
                (1.3..=3.0).contains(&speedup),
                "ctx {ctx}: decode speedup {speedup}"
            );
        }
    }

    #[test]
    fn kivi_decode_is_slower_than_fp16() {
        // Figure 6: KIVI decode < 1x because of materializing dequant.
        let (gpu, geom) = setup();
        for ctx in [4096usize, 16384] {
            let base = decode_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, ctx).total();
            let kivi = decode_latency(&gpu, &geom, AttnMethod::Kivi { bits: 4.0 }, 4, ctx).total();
            assert!(kivi > base, "ctx {ctx}: KIVI {kivi} vs FP16 {base}");
        }
    }

    #[test]
    fn gear_dequant_exceeds_kivi_dequant() {
        // Figure 1b: GEAR-L's decompression lane is the largest.
        let (gpu, geom) = setup();
        let kivi = decode_latency(&gpu, &geom, AttnMethod::Kivi { bits: 4.0 }, 4, 8192);
        let gear = decode_latency(
            &gpu,
            &geom,
            AttnMethod::GearL { bits: 4.0, rank: 4 },
            4,
            8192,
        );
        assert!(gear.dequant > kivi.dequant);
        let turbo = decode_latency(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, 4, 8192);
        assert!(turbo.dequant < kivi.dequant / 4.0);
    }

    #[test]
    fn decode_scales_linearly_with_context() {
        let (gpu, geom) = setup();
        let t1 = decode_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, 4096).total();
        let t2 = decode_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, 8192).total();
        let ratio = t2 / t1;
        assert!((1.7..=2.1).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn prefill_scales_quadratically_with_context() {
        let (gpu, geom) = setup();
        let t1 = prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 1, 8192).total();
        let t2 = prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 1, 16384).total();
        let ratio = t2 / t1;
        assert!((3.3..=4.2).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn batch_scales_both_phases_linearly() {
        let (gpu, geom) = setup();
        for m in AttnMethod::figure6_lineup() {
            let p1 = prefill_latency(&gpu, &geom, m, 1, 2048).total();
            let p8 = prefill_latency(&gpu, &geom, m, 8, 2048).total();
            assert!(p8 / p1 > 6.0, "{m}: prefill batch scaling {}", p8 / p1);
            let d1 = decode_latency(&gpu, &geom, m, 1, 2048).total();
            let d8 = decode_latency(&gpu, &geom, m, 8, 2048).total();
            assert!(d8 / d1 > 4.0, "{m}: decode batch scaling {}", d8 / d1);
        }
    }

    #[test]
    fn sas_softmax_is_much_faster_than_fp32() {
        let (gpu, geom) = setup();
        let fp = prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 4, 8192);
        let tb = prefill_latency(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, 4, 8192);
        assert!(fp.softmax > 4.0 * tb.softmax);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ctx_panics() {
        let (gpu, geom) = setup();
        prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 1, 0);
    }
}
