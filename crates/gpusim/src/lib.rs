//! # turbo-gpusim
//!
//! Analytical performance model of an NVIDIA A100-SXM-80GB running the
//! attention methods compared in the paper.
//!
//! No GPU is available in this environment, so wall-clock results
//! (Figures 1, 6 and 7a) are reproduced with a roofline-style cost model:
//! each kernel is characterized by the bytes it moves, the MACs it issues
//! per precision, its exponentiation/dequantization element operations,
//! and fixed launch overhead. The figures the paper draws — who wins,
//! by what factor, where OOM hits — are determined by exactly these
//! quantities:
//!
//! * FP16 tensor-core vs INT8 tensor-core matmul throughput (2×),
//! * FP32 CUDA-core exponentiation at ~3 % of FP16 tensor throughput
//!   (the paper's section 2.2 observation),
//! * KV-cache bytes at 16 vs 8 vs 4/3/2 bits,
//! * per-element dequantization work: none (FP16), integer (Turbo),
//!   float + low-rank (KIVI/GEAR).
//!
//! The model is calibrated so FlashAttention-FP16 prefill spends ~30 % of
//! its time in softmax (the paper's measurement) and validated in tests
//! against every qualitative claim of Figures 1/6/7a.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endtoend;
pub mod fleet;
pub mod geometry;
pub mod hw;
pub mod kernels;
pub mod memory;
pub mod method;
pub mod replica;
pub mod sched;
pub mod serving;
pub mod shard;
pub mod throughput;

pub use endtoend::{generation_breakdown, EndToEndBreakdown};
pub use fleet::{
    run_fleet, run_fleet_on, Autoscaler, AutoscalerConfig, BurstRecovery, EpochReport,
    FleetConfig, FleetStats, FleetWorkloadSpec, ScaleDecision,
};
pub use geometry::ModelGeometry;
pub use hw::GpuSpec;
pub use kernels::{decode_latency, prefill_latency, KernelBreakdown};
pub use memory::{fits_in_memory, memory_usage};
pub use method::AttnMethod;
pub use replica::{
    run_replica_set, run_replica_set_on, BreakerConfig, BreakerState, CircuitBreaker,
    ReplicaSetConfig, ReplicaSetStats,
};
pub use sched::{
    simulate_serving_continuous, simulate_serving_continuous_on,
    simulate_serving_continuous_paged, simulate_serving_continuous_streamed,
    simulate_serving_pipelined, simulate_serving_pipelined_on, Queue, Scheduler, SchedulerConfig,
    SchedulerStats, StepRecord, TokenEvent,
};
pub use serving::{
    simulate_serving, simulate_serving_batched, simulate_serving_batched_on,
    simulate_serving_robust, simulate_serving_robust_paged, uniform_workload, RequestSpec,
    RobustServingStats, ServingPolicy, ServingStats, WorkloadSpec,
};
pub use shard::{
    run_sharded_episode, run_sharded_episode_on, ShardMap, ShardRange, ShardedConfig,
    ShardedStats, SHARD_MAP_MAGIC, SHARD_MAP_VERSION,
};
pub use throughput::{max_throughput, throughput};
