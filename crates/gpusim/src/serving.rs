//! Continuous-batching serving simulator.
//!
//! Figure 7a's "maximum throughput" is an offline number; production
//! serving cares about *sustained load*: requests arrive over time, the
//! engine interleaves prefills with batched decode steps, and the KV-cache
//! footprint decides how many sequences fit in HBM at once. This module
//! runs that loop as a discrete-event simulation on top of the kernel
//! cost model, so the end-to-end effect of KV compression — bigger live
//! batches, fewer admission stalls, lower tail latency — can be measured
//! per attention method.
//!
//! Two engines live here and in [`crate::sched`]:
//!
//! * [`simulate_serving`] — the *serialized* reference engine: one
//!   request prefills at a time (prefill preempts decode), all admitted
//!   sequences decode together, one token per step, and a request is
//!   admitted only if weights + every live sequence's *maximum* KV
//!   footprint fit in usable HBM. Simple, and the baseline the paper
//!   figures are read against.
//! * [`simulate_serving_robust`] and everything above it (paged pools,
//!   replicas, the fleet) now run on the **continuous-batching
//!   scheduler** in [`crate::sched`]: chunked prefill interleaved with
//!   decode, budgeted batch re-formation every step, a
//!   `waiting_served_ratio` admission policy, and streaming token
//!   delivery. The `ServingPolicy` carries the scheduler budgets in
//!   [`ServingPolicy::sched`].

use crate::endtoend::linear_time;
use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::kernels::{decode_latency, prefill_latency};
use crate::memory::fits_in_memory;
use crate::method::AttnMethod;
use turbo_kvcache::{PagedKvPool, SeqId};
use turbo_robust::HealthStats;

/// One inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestSpec {
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens to generate.
    pub gen: usize,
}

/// Aggregate results of a serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingStats {
    /// Requests completed.
    pub completed: usize,
    /// Wall-clock time when the last request finished.
    pub makespan: f64,
    /// Generated tokens per second of makespan.
    pub throughput: f64,
    /// Mean end-to-end request latency (arrival → last token).
    pub mean_latency: f64,
    /// Median end-to-end latency.
    pub p50_latency: f64,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: f64,
    /// Mean time spent waiting for admission (memory/queue).
    pub mean_queue_time: f64,
    /// Largest number of sequences decoding together.
    pub peak_batch: usize,
}

#[derive(Clone, Debug)]
struct LiveSeq {
    req: usize,
    generated: usize,
    ctx: usize,
}

/// Simulates serving `requests` (sorted by arrival) with continuous
/// batching on the given device/model/method.
///
/// # Panics
///
/// Panics if `requests` is empty, unsorted by arrival, or contains a
/// request that can never fit in memory alone.
pub fn simulate_serving(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    simulate_serving_impl(gpu, geom, method, requests, None)
}

/// Batched-decode variant of [`simulate_serving`] on the global runtime:
/// each decode step groups the in-flight sequences and evaluates their
/// per-sequence kernel latencies as pooled tasks (the continuous-batching
/// shape — one task per sequence, step time = the slowest member), instead
/// of collapsing the batch to its longest context up front.
///
/// Because the kernel cost model is monotone in context length, the step
/// time equals the plain simulator's and the trajectory is identical —
/// the test suite pins `simulate_serving_batched == simulate_serving` at
/// 1, 2, and N workers.
///
/// # Panics
///
/// As [`simulate_serving`].
pub fn simulate_serving_batched(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    simulate_serving_batched_on(turbo_runtime::global(), gpu, geom, method, requests)
}

/// As [`simulate_serving_batched`], but on an explicit runtime
/// (worker-count equivalence tests).
pub fn simulate_serving_batched_on(
    rt: &turbo_runtime::Runtime,
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    simulate_serving_impl(gpu, geom, method, requests, Some(rt))
}

fn simulate_serving_impl(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    rt: Option<&turbo_runtime::Runtime>,
) -> ServingStats {
    assert!(!requests.is_empty(), "no requests to serve");
    for w in requests.windows(2) {
        assert!(
            w[0].arrival <= w[1].arrival,
            "requests must be sorted by arrival"
        );
    }
    for (i, r) in requests.iter().enumerate() {
        assert!(
            fits_in_memory(gpu, geom, method, 1, r.prompt + r.gen),
            "request {i} cannot fit in memory even alone"
        );
    }

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut waiting: Vec<usize> = Vec::new();
    let mut live: Vec<LiveSeq> = Vec::new();
    let mut admit_time = vec![0.0f64; requests.len()];
    let mut finish_time = vec![f64::NAN; requests.len()];
    let mut peak_batch = 0usize;

    // Total final context of every live sequence must fit alongside the
    // weights; new admissions reserve their full footprint up front.
    let reserved_tokens = |live: &[LiveSeq], extra: usize| -> usize {
        live.iter()
            .map(|s| requests[s.req].prompt + requests[s.req].gen)
            .sum::<usize>()
            + extra
    };
    let fits = |total_tokens: usize| -> bool {
        // Model the reservation as one batch-1 "sequence" of that many
        // tokens (weights + KV + activations).
        fits_in_memory(gpu, geom, method, 1, total_tokens.max(1))
    };

    loop {
        // Ingest arrivals up to `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            waiting.push(next_arrival);
            next_arrival += 1;
        }

        // Admit + prefill one waiting request if it fits.
        if let Some(pos) = waiting
            .iter()
            .position(|&r| fits(reserved_tokens(&live, requests[r].prompt + requests[r].gen)))
        {
            let r = waiting.remove(pos);
            admit_time[r] = now;
            let spec = requests[r];
            if spec.gen == 0 {
                // Nothing to generate: complete at admission with zero
                // tokens. (The decode loop increments `generated` before
                // its completion check, so letting a `gen: 0` request
                // reach it minted one spurious token.)
                finish_time[r] = now;
                continue;
            }
            now += prefill_latency(gpu, geom, method, 1, spec.prompt).total()
                + linear_time(gpu, geom, 1, spec.prompt);
            live.push(LiveSeq {
                req: r,
                generated: 0,
                ctx: spec.prompt,
            });
            peak_batch = peak_batch.max(live.len());
            continue;
        }

        if !live.is_empty() {
            // One decode step for the whole live batch.
            let batch = live.len();
            let step = match rt {
                // Batched path: one pooled task per in-flight sequence at
                // its own context; the step finishes with its slowest
                // member. The cost model is monotone in ctx, so this max
                // is bitwise the serial longest-ctx latency.
                Some(rt) => rt
                    .par_map(&live, |s| {
                        decode_latency(gpu, geom, method, batch, s.ctx).total()
                    })
                    .into_iter()
                    .fold(0.0f64, f64::max),
                None => {
                    // `live` is non-empty here, but fold instead of
                    // `max().unwrap()` per the no-panic discipline.
                    let max_ctx = live.iter().map(|s| s.ctx).fold(0, usize::max);
                    decode_latency(gpu, geom, method, batch, max_ctx).total()
                }
            };
            now += step + linear_time(gpu, geom, batch, 1);
            let mut still_live = Vec::with_capacity(live.len());
            for mut s in live.into_iter() {
                s.generated += 1;
                s.ctx += 1;
                if s.generated >= requests[s.req].gen {
                    finish_time[s.req] = now;
                } else {
                    still_live.push(s);
                }
            }
            live = still_live;
            continue;
        }

        // Idle: jump to the next arrival, or finish.
        if next_arrival < requests.len() {
            now = now.max(requests[next_arrival].arrival);
            continue;
        }
        break;
    }

    // Statistics.
    let mut latencies: Vec<f64> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| finish_time[i] - r.arrival)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let total_gen: usize = requests.iter().map(|r| r.gen).sum();
    let makespan = finish_time.iter().fold(0.0f64, |m, &t| m.max(t));
    // Nearest-rank, shared with `robust::slo` so every layer of the
    // stack quotes the same percentile definition.
    let pct = |p: f64| -> f64 { turbo_robust::percentile(&latencies, p) };
    let queue: f64 = requests
        .iter()
        .enumerate()
        .map(|(i, r)| admit_time[i] - r.arrival)
        .sum::<f64>()
        / requests.len() as f64;

    ServingStats {
        completed: requests.len(),
        makespan,
        throughput: if makespan > 0.0 {
            total_gen as f64 / makespan
        } else {
            0.0
        },
        mean_latency: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_latency: pct(0.5),
        p95_latency: pct(0.95),
        mean_queue_time: queue,
        peak_batch,
    }
}

/// Operational policy of the fault-tolerant serving loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingPolicy {
    /// Per-request deadline in seconds from arrival. A waiting request
    /// past its deadline is rejected; a decoding one is truncated.
    /// `f64::INFINITY` disables deadlines.
    pub deadline: f64,
    /// Base backoff in seconds after a failed admission attempt; doubles
    /// per attempt. Must be positive.
    pub admission_backoff: f64,
    /// Failed admission attempts tolerated before the request is rejected.
    pub max_admission_retries: u32,
    /// If set and the method is [`AttnMethod::Turbo`], the serving loop
    /// may demote the resident KV bit width to this value when admission
    /// fails — trading accuracy for capacity instead of rejecting load.
    pub degrade_bits: Option<f64>,
    /// Fraction of HBM actually usable (simulated memory pressure from
    /// co-tenants/fragmentation). `1.0` = the whole device.
    pub hbm_usable_fraction: f64,
    /// Batch-formation budgets of the continuous-batching scheduler
    /// (chunk size, per-step prefill-token budget, total-token budget,
    /// `max_waiting_tokens`, `waiting_served_ratio`, batch-size cap).
    pub sched: crate::sched::SchedulerConfig,
}

impl Default for ServingPolicy {
    /// No deadlines, no pressure, no demotion; retry for a while before
    /// rejecting; default scheduler budgets.
    fn default() -> Self {
        Self {
            deadline: f64::INFINITY,
            admission_backoff: 0.25,
            max_admission_retries: 16,
            degrade_bits: None,
            hbm_usable_fraction: 1.0,
            sched: crate::sched::SchedulerConfig::default(),
        }
    }
}

/// Results of a fault-tolerant serving run.
///
/// Requests partition into `completed + truncated + rejected`; latency
/// statistics cover the requests that produced output (completed and
/// truncated).
#[derive(Clone, Debug, PartialEq)]
pub struct RobustServingStats {
    /// Requests that generated every token before any deadline.
    pub completed: usize,
    /// Requests cut off mid-generation by their deadline.
    pub truncated: usize,
    /// Requests never admitted (deadline, retry budget, or infeasible).
    pub rejected: usize,
    /// Deadline events (truncations + waiting-past-deadline rejections).
    pub deadline_misses: usize,
    /// Failed admission attempts across all requests.
    pub admission_retries: u64,
    /// Bit-width demotions performed under memory pressure (0 or 1).
    pub demotions: u64,
    /// Tokens actually generated (including partial output of truncated
    /// requests).
    pub generated_tokens: usize,
    /// Wall-clock time when the last served request finished.
    pub makespan: f64,
    /// Generated tokens per second of makespan (0 if nothing was served).
    pub throughput: f64,
    /// Mean end-to-end latency of served requests.
    pub mean_latency: f64,
    /// 95th-percentile end-to-end latency of served requests.
    pub p95_latency: f64,
    /// Mean admission wait of served requests.
    pub mean_queue_time: f64,
    /// Largest number of sequences decoding together.
    pub peak_batch: usize,
    /// End-to-end latency of every served request (completed and
    /// truncated), ascending. The fleet control plane feeds these into
    /// its `SloTracker` windows; aggregates above are derived from this
    /// same vector.
    pub latencies: Vec<f64>,
}

/// Fault-tolerant serving on the **continuous-batching scheduler**
/// ([`crate::sched`]): chunked prefills interleave with decode under the
/// [`ServingPolicy::sched`] budgets, infeasible or unlucky requests are
/// *rejected* instead of panicking or stalling the queue forever,
/// deadlines bound every request's latency, admission failures back off
/// exponentially, and — when the policy allows — the KV cache is demoted
/// to a lower bit width under memory pressure rather than shedding load.
/// Every intervention is recorded in `health` (when given) and mirrored
/// in the returned stats.
///
/// This is `.serving` of [`crate::sched::simulate_serving_continuous`];
/// use that entry point directly for per-step scheduling telemetry or
/// streamed tokens.
///
/// # Panics
///
/// Panics only on caller errors: empty/unsorted `requests`, a
/// non-positive backoff/HBM fraction in `policy`, or degenerate
/// scheduler budgets.
pub fn simulate_serving_robust(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    health: Option<&HealthStats>,
) -> RobustServingStats {
    simulate_serving_robust_impl(gpu, geom, method, requests, policy, None, health)
}

/// As [`simulate_serving_robust`], but every admitted request carries a
/// real [`PagedKvPool`] sequence forked off `prefix`, and all cache
/// traffic goes through the pool's **non-panicking** `try_*` APIs:
///
/// * admission forks the shared prefix — a fork error (unknown or
///   corrupt prefix, dangling page) *rejects* the request before any
///   prefill cost is paid, it does not abort the engine;
/// * every decode step appends that request's K/V row — an append error
///   rejects the request mid-flight, releases its sequence, and zeroes
///   its output, leaving the pool and the ledger consistent;
/// * finish/truncation releases the fork, so a healthy run returns the
///   pool holding exactly the prefix it started with.
///
/// With a healthy pool the simulated trajectory (and every stat) is
/// identical to [`simulate_serving_robust`] — the pool only adds state,
/// never time.
///
/// # Panics
///
/// As [`simulate_serving_robust`] — caller errors only. Cache faults
/// never panic here; that is the point.
#[allow(clippy::too_many_arguments)]
pub fn simulate_serving_robust_paged(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    pool: &mut PagedKvPool,
    prefix: SeqId,
    health: Option<&HealthStats>,
) -> RobustServingStats {
    simulate_serving_robust_impl(gpu, geom, method, requests, policy, Some((pool, prefix)), health)
}

fn simulate_serving_robust_impl(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    paged: Option<(&mut PagedKvPool, SeqId)>,
    health: Option<&HealthStats>,
) -> RobustServingStats {
    crate::sched::run_continuous(gpu, geom, method, requests, policy, paged, None, health, None)
        .serving
}

/// A fully seed-deterministic open-loop workload description.
///
/// The spec is plain `Copy` data with **no interior state**: calling
/// [`WorkloadSpec::requests`] any number of times, from any thread or
/// harness, yields the identical request vector — which is what lets the
/// chaos soak harness and the replica set share one workload per seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of requests.
    pub n: usize,
    /// Mean arrival rate in requests per second.
    pub rate: f64,
    /// Prompt length in tokens (fixed across requests).
    pub prompt: usize,
    /// Tokens to generate per request (fixed across requests).
    pub gen: usize,
    /// RNG seed for the inter-arrival gaps.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Materializes the request vector: `n` requests with inverse-CDF
    /// exponential inter-arrival gaps around `1/rate` seconds, sorted by
    /// arrival. Pure function of the spec.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `rate <= 0`.
    pub fn requests(&self) -> Vec<RequestSpec> {
        assert!(self.n > 0 && self.rate > 0.0, "need a positive workload");
        let mut rng = turbo_tensor::TensorRng::new(self.seed);
        let mut t = 0.0f64;
        (0..self.n)
            .map(|_| {
                // Inverse-CDF exponential gap from a uniform draw.
                let u: f64 = rng.uniform_value(1e-6, 1.0) as f64;
                t += -u.ln() / self.rate;
                RequestSpec {
                    arrival: t,
                    prompt: self.prompt,
                    gen: self.gen,
                }
            })
            .collect()
    }
}

/// Generates a deterministic open-loop workload: `n` requests with
/// exponential-ish inter-arrival gaps around `1/rate` seconds and fixed
/// prompt/gen sizes. Thin wrapper over [`WorkloadSpec::requests`].
pub fn uniform_workload(
    n: usize,
    rate: f64,
    prompt: usize,
    gen: usize,
    seed: u64,
) -> Vec<RequestSpec> {
    WorkloadSpec {
        n,
        rate,
        prompt,
        gen,
        seed,
    }
    .requests()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_robust::HealthEvent;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    fn workload() -> Vec<RequestSpec> {
        uniform_workload(40, 2.0, 1024, 64, 99)
    }

    #[test]
    fn all_requests_complete() {
        let (gpu, geom) = setup();
        let stats = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        assert_eq!(stats.completed, 40);
        assert!(stats.makespan > 0.0);
        assert!(stats.throughput > 0.0);
        assert!(stats.p95_latency >= stats.p50_latency);
        assert!(stats.mean_queue_time >= 0.0);
    }

    #[test]
    fn turbo_sustains_load_better_than_fp16() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let turbo = simulate_serving(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, &reqs);
        assert!(
            turbo.mean_latency < fp16.mean_latency,
            "turbo {} vs fp16 {}",
            turbo.mean_latency,
            fp16.mean_latency
        );
        assert!(turbo.makespan <= fp16.makespan * 1.01);
    }

    #[test]
    fn kivi_pays_dequant_under_load() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let kivi = simulate_serving(&gpu, &geom, AttnMethod::Kivi { bits: 4.0 }, &reqs);
        // KIVI decodes slower per step; under this (memory-light) load it
        // loses on latency despite the smaller cache.
        assert!(kivi.mean_latency > fp16.mean_latency);
    }

    #[test]
    fn compression_raises_peak_batch_under_memory_pressure() {
        let (gpu, geom) = setup();
        // Bursty long-context load: all requests arrive nearly at once, so
        // peak concurrency is limited by memory, not arrival pacing. FP16
        // fits ~7 live 8k sequences next to the weights; the compressed
        // cache fits all 12.
        let reqs = uniform_workload(12, 50.0, 8192, 32, 7);
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let turbo = simulate_serving(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, &reqs);
        assert!(
            turbo.peak_batch > fp16.peak_batch,
            "turbo {} vs fp16 {}",
            turbo.peak_batch,
            fp16.peak_batch
        );
        assert!(turbo.mean_queue_time <= fp16.mean_queue_time + 1e-9);
    }

    #[test]
    fn deterministic_workload_and_simulation() {
        let (gpu, geom) = setup();
        let a = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        let b = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        assert_eq!(a, b);
    }

    #[test]
    fn batched_decode_matches_plain_simulation_at_any_worker_count() {
        let (gpu, geom) = setup();
        let reqs = workload();
        for method in [AttnMethod::FlashFp16, AttnMethod::Turbo { kv_bits: 3.0 }] {
            let plain = simulate_serving(&gpu, &geom, method, &reqs);
            let batched = simulate_serving_batched(&gpu, &geom, method, &reqs);
            assert_eq!(plain, batched);
            for workers in [1usize, 2, 8] {
                let rt = turbo_runtime::Runtime::with_workers(workers);
                let out = simulate_serving_batched_on(&rt, &gpu, &geom, method, &reqs);
                assert_eq!(plain, out, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn light_load_has_no_queueing() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(5, 0.05, 512, 16, 3); // one every ~20s
        let stats = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert!(stats.mean_queue_time < 1e-9);
        assert_eq!(stats.peak_batch, 1);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_panic() {
        let (gpu, geom) = setup();
        let reqs = vec![
            RequestSpec {
                arrival: 1.0,
                prompt: 128,
                gen: 4,
            },
            RequestSpec {
                arrival: 0.5,
                prompt: 128,
                gen: 4,
            },
        ];
        simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn impossible_request_panics() {
        let (gpu, geom) = setup();
        let reqs = vec![RequestSpec {
            arrival: 0.0,
            prompt: 500_000,
            gen: 8,
        }];
        simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
    }

    #[test]
    fn robust_default_policy_completes_everything_cleanly() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let health = HealthStats::new();
        let robust = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            Some(&health),
        );
        assert_eq!(robust.completed, reqs.len());
        assert_eq!(robust.rejected, 0);
        assert_eq!(robust.truncated, 0);
        assert_eq!(robust.deadline_misses, 0);
        assert_eq!(
            robust.generated_tokens,
            reqs.iter().map(|r| r.gen).sum::<usize>()
        );
        assert!(robust.makespan > 0.0);
        assert!(robust.mean_queue_time >= 0.0);
        assert!(health.is_clean(), "clean run must record nothing");
    }

    #[test]
    fn long_prefill_never_stalls_decoders_for_a_full_prompt() {
        // Eight short requests decode while a 16k-token prompt prefills.
        // The serialized engine freezes every decoder for the entire
        // prefill; the scheduler bounds any single stall by one chunk,
        // so no engine step may take as long as the monolithic prefill.
        let (gpu, geom) = setup();
        let mut reqs = vec![
            RequestSpec {
                arrival: 0.0,
                prompt: 256,
                gen: 96,
            };
            8
        ];
        reqs.push(RequestSpec {
            arrival: 0.0,
            prompt: 16384,
            gen: 8,
        });
        let full_stall = prefill_latency(&gpu, &geom, AttnMethod::FlashFp16, 1, 16384).total()
            + linear_time(&gpu, &geom, 1, 16384);
        let stats = crate::sched::simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            None,
        );
        assert_eq!(stats.serving.completed, reqs.len());
        for s in &stats.steps {
            assert!(
                s.duration < full_stall,
                "step {} ran {}s — a serialized-prefill-sized stall ({}s)",
                s.index,
                s.duration,
                full_stall
            );
        }
        assert!(
            stats
                .steps
                .iter()
                .any(|s| s.prefill_tokens > 0 && s.decode_batch > 0),
            "decoders must make progress during the long prefill"
        );
    }

    #[test]
    fn gen_zero_completes_at_admission_with_zero_tokens() {
        let (gpu, geom) = setup();
        // Mix zero-length generations between normal requests; the
        // ledger must balance and only real generations mint tokens.
        let mut reqs = uniform_workload(12, 4.0, 256, 8, 5);
        for r in reqs.iter_mut().step_by(3) {
            r.gen = 0;
        }
        let expect_tokens: usize = reqs.iter().map(|r| r.gen).sum();
        let health = HealthStats::new();
        let robust = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            Some(&health),
        );
        assert_eq!(
            robust.completed + robust.truncated + robust.rejected,
            reqs.len()
        );
        assert_eq!(robust.completed, reqs.len(), "gen:0 completes immediately");
        assert_eq!(
            robust.generated_tokens, expect_tokens,
            "zero tokens attributed to gen:0 requests"
        );
        assert!(health.is_clean());
        // The plain engine agrees on the token count.
        let plain = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert_eq!(plain.completed, reqs.len());
        assert!(
            (plain.throughput * plain.makespan - expect_tokens as f64).abs() < 1e-6,
            "plain engine attributes exactly the requested tokens"
        );
    }

    #[test]
    fn serving_percentiles_agree_with_slo_tracker_definition() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let robust = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            None,
        );
        // `latencies` is ascending; the quoted p95 is the shared
        // nearest-rank helper applied to that same vector.
        assert_eq!(
            robust.p95_latency,
            turbo_robust::percentile(&robust.latencies, 0.95)
        );
        let plain = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert!(plain.p95_latency >= plain.p50_latency);
    }

    #[test]
    fn tight_deadlines_truncate_or_reject_instead_of_stalling() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let health = HealthStats::new();
        let policy = ServingPolicy {
            deadline: 2.0,
            ..ServingPolicy::default()
        };
        let stats = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy,
            Some(&health),
        );
        assert_eq!(
            stats.completed + stats.truncated + stats.rejected,
            reqs.len()
        );
        assert!(stats.deadline_misses > 0, "2s deadline must bite");
        assert_eq!(
            health.count(HealthEvent::DeadlineMiss),
            stats.deadline_misses as u64
        );
        // Every served request respected (approximately) its deadline:
        // p95 is bounded by deadline + one decode step, not the unbounded
        // queueing latency of the plain simulator.
        let plain = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert!(stats.p95_latency <= plain.p95_latency);
    }

    #[test]
    fn pressure_demotion_serves_load_that_would_otherwise_be_rejected() {
        let (gpu, geom) = setup();
        // Find an HBM pressure level where a single long request fits at
        // 2-bit resident KV but not at 4-bit.
        let long = RequestSpec {
            arrival: 0.0,
            prompt: 8192,
            gen: 32,
        };
        let tokens = long.prompt + long.gen;
        let fraction = (30..=95)
            .map(|p| p as f64 / 100.0)
            .find(|f| {
                let mut g = gpu;
                g.hbm_capacity *= f;
                !fits_in_memory(&g, &geom, AttnMethod::Turbo { kv_bits: 4.0 }, 1, tokens)
                    && fits_in_memory(&g, &geom, AttnMethod::Turbo { kv_bits: 2.0 }, 1, tokens)
            })
            .expect("some pressure level separates 4-bit from 2-bit");
        let reqs = uniform_workload(6, 10.0, long.prompt, long.gen, 11);

        // Exponential backoff from 0.25s covers ~17 minutes of simulated
        // time in 12 attempts — enough for the whole drained queue.
        let rigid = ServingPolicy {
            hbm_usable_fraction: fraction,
            max_admission_retries: 12,
            ..ServingPolicy::default()
        };
        let flexible = ServingPolicy {
            degrade_bits: Some(2.0),
            ..rigid
        };
        let method = AttnMethod::Turbo { kv_bits: 4.0 };
        let health = HealthStats::new();
        let without = simulate_serving_robust(&gpu, &geom, method, &reqs, &rigid, None);
        let with =
            simulate_serving_robust(&gpu, &geom, method, &reqs, &flexible, Some(&health));
        assert_eq!(without.completed, 0, "4-bit cannot fit any request");
        assert_eq!(without.rejected, reqs.len());
        assert_eq!(with.demotions, 1, "one global demotion to 2-bit");
        assert_eq!(health.count(HealthEvent::PressureDemotion), 1);
        assert_eq!(with.completed, reqs.len(), "2-bit serves everything");
        assert_eq!(with.rejected, 0);
    }

    #[test]
    fn robust_rejects_infeasible_request_without_panicking() {
        let (gpu, geom) = setup();
        let reqs = vec![RequestSpec {
            arrival: 0.0,
            prompt: 500_000,
            gen: 8,
        }];
        let health = HealthStats::new();
        let stats = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            Some(&health),
        );
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(health.count(HealthEvent::RequestRejected), 1);
        assert_eq!(stats.throughput, 0.0);
    }

    fn prefix_pool(tokens: usize) -> (PagedKvPool, SeqId) {
        let mut pool = PagedKvPool::new(
            8,
            turbo_kvcache::KvCacheConfig {
                group_size: 16,
                buffer_capacity: 16,
                ..turbo_kvcache::KvCacheConfig::default()
            },
        );
        let prefix = pool.create_sequence();
        for t in 0..tokens {
            let row: Vec<f32> = (0..8).map(|c| ((t * 13 + c) % 89) as f32 * 1e-2).collect();
            pool.try_append(prefix, &row, &row).expect("prefix prefill");
        }
        (pool, prefix)
    }

    #[test]
    fn paged_healthy_run_matches_unpooled_and_leaks_nothing() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let unpooled = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            None,
        );
        let (mut pool, prefix) = prefix_pool(32);
        let health = HealthStats::new();
        let paged = simulate_serving_robust_paged(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            &mut pool,
            prefix,
            Some(&health),
        );
        // The pool only adds state, never time: identical stats.
        assert_eq!(paged, unpooled);
        assert!(health.is_clean(), "healthy pool records nothing");
        // Every fork was released on finish — nothing leaked.
        assert_eq!(pool.num_sequences(), 1, "only the prefix survives");
        assert_eq!(pool.try_seq_len(prefix).expect("prefix survives"), 32);
    }

    #[test]
    fn poisoned_prefix_cache_rejects_requests_instead_of_panicking() {
        let (gpu, geom) = setup();
        let reqs = workload();
        // Poison the serving cache: the prefix sequence is gone (the same
        // degradation covers any CacheError a fork can hit — unknown
        // sequence, dangling page). The old panicking `fork` wrapper
        // would have aborted the replica right here.
        let (mut pool, prefix) = prefix_pool(32);
        pool.try_release(prefix).expect("release prefix");
        let health = HealthStats::new();
        let stats = simulate_serving_robust_paged(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            &mut pool,
            prefix,
            Some(&health),
        );
        assert_eq!(stats.rejected, reqs.len(), "every admission degrades");
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.generated_tokens, 0);
        assert_eq!(
            health.count(HealthEvent::RequestRejected),
            reqs.len() as u64
        );
    }

    #[test]
    fn robust_simulation_is_deterministic() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let policy = ServingPolicy {
            deadline: 5.0,
            hbm_usable_fraction: 0.9,
            ..ServingPolicy::default()
        };
        let a =
            simulate_serving_robust(&gpu, &geom, AttnMethod::FlashFp16, &reqs, &policy, None);
        let b =
            simulate_serving_robust(&gpu, &geom, AttnMethod::FlashFp16, &reqs, &policy, None);
        assert_eq!(a, b);
    }
}
