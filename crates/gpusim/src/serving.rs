//! Continuous-batching serving simulator.
//!
//! Figure 7a's "maximum throughput" is an offline number; production
//! serving cares about *sustained load*: requests arrive over time, the
//! engine interleaves prefills with batched decode steps, and the KV-cache
//! footprint decides how many sequences fit in HBM at once. This module
//! runs that loop as a discrete-event simulation on top of the kernel
//! cost model, so the end-to-end effect of KV compression — bigger live
//! batches, fewer admission stalls, lower tail latency — can be measured
//! per attention method.
//!
//! The engine model follows vLLM-style continuous batching:
//!
//! * one request prefills at a time (prefill preempts decode),
//! * all admitted sequences decode together, one token per step,
//! * a request is admitted only if weights + every live sequence's
//!   *maximum* KV footprint fit in usable HBM.

use crate::endtoend::linear_time;
use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::kernels::{decode_latency, prefill_latency};
use crate::memory::fits_in_memory;
use crate::method::AttnMethod;
use turbo_kvcache::{PagedKvPool, SeqId};
use turbo_robust::{HealthEvent, HealthStats};

/// One inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestSpec {
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens to generate.
    pub gen: usize,
}

/// Aggregate results of a serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingStats {
    /// Requests completed.
    pub completed: usize,
    /// Wall-clock time when the last request finished.
    pub makespan: f64,
    /// Generated tokens per second of makespan.
    pub throughput: f64,
    /// Mean end-to-end request latency (arrival → last token).
    pub mean_latency: f64,
    /// Median end-to-end latency.
    pub p50_latency: f64,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: f64,
    /// Mean time spent waiting for admission (memory/queue).
    pub mean_queue_time: f64,
    /// Largest number of sequences decoding together.
    pub peak_batch: usize,
}

#[derive(Clone, Debug)]
struct LiveSeq {
    req: usize,
    generated: usize,
    ctx: usize,
}

/// Simulates serving `requests` (sorted by arrival) with continuous
/// batching on the given device/model/method.
///
/// # Panics
///
/// Panics if `requests` is empty, unsorted by arrival, or contains a
/// request that can never fit in memory alone.
pub fn simulate_serving(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    simulate_serving_impl(gpu, geom, method, requests, None)
}

/// Batched-decode variant of [`simulate_serving`] on the global runtime:
/// each decode step groups the in-flight sequences and evaluates their
/// per-sequence kernel latencies as pooled tasks (the continuous-batching
/// shape — one task per sequence, step time = the slowest member), instead
/// of collapsing the batch to its longest context up front.
///
/// Because the kernel cost model is monotone in context length, the step
/// time equals the plain simulator's and the trajectory is identical —
/// the test suite pins `simulate_serving_batched == simulate_serving` at
/// 1, 2, and N workers.
///
/// # Panics
///
/// As [`simulate_serving`].
pub fn simulate_serving_batched(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    simulate_serving_batched_on(turbo_runtime::global(), gpu, geom, method, requests)
}

/// As [`simulate_serving_batched`], but on an explicit runtime
/// (worker-count equivalence tests).
pub fn simulate_serving_batched_on(
    rt: &turbo_runtime::Runtime,
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    simulate_serving_impl(gpu, geom, method, requests, Some(rt))
}

fn simulate_serving_impl(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    rt: Option<&turbo_runtime::Runtime>,
) -> ServingStats {
    assert!(!requests.is_empty(), "no requests to serve");
    for w in requests.windows(2) {
        assert!(
            w[0].arrival <= w[1].arrival,
            "requests must be sorted by arrival"
        );
    }
    for (i, r) in requests.iter().enumerate() {
        assert!(
            fits_in_memory(gpu, geom, method, 1, r.prompt + r.gen),
            "request {i} cannot fit in memory even alone"
        );
    }

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut waiting: Vec<usize> = Vec::new();
    let mut live: Vec<LiveSeq> = Vec::new();
    let mut admit_time = vec![0.0f64; requests.len()];
    let mut finish_time = vec![f64::NAN; requests.len()];
    let mut peak_batch = 0usize;

    // Total final context of every live sequence must fit alongside the
    // weights; new admissions reserve their full footprint up front.
    let reserved_tokens = |live: &[LiveSeq], extra: usize| -> usize {
        live.iter()
            .map(|s| requests[s.req].prompt + requests[s.req].gen)
            .sum::<usize>()
            + extra
    };
    let fits = |total_tokens: usize| -> bool {
        // Model the reservation as one batch-1 "sequence" of that many
        // tokens (weights + KV + activations).
        fits_in_memory(gpu, geom, method, 1, total_tokens.max(1))
    };

    loop {
        // Ingest arrivals up to `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            waiting.push(next_arrival);
            next_arrival += 1;
        }

        // Admit + prefill one waiting request if it fits.
        if let Some(pos) = waiting
            .iter()
            .position(|&r| fits(reserved_tokens(&live, requests[r].prompt + requests[r].gen)))
        {
            let r = waiting.remove(pos);
            admit_time[r] = now;
            let spec = requests[r];
            now += prefill_latency(gpu, geom, method, 1, spec.prompt).total()
                + linear_time(gpu, geom, 1, spec.prompt);
            live.push(LiveSeq {
                req: r,
                generated: 0,
                ctx: spec.prompt,
            });
            peak_batch = peak_batch.max(live.len());
            continue;
        }

        if !live.is_empty() {
            // One decode step for the whole live batch.
            let batch = live.len();
            let step = match rt {
                // Batched path: one pooled task per in-flight sequence at
                // its own context; the step finishes with its slowest
                // member. The cost model is monotone in ctx, so this max
                // is bitwise the serial longest-ctx latency.
                Some(rt) => rt
                    .par_map(&live, |s| {
                        decode_latency(gpu, geom, method, batch, s.ctx).total()
                    })
                    .into_iter()
                    .fold(0.0f64, f64::max),
                None => {
                    // `live` is non-empty here, but fold instead of
                    // `max().unwrap()` per the no-panic discipline.
                    let max_ctx = live.iter().map(|s| s.ctx).fold(0, usize::max);
                    decode_latency(gpu, geom, method, batch, max_ctx).total()
                }
            };
            now += step + linear_time(gpu, geom, batch, 1);
            let mut still_live = Vec::with_capacity(live.len());
            for mut s in live.into_iter() {
                s.generated += 1;
                s.ctx += 1;
                if s.generated >= requests[s.req].gen {
                    finish_time[s.req] = now;
                } else {
                    still_live.push(s);
                }
            }
            live = still_live;
            continue;
        }

        // Idle: jump to the next arrival, or finish.
        if next_arrival < requests.len() {
            now = now.max(requests[next_arrival].arrival);
            continue;
        }
        break;
    }

    // Statistics.
    let mut latencies: Vec<f64> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| finish_time[i] - r.arrival)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let total_gen: usize = requests.iter().map(|r| r.gen).sum();
    let makespan = finish_time.iter().fold(0.0f64, |m, &t| m.max(t));
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let queue: f64 = requests
        .iter()
        .enumerate()
        .map(|(i, r)| admit_time[i] - r.arrival)
        .sum::<f64>()
        / requests.len() as f64;

    ServingStats {
        completed: requests.len(),
        makespan,
        throughput: total_gen as f64 / makespan,
        mean_latency: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_latency: pct(0.5),
        p95_latency: pct(0.95),
        mean_queue_time: queue,
        peak_batch,
    }
}

/// Operational policy of the fault-tolerant serving loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingPolicy {
    /// Per-request deadline in seconds from arrival. A waiting request
    /// past its deadline is rejected; a decoding one is truncated.
    /// `f64::INFINITY` disables deadlines.
    pub deadline: f64,
    /// Base backoff in seconds after a failed admission attempt; doubles
    /// per attempt. Must be positive.
    pub admission_backoff: f64,
    /// Failed admission attempts tolerated before the request is rejected.
    pub max_admission_retries: u32,
    /// If set and the method is [`AttnMethod::Turbo`], the serving loop
    /// may demote the resident KV bit width to this value when admission
    /// fails — trading accuracy for capacity instead of rejecting load.
    pub degrade_bits: Option<f64>,
    /// Fraction of HBM actually usable (simulated memory pressure from
    /// co-tenants/fragmentation). `1.0` = the whole device.
    pub hbm_usable_fraction: f64,
}

impl Default for ServingPolicy {
    /// No deadlines, no pressure, no demotion; retry for a while before
    /// rejecting.
    fn default() -> Self {
        Self {
            deadline: f64::INFINITY,
            admission_backoff: 0.25,
            max_admission_retries: 16,
            degrade_bits: None,
            hbm_usable_fraction: 1.0,
        }
    }
}

/// Results of a fault-tolerant serving run.
///
/// Requests partition into `completed + truncated + rejected`; latency
/// statistics cover the requests that produced output (completed and
/// truncated).
#[derive(Clone, Debug, PartialEq)]
pub struct RobustServingStats {
    /// Requests that generated every token before any deadline.
    pub completed: usize,
    /// Requests cut off mid-generation by their deadline.
    pub truncated: usize,
    /// Requests never admitted (deadline, retry budget, or infeasible).
    pub rejected: usize,
    /// Deadline events (truncations + waiting-past-deadline rejections).
    pub deadline_misses: usize,
    /// Failed admission attempts across all requests.
    pub admission_retries: u64,
    /// Bit-width demotions performed under memory pressure (0 or 1).
    pub demotions: u64,
    /// Tokens actually generated (including partial output of truncated
    /// requests).
    pub generated_tokens: usize,
    /// Wall-clock time when the last served request finished.
    pub makespan: f64,
    /// Generated tokens per second of makespan (0 if nothing was served).
    pub throughput: f64,
    /// Mean end-to-end latency of served requests.
    pub mean_latency: f64,
    /// 95th-percentile end-to-end latency of served requests.
    pub p95_latency: f64,
    /// Mean admission wait of served requests.
    pub mean_queue_time: f64,
    /// Largest number of sequences decoding together.
    pub peak_batch: usize,
    /// End-to-end latency of every served request (completed and
    /// truncated), ascending. The fleet control plane feeds these into
    /// its `SloTracker` windows; aggregates above are derived from this
    /// same vector.
    pub latencies: Vec<f64>,
}

#[derive(Clone, Copy, Debug)]
struct WaitingReq {
    req: usize,
    attempts: u32,
    next_try: f64,
}

fn record(health: Option<&HealthStats>, event: HealthEvent) {
    if let Some(h) = health {
        h.record(event);
    }
}

/// Fault-tolerant variant of [`simulate_serving`]: same continuous-batching
/// engine, but infeasible or unlucky requests are *rejected* instead of
/// panicking or stalling the queue forever, deadlines bound every
/// request's latency, admission failures back off exponentially, and —
/// when the policy allows — the KV cache is demoted to a lower bit width
/// under memory pressure rather than shedding load. Every intervention is
/// recorded in `health` (when given) and mirrored in the returned stats.
///
/// With the default policy and no memory pressure this follows the exact
/// trajectory of [`simulate_serving`].
///
/// # Panics
///
/// Panics only on caller errors: empty/unsorted `requests` or a
/// non-positive backoff/HBM fraction in `policy`.
pub fn simulate_serving_robust(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    health: Option<&HealthStats>,
) -> RobustServingStats {
    simulate_serving_robust_impl(gpu, geom, method, requests, policy, None, health)
}

/// As [`simulate_serving_robust`], but every admitted request carries a
/// real [`PagedKvPool`] sequence forked off `prefix`, and all cache
/// traffic goes through the pool's **non-panicking** `try_*` APIs:
///
/// * admission forks the shared prefix — a fork error (unknown or
///   corrupt prefix, dangling page) *rejects* the request before any
///   prefill cost is paid, it does not abort the engine;
/// * every decode step appends that request's K/V row — an append error
///   rejects the request mid-flight, releases its sequence, and zeroes
///   its output, leaving the pool and the ledger consistent;
/// * finish/truncation releases the fork, so a healthy run returns the
///   pool holding exactly the prefix it started with.
///
/// With a healthy pool the simulated trajectory (and every stat) is
/// identical to [`simulate_serving_robust`] — the pool only adds state,
/// never time.
///
/// # Panics
///
/// As [`simulate_serving_robust`] — caller errors only. Cache faults
/// never panic here; that is the point.
#[allow(clippy::too_many_arguments)]
pub fn simulate_serving_robust_paged(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    pool: &mut PagedKvPool,
    prefix: SeqId,
    health: Option<&HealthStats>,
) -> RobustServingStats {
    simulate_serving_robust_impl(gpu, geom, method, requests, policy, Some((pool, prefix)), health)
}

fn simulate_serving_robust_impl(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    mut paged: Option<(&mut PagedKvPool, SeqId)>,
    health: Option<&HealthStats>,
) -> RobustServingStats {
    assert!(!requests.is_empty(), "no requests to serve");
    for w in requests.windows(2) {
        assert!(
            w[0].arrival <= w[1].arrival,
            "requests must be sorted by arrival"
        );
    }
    assert!(
        policy.admission_backoff > 0.0,
        "admission backoff must be positive"
    );
    assert!(
        policy.hbm_usable_fraction > 0.0 && policy.hbm_usable_fraction <= 1.0,
        "usable HBM fraction must be in (0, 1]"
    );

    // Simulated memory pressure: co-tenants shrink the usable device.
    let mut gpu = *gpu;
    gpu.hbm_capacity *= policy.hbm_usable_fraction;
    let mut method = method;

    let demoted_method = |m: AttnMethod| -> Option<AttnMethod> {
        match (m, policy.degrade_bits) {
            (AttnMethod::Turbo { kv_bits }, Some(target)) if target < kv_bits => {
                Some(AttnMethod::Turbo { kv_bits: target })
            }
            _ => None,
        }
    };

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut waiting: Vec<WaitingReq> = Vec::new();
    let mut live: Vec<LiveSeq> = Vec::new();
    let mut admit_time = vec![f64::NAN; requests.len()];
    let mut finish_time = vec![f64::NAN; requests.len()];
    let mut generated = vec![0usize; requests.len()];
    let mut truncated_flag = vec![false; requests.len()];
    // Paged mode: the live KV sequence backing each admitted request.
    let mut kv_of_req: Vec<Option<SeqId>> = vec![None; requests.len()];
    let mut rejected = 0usize;
    let mut deadline_misses = 0usize;
    let mut admission_retries = 0u64;
    let mut demotions = 0u64;
    let mut peak_batch = 0usize;

    let reserved_tokens = |live: &[LiveSeq], extra: usize| -> usize {
        live.iter()
            .map(|s| requests[s.req].prompt + requests[s.req].gen)
            .sum::<usize>()
            + extra
    };

    loop {
        // Ingest arrivals up to `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            waiting.push(WaitingReq {
                req: next_arrival,
                attempts: 0,
                next_try: requests[next_arrival].arrival,
            });
            next_arrival += 1;
        }

        // Shed waiting requests whose deadline already passed.
        waiting.retain(|w| {
            if now - requests[w.req].arrival > policy.deadline {
                deadline_misses += 1;
                rejected += 1;
                record(health, HealthEvent::DeadlineMiss);
                record(health, HealthEvent::RequestRejected);
                false
            } else {
                true
            }
        });

        // Admission sweep: admit the first eligible request that fits;
        // count a retry (with backoff) against each eligible one that
        // doesn't.
        let mut admitted = false;
        let mut i = 0usize;
        while i < waiting.len() {
            let w = waiting[i];
            if w.next_try > now {
                i += 1;
                continue;
            }
            let spec = requests[w.req];
            let footprint = |m: AttnMethod, live: &[LiveSeq]| {
                let total = reserved_tokens(live, spec.prompt + spec.gen);
                fits_in_memory(&gpu, geom, m, 1, total.max(1))
            };
            let mut fits_now = footprint(method, &live);
            if !fits_now {
                if let Some(lower) = demoted_method(method) {
                    // Demote the whole cache rather than shed this load.
                    if footprint(lower, &live) {
                        method = lower;
                        demotions += 1;
                        record(health, HealthEvent::PressureDemotion);
                        fits_now = true;
                    }
                }
            }
            if fits_now {
                // The KV pool is the serving hot path: forking the shared
                // prefix goes through `try_fork`, so a corrupt or missing
                // prefix degrades this admission to a rejection (the PR 1
                // ladder) instead of panicking the replica.
                let kv = match paged.as_mut() {
                    Some((pool, prefix)) => match pool.try_fork(*prefix) {
                        Ok(id) => Some(id),
                        Err(_) => {
                            waiting.remove(i);
                            rejected += 1;
                            record(health, HealthEvent::RequestRejected);
                            continue;
                        }
                    },
                    None => None,
                };
                kv_of_req[w.req] = kv;
                waiting.remove(i);
                admit_time[w.req] = now;
                now += prefill_latency(&gpu, geom, method, 1, spec.prompt).total()
                    + linear_time(&gpu, geom, 1, spec.prompt);
                live.push(LiveSeq {
                    req: w.req,
                    generated: 0,
                    ctx: spec.prompt,
                });
                peak_batch = peak_batch.max(live.len());
                admitted = true;
                break;
            }
            // Infeasible even on an idle device at the lowest width we are
            // allowed: no amount of retrying will help.
            let best = demoted_method(method).unwrap_or(method);
            let alone = fits_in_memory(&gpu, geom, best, 1, (spec.prompt + spec.gen).max(1));
            admission_retries += 1;
            record(health, HealthEvent::AdmissionRetry);
            if !alone || w.attempts >= policy.max_admission_retries {
                waiting.remove(i);
                rejected += 1;
                record(health, HealthEvent::RequestRejected);
                continue;
            }
            waiting[i].attempts += 1;
            waiting[i].next_try =
                now + policy.admission_backoff * f64::powi(2.0, w.attempts as i32);
            i += 1;
        }
        if admitted {
            continue;
        }

        if !live.is_empty() {
            // One decode step for the whole live batch at the longest ctx.
            // `live` is non-empty here, but fold instead of
            // `max().unwrap()` per the no-panic discipline.
            let batch = live.len();
            let max_ctx = live.iter().map(|s| s.ctx).fold(0, usize::max);
            now += decode_latency(&gpu, geom, method, batch, max_ctx).total()
                + linear_time(&gpu, geom, batch, 1);
            let mut still_live = Vec::with_capacity(live.len());
            for mut s in live.into_iter() {
                let req = s.req;
                // Paged mode: the step's K/V row lands in the pool through
                // `try_append`. A cache fault mid-flight rejects this one
                // request — released sequence, zeroed output — and the
                // batch keeps decoding.
                if let Some((pool, _)) = paged.as_mut() {
                    if let Some(id) = kv_of_req[s.req] {
                        let d = pool.head_dim();
                        let row: Vec<f32> = (0..d)
                            .map(|c| ((s.req * 31 + s.generated * 7 + c) % 97) as f32 * 1e-2)
                            .collect();
                        if pool.try_append(id, &row, &row).is_err() {
                            let _ = pool.try_release(id);
                            kv_of_req[s.req] = None;
                            generated[s.req] = 0;
                            rejected += 1;
                            record(health, HealthEvent::RequestRejected);
                            continue;
                        }
                    }
                }
                s.generated += 1;
                s.ctx += 1;
                generated[s.req] = s.generated;
                let done = if s.generated >= requests[s.req].gen {
                    finish_time[s.req] = now;
                    true
                } else if now - requests[s.req].arrival > policy.deadline {
                    // Out of time mid-generation: return what we have.
                    finish_time[s.req] = now;
                    truncated_flag[s.req] = true;
                    deadline_misses += 1;
                    record(health, HealthEvent::DeadlineMiss);
                    true
                } else {
                    still_live.push(s);
                    false
                };
                if done {
                    if let Some((pool, _)) = paged.as_mut() {
                        if let Some(id) = kv_of_req[req].take() {
                            let _ = pool.try_release(id);
                        }
                    }
                }
            }
            live = still_live;
            continue;
        }

        // Idle: jump to the next arrival or the earliest retry, or finish.
        let next_retry = waiting
            .iter()
            .map(|w| w.next_try)
            .fold(f64::INFINITY, f64::min);
        let next_event = if next_arrival < requests.len() {
            next_retry.min(requests[next_arrival].arrival)
        } else {
            next_retry
        };
        if next_event.is_finite() {
            now = now.max(next_event);
            continue;
        }
        break;
    }

    // Statistics over the requests that produced output.
    let served: Vec<usize> = (0..requests.len())
        .filter(|&i| finish_time[i].is_finite())
        .collect();
    let completed = served.iter().filter(|&&i| !truncated_flag[i]).count();
    let truncated = served.len() - completed;
    let generated_tokens: usize = generated.iter().sum();
    let makespan = served
        .iter()
        .map(|&i| finish_time[i])
        .fold(0.0f64, f64::max);
    let mut latencies: Vec<f64> = served
        .iter()
        .map(|&i| finish_time[i] - requests[i].arrival)
        .collect();
    latencies.sort_by(f64::total_cmp);
    let (mean_latency, p95_latency, mean_queue_time) = if latencies.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let pct_idx = ((latencies.len() as f64 - 1.0) * 0.95).round() as usize;
        let queue: f64 = served
            .iter()
            .map(|&i| admit_time[i] - requests[i].arrival)
            .sum::<f64>()
            / served.len() as f64;
        (
            latencies.iter().sum::<f64>() / latencies.len() as f64,
            latencies[pct_idx],
            queue,
        )
    };

    RobustServingStats {
        completed,
        truncated,
        rejected,
        deadline_misses,
        admission_retries,
        demotions,
        generated_tokens,
        makespan,
        throughput: if makespan > 0.0 {
            generated_tokens as f64 / makespan
        } else {
            0.0
        },
        mean_latency,
        p95_latency,
        mean_queue_time,
        peak_batch,
        latencies,
    }
}

/// A fully seed-deterministic open-loop workload description.
///
/// The spec is plain `Copy` data with **no interior state**: calling
/// [`WorkloadSpec::requests`] any number of times, from any thread or
/// harness, yields the identical request vector — which is what lets the
/// chaos soak harness and the replica set share one workload per seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of requests.
    pub n: usize,
    /// Mean arrival rate in requests per second.
    pub rate: f64,
    /// Prompt length in tokens (fixed across requests).
    pub prompt: usize,
    /// Tokens to generate per request (fixed across requests).
    pub gen: usize,
    /// RNG seed for the inter-arrival gaps.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Materializes the request vector: `n` requests with inverse-CDF
    /// exponential inter-arrival gaps around `1/rate` seconds, sorted by
    /// arrival. Pure function of the spec.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `rate <= 0`.
    pub fn requests(&self) -> Vec<RequestSpec> {
        assert!(self.n > 0 && self.rate > 0.0, "need a positive workload");
        let mut rng = turbo_tensor::TensorRng::new(self.seed);
        let mut t = 0.0f64;
        (0..self.n)
            .map(|_| {
                // Inverse-CDF exponential gap from a uniform draw.
                let u: f64 = rng.uniform_value(1e-6, 1.0) as f64;
                t += -u.ln() / self.rate;
                RequestSpec {
                    arrival: t,
                    prompt: self.prompt,
                    gen: self.gen,
                }
            })
            .collect()
    }
}

/// Generates a deterministic open-loop workload: `n` requests with
/// exponential-ish inter-arrival gaps around `1/rate` seconds and fixed
/// prompt/gen sizes. Thin wrapper over [`WorkloadSpec::requests`].
pub fn uniform_workload(
    n: usize,
    rate: f64,
    prompt: usize,
    gen: usize,
    seed: u64,
) -> Vec<RequestSpec> {
    WorkloadSpec {
        n,
        rate,
        prompt,
        gen,
        seed,
    }
    .requests()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    fn workload() -> Vec<RequestSpec> {
        uniform_workload(40, 2.0, 1024, 64, 99)
    }

    #[test]
    fn all_requests_complete() {
        let (gpu, geom) = setup();
        let stats = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        assert_eq!(stats.completed, 40);
        assert!(stats.makespan > 0.0);
        assert!(stats.throughput > 0.0);
        assert!(stats.p95_latency >= stats.p50_latency);
        assert!(stats.mean_queue_time >= 0.0);
    }

    #[test]
    fn turbo_sustains_load_better_than_fp16() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let turbo = simulate_serving(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, &reqs);
        assert!(
            turbo.mean_latency < fp16.mean_latency,
            "turbo {} vs fp16 {}",
            turbo.mean_latency,
            fp16.mean_latency
        );
        assert!(turbo.makespan <= fp16.makespan * 1.01);
    }

    #[test]
    fn kivi_pays_dequant_under_load() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let kivi = simulate_serving(&gpu, &geom, AttnMethod::Kivi { bits: 4.0 }, &reqs);
        // KIVI decodes slower per step; under this (memory-light) load it
        // loses on latency despite the smaller cache.
        assert!(kivi.mean_latency > fp16.mean_latency);
    }

    #[test]
    fn compression_raises_peak_batch_under_memory_pressure() {
        let (gpu, geom) = setup();
        // Bursty long-context load: all requests arrive nearly at once, so
        // peak concurrency is limited by memory, not arrival pacing. FP16
        // fits ~7 live 8k sequences next to the weights; the compressed
        // cache fits all 12.
        let reqs = uniform_workload(12, 50.0, 8192, 32, 7);
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let turbo = simulate_serving(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, &reqs);
        assert!(
            turbo.peak_batch > fp16.peak_batch,
            "turbo {} vs fp16 {}",
            turbo.peak_batch,
            fp16.peak_batch
        );
        assert!(turbo.mean_queue_time <= fp16.mean_queue_time + 1e-9);
    }

    #[test]
    fn deterministic_workload_and_simulation() {
        let (gpu, geom) = setup();
        let a = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        let b = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        assert_eq!(a, b);
    }

    #[test]
    fn batched_decode_matches_plain_simulation_at_any_worker_count() {
        let (gpu, geom) = setup();
        let reqs = workload();
        for method in [AttnMethod::FlashFp16, AttnMethod::Turbo { kv_bits: 3.0 }] {
            let plain = simulate_serving(&gpu, &geom, method, &reqs);
            let batched = simulate_serving_batched(&gpu, &geom, method, &reqs);
            assert_eq!(plain, batched);
            for workers in [1usize, 2, 8] {
                let rt = turbo_runtime::Runtime::with_workers(workers);
                let out = simulate_serving_batched_on(&rt, &gpu, &geom, method, &reqs);
                assert_eq!(plain, out, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn light_load_has_no_queueing() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(5, 0.05, 512, 16, 3); // one every ~20s
        let stats = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert!(stats.mean_queue_time < 1e-9);
        assert_eq!(stats.peak_batch, 1);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_panic() {
        let (gpu, geom) = setup();
        let reqs = vec![
            RequestSpec {
                arrival: 1.0,
                prompt: 128,
                gen: 4,
            },
            RequestSpec {
                arrival: 0.5,
                prompt: 128,
                gen: 4,
            },
        ];
        simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn impossible_request_panics() {
        let (gpu, geom) = setup();
        let reqs = vec![RequestSpec {
            arrival: 0.0,
            prompt: 500_000,
            gen: 8,
        }];
        simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
    }

    #[test]
    fn robust_default_policy_matches_plain_simulation() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let plain = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let health = HealthStats::new();
        let robust = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            Some(&health),
        );
        assert_eq!(robust.completed, plain.completed);
        assert_eq!(robust.rejected, 0);
        assert_eq!(robust.truncated, 0);
        assert!((robust.makespan - plain.makespan).abs() < 1e-9);
        assert!((robust.mean_latency - plain.mean_latency).abs() < 1e-9);
        assert_eq!(robust.peak_batch, plain.peak_batch);
        assert!(health.is_clean(), "clean run must record nothing");
    }

    #[test]
    fn tight_deadlines_truncate_or_reject_instead_of_stalling() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let health = HealthStats::new();
        let policy = ServingPolicy {
            deadline: 2.0,
            ..ServingPolicy::default()
        };
        let stats = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy,
            Some(&health),
        );
        assert_eq!(
            stats.completed + stats.truncated + stats.rejected,
            reqs.len()
        );
        assert!(stats.deadline_misses > 0, "2s deadline must bite");
        assert_eq!(
            health.count(HealthEvent::DeadlineMiss),
            stats.deadline_misses as u64
        );
        // Every served request respected (approximately) its deadline:
        // p95 is bounded by deadline + one decode step, not the unbounded
        // queueing latency of the plain simulator.
        let plain = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert!(stats.p95_latency <= plain.p95_latency);
    }

    #[test]
    fn pressure_demotion_serves_load_that_would_otherwise_be_rejected() {
        let (gpu, geom) = setup();
        // Find an HBM pressure level where a single long request fits at
        // 2-bit resident KV but not at 4-bit.
        let long = RequestSpec {
            arrival: 0.0,
            prompt: 8192,
            gen: 32,
        };
        let tokens = long.prompt + long.gen;
        let fraction = (30..=95)
            .map(|p| p as f64 / 100.0)
            .find(|f| {
                let mut g = gpu;
                g.hbm_capacity *= f;
                !fits_in_memory(&g, &geom, AttnMethod::Turbo { kv_bits: 4.0 }, 1, tokens)
                    && fits_in_memory(&g, &geom, AttnMethod::Turbo { kv_bits: 2.0 }, 1, tokens)
            })
            .expect("some pressure level separates 4-bit from 2-bit");
        let reqs = uniform_workload(6, 10.0, long.prompt, long.gen, 11);

        // Exponential backoff from 0.25s covers ~17 minutes of simulated
        // time in 12 attempts — enough for the whole drained queue.
        let rigid = ServingPolicy {
            hbm_usable_fraction: fraction,
            max_admission_retries: 12,
            ..ServingPolicy::default()
        };
        let flexible = ServingPolicy {
            degrade_bits: Some(2.0),
            ..rigid
        };
        let method = AttnMethod::Turbo { kv_bits: 4.0 };
        let health = HealthStats::new();
        let without = simulate_serving_robust(&gpu, &geom, method, &reqs, &rigid, None);
        let with =
            simulate_serving_robust(&gpu, &geom, method, &reqs, &flexible, Some(&health));
        assert_eq!(without.completed, 0, "4-bit cannot fit any request");
        assert_eq!(without.rejected, reqs.len());
        assert_eq!(with.demotions, 1, "one global demotion to 2-bit");
        assert_eq!(health.count(HealthEvent::PressureDemotion), 1);
        assert_eq!(with.completed, reqs.len(), "2-bit serves everything");
        assert_eq!(with.rejected, 0);
    }

    #[test]
    fn robust_rejects_infeasible_request_without_panicking() {
        let (gpu, geom) = setup();
        let reqs = vec![RequestSpec {
            arrival: 0.0,
            prompt: 500_000,
            gen: 8,
        }];
        let health = HealthStats::new();
        let stats = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            Some(&health),
        );
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.rejected, 1);
        assert_eq!(health.count(HealthEvent::RequestRejected), 1);
        assert_eq!(stats.throughput, 0.0);
    }

    fn prefix_pool(tokens: usize) -> (PagedKvPool, SeqId) {
        let mut pool = PagedKvPool::new(
            8,
            turbo_kvcache::KvCacheConfig {
                group_size: 16,
                buffer_capacity: 16,
                ..turbo_kvcache::KvCacheConfig::default()
            },
        );
        let prefix = pool.create_sequence();
        for t in 0..tokens {
            let row: Vec<f32> = (0..8).map(|c| ((t * 13 + c) % 89) as f32 * 1e-2).collect();
            pool.try_append(prefix, &row, &row).expect("prefix prefill");
        }
        (pool, prefix)
    }

    #[test]
    fn paged_healthy_run_matches_unpooled_and_leaks_nothing() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let unpooled = simulate_serving_robust(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            None,
        );
        let (mut pool, prefix) = prefix_pool(32);
        let health = HealthStats::new();
        let paged = simulate_serving_robust_paged(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            &mut pool,
            prefix,
            Some(&health),
        );
        // The pool only adds state, never time: identical stats.
        assert_eq!(paged, unpooled);
        assert!(health.is_clean(), "healthy pool records nothing");
        // Every fork was released on finish — nothing leaked.
        assert_eq!(pool.num_sequences(), 1, "only the prefix survives");
        assert_eq!(pool.try_seq_len(prefix).expect("prefix survives"), 32);
    }

    #[test]
    fn poisoned_prefix_cache_rejects_requests_instead_of_panicking() {
        let (gpu, geom) = setup();
        let reqs = workload();
        // Poison the serving cache: the prefix sequence is gone (the same
        // degradation covers any CacheError a fork can hit — unknown
        // sequence, dangling page). The old panicking `fork` wrapper
        // would have aborted the replica right here.
        let (mut pool, prefix) = prefix_pool(32);
        pool.try_release(prefix).expect("release prefix");
        let health = HealthStats::new();
        let stats = simulate_serving_robust_paged(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &ServingPolicy::default(),
            &mut pool,
            prefix,
            Some(&health),
        );
        assert_eq!(stats.rejected, reqs.len(), "every admission degrades");
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.generated_tokens, 0);
        assert_eq!(
            health.count(HealthEvent::RequestRejected),
            reqs.len() as u64
        );
    }

    #[test]
    fn robust_simulation_is_deterministic() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let policy = ServingPolicy {
            deadline: 5.0,
            hbm_usable_fraction: 0.9,
            ..ServingPolicy::default()
        };
        let a =
            simulate_serving_robust(&gpu, &geom, AttnMethod::FlashFp16, &reqs, &policy, None);
        let b =
            simulate_serving_robust(&gpu, &geom, AttnMethod::FlashFp16, &reqs, &policy, None);
        assert_eq!(a, b);
    }
}
