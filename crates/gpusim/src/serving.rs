//! Continuous-batching serving simulator.
//!
//! Figure 7a's "maximum throughput" is an offline number; production
//! serving cares about *sustained load*: requests arrive over time, the
//! engine interleaves prefills with batched decode steps, and the KV-cache
//! footprint decides how many sequences fit in HBM at once. This module
//! runs that loop as a discrete-event simulation on top of the kernel
//! cost model, so the end-to-end effect of KV compression — bigger live
//! batches, fewer admission stalls, lower tail latency — can be measured
//! per attention method.
//!
//! The engine model follows vLLM-style continuous batching:
//!
//! * one request prefills at a time (prefill preempts decode),
//! * all admitted sequences decode together, one token per step,
//! * a request is admitted only if weights + every live sequence's
//!   *maximum* KV footprint fit in usable HBM.

use crate::endtoend::linear_time;
use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::kernels::{decode_latency, prefill_latency};
use crate::memory::fits_in_memory;
use crate::method::AttnMethod;

/// One inference request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestSpec {
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens to generate.
    pub gen: usize,
}

/// Aggregate results of a serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingStats {
    /// Requests completed.
    pub completed: usize,
    /// Wall-clock time when the last request finished.
    pub makespan: f64,
    /// Generated tokens per second of makespan.
    pub throughput: f64,
    /// Mean end-to-end request latency (arrival → last token).
    pub mean_latency: f64,
    /// Median end-to-end latency.
    pub p50_latency: f64,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: f64,
    /// Mean time spent waiting for admission (memory/queue).
    pub mean_queue_time: f64,
    /// Largest number of sequences decoding together.
    pub peak_batch: usize,
}

#[derive(Clone, Debug)]
struct LiveSeq {
    req: usize,
    generated: usize,
    ctx: usize,
}

/// Simulates serving `requests` (sorted by arrival) with continuous
/// batching on the given device/model/method.
///
/// # Panics
///
/// Panics if `requests` is empty, unsorted by arrival, or contains a
/// request that can never fit in memory alone.
pub fn simulate_serving(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
) -> ServingStats {
    assert!(!requests.is_empty(), "no requests to serve");
    for w in requests.windows(2) {
        assert!(
            w[0].arrival <= w[1].arrival,
            "requests must be sorted by arrival"
        );
    }
    for (i, r) in requests.iter().enumerate() {
        assert!(
            fits_in_memory(gpu, geom, method, 1, r.prompt + r.gen),
            "request {i} cannot fit in memory even alone"
        );
    }

    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut waiting: Vec<usize> = Vec::new();
    let mut live: Vec<LiveSeq> = Vec::new();
    let mut admit_time = vec![0.0f64; requests.len()];
    let mut finish_time = vec![f64::NAN; requests.len()];
    let mut peak_batch = 0usize;

    // Total final context of every live sequence must fit alongside the
    // weights; new admissions reserve their full footprint up front.
    let reserved_tokens = |live: &[LiveSeq], extra: usize| -> usize {
        live.iter()
            .map(|s| requests[s.req].prompt + requests[s.req].gen)
            .sum::<usize>()
            + extra
    };
    let fits = |total_tokens: usize| -> bool {
        // Model the reservation as one batch-1 "sequence" of that many
        // tokens (weights + KV + activations).
        fits_in_memory(gpu, geom, method, 1, total_tokens.max(1))
    };

    loop {
        // Ingest arrivals up to `now`.
        while next_arrival < requests.len() && requests[next_arrival].arrival <= now {
            waiting.push(next_arrival);
            next_arrival += 1;
        }

        // Admit + prefill one waiting request if it fits.
        if let Some(pos) = waiting
            .iter()
            .position(|&r| fits(reserved_tokens(&live, requests[r].prompt + requests[r].gen)))
        {
            let r = waiting.remove(pos);
            admit_time[r] = now;
            let spec = requests[r];
            now += prefill_latency(gpu, geom, method, 1, spec.prompt).total()
                + linear_time(gpu, geom, 1, spec.prompt);
            live.push(LiveSeq {
                req: r,
                generated: 0,
                ctx: spec.prompt,
            });
            peak_batch = peak_batch.max(live.len());
            continue;
        }

        if !live.is_empty() {
            // One decode step for the whole live batch at the longest ctx.
            let batch = live.len();
            let max_ctx = live.iter().map(|s| s.ctx).max().unwrap();
            now += decode_latency(gpu, geom, method, batch, max_ctx).total()
                + linear_time(gpu, geom, batch, 1);
            let mut still_live = Vec::with_capacity(live.len());
            for mut s in live.into_iter() {
                s.generated += 1;
                s.ctx += 1;
                if s.generated >= requests[s.req].gen {
                    finish_time[s.req] = now;
                } else {
                    still_live.push(s);
                }
            }
            live = still_live;
            continue;
        }

        // Idle: jump to the next arrival, or finish.
        if next_arrival < requests.len() {
            now = now.max(requests[next_arrival].arrival);
            continue;
        }
        break;
    }

    // Statistics.
    let mut latencies: Vec<f64> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| finish_time[i] - r.arrival)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_gen: usize = requests.iter().map(|r| r.gen).sum();
    let makespan = finish_time.iter().fold(0.0f64, |m, &t| m.max(t));
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let queue: f64 = requests
        .iter()
        .enumerate()
        .map(|(i, r)| admit_time[i] - r.arrival)
        .sum::<f64>()
        / requests.len() as f64;

    ServingStats {
        completed: requests.len(),
        makespan,
        throughput: total_gen as f64 / makespan,
        mean_latency: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_latency: pct(0.5),
        p95_latency: pct(0.95),
        mean_queue_time: queue,
        peak_batch,
    }
}

/// Generates a deterministic open-loop workload: `n` requests with
/// exponential-ish inter-arrival gaps around `1/rate` seconds and fixed
/// prompt/gen sizes.
pub fn uniform_workload(
    n: usize,
    rate: f64,
    prompt: usize,
    gen: usize,
    seed: u64,
) -> Vec<RequestSpec> {
    assert!(n > 0 && rate > 0.0, "need a positive workload");
    let mut rng = turbo_tensor::TensorRng::new(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential gap from a uniform draw.
            let u: f64 = rng.uniform_value(1e-6, 1.0) as f64;
            t += -u.ln() / rate;
            RequestSpec {
                arrival: t,
                prompt,
                gen,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    fn workload() -> Vec<RequestSpec> {
        uniform_workload(40, 2.0, 1024, 64, 99)
    }

    #[test]
    fn all_requests_complete() {
        let (gpu, geom) = setup();
        let stats = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        assert_eq!(stats.completed, 40);
        assert!(stats.makespan > 0.0);
        assert!(stats.throughput > 0.0);
        assert!(stats.p95_latency >= stats.p50_latency);
        assert!(stats.mean_queue_time >= 0.0);
    }

    #[test]
    fn turbo_sustains_load_better_than_fp16() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let turbo = simulate_serving(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, &reqs);
        assert!(
            turbo.mean_latency < fp16.mean_latency,
            "turbo {} vs fp16 {}",
            turbo.mean_latency,
            fp16.mean_latency
        );
        assert!(turbo.makespan <= fp16.makespan * 1.01);
    }

    #[test]
    fn kivi_pays_dequant_under_load() {
        let (gpu, geom) = setup();
        let reqs = workload();
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let kivi = simulate_serving(&gpu, &geom, AttnMethod::Kivi { bits: 4.0 }, &reqs);
        // KIVI decodes slower per step; under this (memory-light) load it
        // loses on latency despite the smaller cache.
        assert!(kivi.mean_latency > fp16.mean_latency);
    }

    #[test]
    fn compression_raises_peak_batch_under_memory_pressure() {
        let (gpu, geom) = setup();
        // Bursty long-context load: all requests arrive nearly at once, so
        // peak concurrency is limited by memory, not arrival pacing. FP16
        // fits ~7 live 8k sequences next to the weights; the compressed
        // cache fits all 12.
        let reqs = uniform_workload(12, 50.0, 8192, 32, 7);
        let fp16 = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        let turbo = simulate_serving(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, &reqs);
        assert!(
            turbo.peak_batch > fp16.peak_batch,
            "turbo {} vs fp16 {}",
            turbo.peak_batch,
            fp16.peak_batch
        );
        assert!(turbo.mean_queue_time <= fp16.mean_queue_time + 1e-9);
    }

    #[test]
    fn deterministic_workload_and_simulation() {
        let (gpu, geom) = setup();
        let a = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        let b = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &workload());
        assert_eq!(a, b);
    }

    #[test]
    fn light_load_has_no_queueing() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(5, 0.05, 512, 16, 3); // one every ~20s
        let stats = simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
        assert!(stats.mean_queue_time < 1e-9);
        assert_eq!(stats.peak_batch, 1);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_panic() {
        let (gpu, geom) = setup();
        let reqs = vec![
            RequestSpec {
                arrival: 1.0,
                prompt: 128,
                gen: 4,
            },
            RequestSpec {
                arrival: 0.5,
                prompt: 128,
                gen: 4,
            },
        ];
        simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn impossible_request_panics() {
        let (gpu, geom) = setup();
        let reqs = vec![RequestSpec {
            arrival: 0.0,
            prompt: 500_000,
            gen: 8,
        }];
        simulate_serving(&gpu, &geom, AttnMethod::FlashFp16, &reqs);
    }
}
