//! Fleet control plane: SLO-driven autoscaling over replica sets.
//!
//! This module turns the replica-set harness into the system's control
//! plane. A [`FleetWorkloadSpec`] models a population of millions of
//! users whose aggregate request rate swings diurnally and spikes in
//! bursty epochs; the fleet serves that stream epoch by epoch through
//! [`crate::replica::run_replica_set_on`], and three controllers close
//! the loop around it:
//!
//! * an [`SloTracker`] (from `turbo-robust`) folds every finished
//!   request into windowed p50/p99 and violation-rate signals;
//! * an [`OnlineTuner`] re-tunes admission backoff, hedging delay, and
//!   breaker thresholds AIMD-style from those windows;
//! * an [`Autoscaler`] decides the replica count — scale up on an SLO
//!   breach, drain-then-retire on a sustained healthy run.
//!
//! **Drain-then-retire:** scaling decisions apply at epoch boundaries,
//! and an epoch's replica set serves every admitted request to
//! completion before the epoch closes, so a retired replica never
//! strands an in-flight token (the per-epoch exactly-once ledger proves
//! it). **WAL rebuild on spawn:** a replica added by scale-up joins
//! cold — the fleet schedules a synthetic kill at t≈0 for each new
//! index, so the newcomer pays snapshot recovery + WAL replay +
//! re-prefill through the same machinery a crashed replica uses, and
//! the zero-token-loss ledger covers its warm-up.
//!
//! Chaos epochs inject *correlated* failure bursts
//! ([`ChaosBurst`](turbo_robust::ChaosBurst)):
//! simultaneous multi-replica kills, zone faults, pressure storms. The
//! fleet records how many epochs each burst needs before the violation
//! rate returns under the SLO budget; soak harnesses assert that
//! recovery time stays within [`FleetConfig::recovery_bound_epochs`].
//!
//! Everything is a pure function of `(config, seed)` — same seed, same
//! event trace, same ledger, bit for bit, on any worker count.

use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::method::AttnMethod;
use crate::replica::{BreakerConfig, ReplicaSetConfig, ReplicaSetStats};
use crate::serving::{RequestSpec, WorkloadSpec};
use turbo_robust::{
    BurstKind, ChaosAction, ChaosConfig, ChaosEvent, ChaosPlan, FaultInjector, HealthEvent,
    HealthStats, OnlineTuner, ReplayTelemetry, ReplayTuner, ReplayTunerConfig, SloConfig,
    SloTracker, TunedParams, TunerConfig,
};

/// A diurnal, bursty request population.
///
/// The spec is pure `Copy` data: the epoch-`e` workload is a function
/// of `(spec, fleet seed, e)` only, so every fleet episode replays
/// identically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetWorkloadSpec {
    /// Simulated user population. The aggregate arrival rate is
    /// `users / 1e6 × rate_per_million_users`, before modulation.
    pub users: usize,
    /// Requests per second contributed by each million users at the
    /// diurnal midline.
    pub rate_per_million_users: f64,
    /// Requests materialized per epoch (the sample of the population's
    /// stream the fleet actually serves).
    pub requests_per_epoch: usize,
    /// Fractional swing of the diurnal sinusoid (0 = flat, 0.5 = ±50%).
    pub diurnal_amplitude: f64,
    /// Epochs per diurnal cycle.
    pub epochs_per_day: usize,
    /// Probability an epoch is a traffic burst.
    pub burst_probability: f64,
    /// Rate multiplier in a bursty epoch.
    pub burst_multiplier: f64,
    /// Prompt length in tokens.
    pub prompt: usize,
    /// Tokens generated per request.
    pub gen: usize,
}

impl Default for FleetWorkloadSpec {
    /// Two million users on an 8-epoch diurnal cycle with ±50% swing and
    /// occasional 3× bursts.
    fn default() -> Self {
        Self {
            users: 2_000_000,
            rate_per_million_users: 1.0,
            requests_per_epoch: 48,
            diurnal_amplitude: 0.5,
            epochs_per_day: 8,
            burst_probability: 0.25,
            burst_multiplier: 3.0,
            prompt: 512,
            gen: 16,
        }
    }
}

impl FleetWorkloadSpec {
    /// The arrival rate for epoch `epoch` under fleet seed `seed`
    /// (diurnal sinusoid × deterministic burst draw).
    pub fn rate(&self, seed: u64, epoch: usize) -> f64 {
        let base = self.users as f64 / 1e6 * self.rate_per_million_users;
        let phase = 2.0 * std::f64::consts::PI * (epoch % self.epochs_per_day) as f64
            / self.epochs_per_day as f64;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.sin();
        let bursty = if self.burst_probability > 0.0 {
            let mut inj = FaultInjector::new(mix(seed, epoch) ^ 0xB00);
            inj.hbm_pressure(0.001, 0.999) < self.burst_probability
        } else {
            false
        };
        base * diurnal * if bursty { self.burst_multiplier } else { 1.0 }
    }

    /// Materializes epoch `epoch`'s request vector.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero requests or a
    /// non-positive rate).
    pub fn requests(&self, seed: u64, epoch: usize) -> Vec<RequestSpec> {
        let rate = self.rate(seed, epoch);
        assert!(rate > 0.0, "fleet workload rate must be positive");
        WorkloadSpec {
            n: self.requests_per_epoch,
            rate,
            prompt: self.prompt,
            gen: self.gen,
            seed: mix(seed, epoch),
        }
        .requests()
    }
}

/// Autoscaler tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscalerConfig {
    /// Floor on the replica count.
    pub min_replicas: usize,
    /// Ceiling on the replica count.
    pub max_replicas: usize,
    /// Replicas added per scale-up decision.
    pub scale_up_step: usize,
    /// Consecutive healthy epochs required before one replica is
    /// drained and retired.
    pub healthy_epochs_to_scale_down: usize,
}

impl Default for AutoscalerConfig {
    /// 1–6 replicas, +2 on breach, retire after 3 healthy epochs.
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 6,
            scale_up_step: 2,
            healthy_epochs_to_scale_down: 3,
        }
    }
}

/// One autoscaler verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current replica count.
    Hold,
    /// Add replicas (scale-up on SLO breach).
    Up(usize),
    /// Drain and retire one replica (sustained healthy run).
    Down,
}

/// SLO-driven replica-count state machine.
///
/// States are implicit in `(current, healthy_streak)`: a breach always
/// scales up and resets the streak; `healthy_epochs_to_scale_down`
/// consecutive healthy epochs retire one replica at a time.
#[derive(Clone, Debug, PartialEq)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    healthy_streak: usize,
}

impl Autoscaler {
    /// Fresh autoscaler.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or zero.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        assert!(
            cfg.min_replicas >= 1 && cfg.min_replicas <= cfg.max_replicas,
            "autoscaler bounds must satisfy 1 <= min <= max"
        );
        assert!(cfg.scale_up_step >= 1, "scale-up step must be positive");
        assert!(
            cfg.healthy_epochs_to_scale_down >= 1,
            "scale-down streak must be positive"
        );
        Self {
            cfg,
            healthy_streak: 0,
        }
    }

    /// Decides the next replica count from the epoch's violation rate.
    /// Returns `(new_count, decision)`.
    pub fn decide(
        &mut self,
        current: usize,
        violation_rate: f64,
        slo: &SloConfig,
    ) -> (usize, ScaleDecision) {
        if violation_rate > slo.max_violation_rate {
            self.healthy_streak = 0;
            let target = (current + self.cfg.scale_up_step).min(self.cfg.max_replicas);
            if target > current {
                return (target, ScaleDecision::Up(target - current));
            }
            return (current, ScaleDecision::Hold);
        }
        self.healthy_streak += 1;
        if self.healthy_streak >= self.cfg.healthy_epochs_to_scale_down
            && current > self.cfg.min_replicas
        {
            self.healthy_streak = 0;
            return (current - 1, ScaleDecision::Down);
        }
        (current, ScaleDecision::Hold)
    }
}

/// Full fleet configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetConfig {
    /// Control epochs to run.
    pub epochs: usize,
    /// The user population.
    pub workload: FleetWorkloadSpec,
    /// Latency SLO contract.
    pub slo: SloConfig,
    /// AIMD tuner ranges/steps.
    pub tuner: TunerConfig,
    /// AIMD checkpoint-cadence tuner: rebuild/replay telemetry from
    /// each epoch tightens or relaxes the `ReplayBudget` ceiling the
    /// next epoch's replica set checkpoints under.
    pub replay_tuner: ReplayTunerConfig,
    /// Replica-count bounds and steps.
    pub autoscaler: AutoscalerConfig,
    /// Template replica-set config; `replicas`, admission backoff,
    /// hedging, and breaker knobs are overridden per epoch by the
    /// controllers.
    pub replica_set: ReplicaSetConfig,
    /// Chaos campaign template for burst epochs; `replicas` is
    /// overridden to the fleet's current count. Configure its
    /// correlated-burst fields (`bursts`, `zone_faults`,
    /// `pressure_storms`) — independent events are welcome too.
    pub chaos: ChaosConfig,
    /// A chaos epoch fires every this many epochs (`0` disables chaos).
    pub burst_every: usize,
    /// Epochs the violation rate may stay over budget after a burst
    /// before the soak calls the recovery unbounded.
    pub recovery_bound_epochs: usize,
}

impl Default for FleetConfig {
    /// 24 epochs (three diurnal days), a correlated burst every 6th
    /// epoch, recovery required within 2 epochs.
    fn default() -> Self {
        Self {
            epochs: 24,
            workload: FleetWorkloadSpec::default(),
            slo: SloConfig::default(),
            tuner: TunerConfig::default(),
            replay_tuner: ReplayTunerConfig::default(),
            autoscaler: AutoscalerConfig::default(),
            replica_set: ReplicaSetConfig {
                prefix_tokens: 64,
                prefix_dim: 4,
                ..ReplicaSetConfig::default()
            },
            chaos: ChaosConfig {
                horizon: 20.0,
                kills: 0,
                restarts: 0,
                wal_truncations: 0,
                faults: 1,
                pressure_spikes: 0,
                bursts: 1,
                burst_kill_fraction: 0.5,
                pressure_storms: 1,
                ..ChaosConfig::default()
            },
            burst_every: 6,
            recovery_bound_epochs: 2,
        }
    }
}

/// One epoch's record in the fleet report.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Replicas serving this epoch.
    pub replicas: usize,
    /// Replicas spawned cold at the epoch start (scale-up warm-ups).
    pub spawned: usize,
    /// Tuned knobs in force this epoch.
    pub params: TunedParams,
    /// Replay-budget ceiling (seconds) the epoch's replicas
    /// checkpointed under.
    pub replay_budget_secs: f64,
    /// Arrival rate of the epoch's workload.
    pub rate: f64,
    /// Requests submitted.
    pub total: usize,
    /// Requests completed in full.
    pub completed: usize,
    /// Requests truncated by deadline.
    pub truncated: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Replica kills (chaos + spawn warm-ups).
    pub kills: usize,
    /// SLO violations among this epoch's requests.
    pub violations: usize,
    /// `violations / total`.
    pub violation_rate: f64,
    /// Median served latency (0 when nothing served).
    pub p50: f64,
    /// 99th-percentile served latency (0 when nothing served).
    pub p99: f64,
    /// Served requests per second of epoch makespan.
    pub requests_per_sec: f64,
    /// The correlated burst kinds that fired this epoch (empty when
    /// chaos was quiet).
    pub bursts: Vec<BurstKind>,
    /// Autoscaler verdict made *at the end of* this epoch.
    pub decision: ScaleDecision,
}

/// One burst's recovery record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstRecovery {
    /// Epoch the burst fired in.
    pub burst_epoch: usize,
    /// Epochs after the burst until the violation rate returned under
    /// budget (0 = the burst epoch itself stayed healthy).
    pub recovery_epochs: usize,
    /// Whether recovery landed within the configured bound.
    pub within_bound: bool,
}

/// Final fleet report: per-epoch records plus lifetime ledgers.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetStats {
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochReport>,
    /// Requests submitted across all epochs.
    pub total: usize,
    /// Requests completed across all epochs.
    pub completed: usize,
    /// Requests truncated across all epochs.
    pub truncated: usize,
    /// Requests rejected across all epochs.
    pub rejected: usize,
    /// Replica kills across all epochs (chaos + spawn warm-ups).
    pub kills: usize,
    /// Prefix tokens recovered by snapshot + WAL replay.
    pub recovered_tokens: usize,
    /// Prefix tokens re-prefilled after unrecoverable WAL damage.
    pub reprefilled_tokens: usize,
    /// Prefix tokens lost — always zero.
    pub lost_tokens: usize,
    /// Scale-up decisions taken.
    pub scale_ups: usize,
    /// Drain-and-retire decisions taken.
    pub scale_downs: usize,
    /// Correlated bursts endured.
    pub bursts: usize,
    /// Per-burst recovery records.
    pub recoveries: Vec<BurstRecovery>,
    /// Closed SLO windows across the run.
    pub slo_windows: usize,
    /// Lifetime SLO violation fraction.
    pub violation_rate: f64,
    /// Final tuner aggressiveness position.
    pub tuner_position: f64,
    /// `(windows observed, backoff steps, relax steps)` of the tuner.
    pub tuner_counters: (usize, usize, usize),
    /// Replay-budget ceiling (seconds) in force after the last epoch.
    pub replay_budget_secs: f64,
    /// `(epochs observed, tighten steps, relax steps)` of the replay
    /// tuner.
    pub replay_tuner_counters: (usize, usize, usize),
    /// Structured event trace — the determinism suite asserts this is
    /// bit-identical across same-seed reruns and worker counts.
    pub trace: Vec<String>,
}

impl FleetStats {
    /// `completed + truncated + rejected` — must equal
    /// [`FleetStats::total`] (exactly-once accounting).
    pub fn accounted(&self) -> usize {
        self.completed + self.truncated + self.rejected
    }
}

/// Splat a fleet seed and an epoch index into an independent stream.
fn mix(seed: u64, epoch: usize) -> u64 {
    (seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(0xD1B5_4A32_D192_ED03)
}

/// Runs the fleet on the global runtime. See the module docs.
///
/// # Panics
///
/// Panics on degenerate configuration (zero epochs/requests, inverted
/// autoscaler bounds, invalid chaos ranges).
#[allow(clippy::too_many_arguments)]
pub fn run_fleet(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    config: &FleetConfig,
    seed: u64,
    health: Option<&HealthStats>,
) -> FleetStats {
    run_fleet_on(turbo_runtime::global(), gpu, geom, method, config, seed, health)
}

/// Runs the fleet control loop on an explicit runtime.
///
/// Each epoch: the autoscaler's replica count and the tuner's knobs are
/// applied to a fresh replica set, the epoch's (diurnal, bursty)
/// workload is served through it under that epoch's chaos plan, every
/// finished request feeds the SLO tracker, and the closed windows drive
/// the tuner and autoscaler for the next epoch.
///
/// # Panics
///
/// As [`run_fleet`].
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_on(
    rt: &turbo_runtime::Runtime,
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    config: &FleetConfig,
    seed: u64,
    health: Option<&HealthStats>,
) -> FleetStats {
    assert!(config.epochs > 0, "fleet needs at least one epoch");
    assert!(
        config.workload.requests_per_epoch > 0,
        "fleet epochs need requests"
    );
    let mut autoscaler = Autoscaler::new(config.autoscaler);
    let mut tuner = OnlineTuner::new(config.tuner);
    let mut replay_tuner = ReplayTuner::new(config.replay_tuner);
    let mut slo = SloTracker::new(config.slo);
    let mut windows_consumed = 0usize;
    let mut replicas = config
        .replica_set
        .replicas
        .clamp(config.autoscaler.min_replicas, config.autoscaler.max_replicas);
    let mut spawned = 0usize; // replicas joining cold this epoch

    let mut epochs: Vec<EpochReport> = Vec::with_capacity(config.epochs);
    let mut trace: Vec<String> = Vec::new();
    let mut recoveries: Vec<BurstRecovery> = Vec::new();
    let mut open_burst: Option<usize> = None; // epoch of unrecovered burst
    let (mut total, mut completed, mut truncated, mut rejected) = (0, 0, 0, 0);
    let (mut kills, mut recovered_tokens, mut reprefilled_tokens, mut lost_tokens) = (0, 0, 0, 0);
    let (mut scale_ups, mut scale_downs, mut burst_count) = (0, 0, 0);

    for epoch in 0..config.epochs {
        let params = tuner.params();
        let replay_budget = replay_tuner.budget_secs();
        let requests = config.workload.requests(seed, epoch);
        let rate = config.workload.rate(seed, epoch);

        // Chaos plan for this epoch: quiet unless it is a burst epoch.
        let is_burst_epoch = config.burst_every > 0 && (epoch + 1) % config.burst_every == 0;
        let plan = if is_burst_epoch {
            let chaos_cfg = ChaosConfig {
                replicas,
                ..config.chaos
            };
            Some(ChaosPlan::generate(mix(seed, epoch) ^ 0xC0A5, &chaos_cfg))
        } else {
            None
        };

        // Spawn warm-ups: every replica added by the last scale-up joins
        // cold and pays snapshot + WAL replay + re-prefill through the
        // ordinary kill/rebuild path, scheduled at t ≈ 0 (before any
        // arrival).
        let spawned_this_epoch = spawned;
        let mut events: Vec<ChaosEvent> = Vec::new();
        for k in 0..spawned {
            events.push(ChaosEvent {
                time: 1e-9,
                action: ChaosAction::KillReplica {
                    replica: replicas - 1 - k,
                    wal_cut: 0.95,
                },
            });
        }
        if let Some(p) = &plan {
            events.extend(p.events.iter().copied());
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));

        let mut rs_cfg = ReplicaSetConfig {
            replicas,
            hedge_threshold: Some(params.hedge_threshold),
            replay_budget_secs: Some(replay_budget),
            breaker: BreakerConfig {
                failure_threshold: params.breaker_failure_threshold,
                cooldown: params.breaker_cooldown,
                ..config.replica_set.breaker
            },
            ..config.replica_set
        };
        rs_cfg.policy.admission_backoff = params.admission_backoff;

        let stats: ReplicaSetStats = crate::replica::run_replica_set_on(
            rt,
            gpu,
            geom,
            method,
            &requests,
            &events,
            &rs_cfg,
            mix(seed, epoch) ^ 0x5E17,
            health,
        );

        // Feed the SLO tracker: every served latency, then every
        // rejected request as a deadline-class violation — exactly one
        // observation per submitted request.
        let mut epoch_latencies: Vec<f64> = Vec::new();
        for r in stats.per_replica.iter().flatten() {
            epoch_latencies.extend_from_slice(&r.latencies);
        }
        epoch_latencies.sort_by(f64::total_cmp);
        let mut violations = 0usize;
        for &lat in &epoch_latencies {
            if lat > config.slo.latency_slo {
                violations += 1;
            }
            slo.record(lat, false, health);
        }
        let epoch_rejected = stats.total - epoch_latencies.len();
        for _ in 0..epoch_rejected {
            violations += 1;
            slo.record(config.slo.latency_slo, true, health);
        }
        let violation_rate = violations as f64 / stats.total.max(1) as f64;

        // Drive the tuner on every window this epoch closed.
        while windows_consumed < slo.windows().len() {
            let w = slo.windows()[windows_consumed];
            tuner.observe(&w, &config.slo, health);
            windows_consumed += 1;
        }

        // Feed rebuild/replay telemetry to the checkpoint-cadence
        // tuner: churny epochs tighten the replay ceiling, calm epochs
        // relax it toward cheaper group commits.
        replay_tuner.observe(
            &ReplayTelemetry {
                rebuilds: stats.rebuilds as u64,
                replayed_records: stats.recovered_tokens as u64,
                replay_rate: rs_cfg.wal_replay_rate,
            },
            health,
        );

        // Burst recovery bookkeeping.
        let healthy = violation_rate <= config.slo.max_violation_rate;
        if let Some(burst_epoch) = open_burst {
            if healthy {
                let lag = epoch - burst_epoch;
                recoveries.push(BurstRecovery {
                    burst_epoch,
                    recovery_epochs: lag,
                    within_bound: lag <= config.recovery_bound_epochs,
                });
                if let Some(hs) = health {
                    hs.record(HealthEvent::FleetSloRecovered);
                }
                open_burst = None;
            }
        }
        if is_burst_epoch {
            let fired = plan.as_ref().map(|p| p.bursts.len()).unwrap_or(0);
            burst_count += fired;
            if let Some(hs) = health {
                hs.record_n(HealthEvent::ChaosBurst, fired as u64);
            }
            if healthy {
                // Absorbed outright: recovery lag zero.
                recoveries.push(BurstRecovery {
                    burst_epoch: epoch,
                    recovery_epochs: 0,
                    within_bound: true,
                });
                if let Some(hs) = health {
                    hs.record(HealthEvent::FleetSloRecovered);
                }
            } else {
                open_burst = Some(epoch);
            }
        }

        // Ledger roll-up.
        total += stats.total;
        completed += stats.completed;
        truncated += stats.truncated;
        rejected += stats.rejected;
        kills += stats.kills;
        recovered_tokens += stats.recovered_tokens;
        reprefilled_tokens += stats.reprefilled_tokens;
        lost_tokens += stats.lost_tokens;

        // Autoscaler verdict for the next epoch.
        let before = replicas;
        let (next, decision) = autoscaler.decide(replicas, violation_rate, &config.slo);
        match decision {
            ScaleDecision::Up(n) => {
                scale_ups += 1;
                spawned = n;
                if let Some(hs) = health {
                    hs.record_n(HealthEvent::FleetScaleUp, n as u64);
                }
            }
            ScaleDecision::Down => {
                scale_downs += 1;
                spawned = 0;
                if let Some(hs) = health {
                    hs.record(HealthEvent::FleetScaleDown);
                }
            }
            ScaleDecision::Hold => spawned = 0,
        }
        replicas = next;

        // Same nearest-rank definition the SloTracker windows use.
        let pct = |q: f64| -> f64 { turbo_robust::percentile(&epoch_latencies, q) };
        let report = EpochReport {
            epoch,
            replicas: before,
            spawned: spawned_this_epoch,
            params,
            replay_budget_secs: replay_budget,
            rate,
            total: stats.total,
            completed: stats.completed,
            truncated: stats.truncated,
            rejected: stats.rejected,
            kills: stats.kills,
            violations,
            violation_rate,
            p50: pct(0.50),
            p99: pct(0.99),
            requests_per_sec: if stats.makespan > 0.0 {
                (stats.completed + stats.truncated) as f64 / stats.makespan
            } else {
                0.0
            },
            bursts: plan
                .as_ref()
                .map(|p| p.bursts.iter().map(|b| b.kind).collect())
                .unwrap_or_default(),
            decision,
        };
        trace.push(format!(
            "epoch {epoch}: replicas={before} spawned={} rbudget={replay_budget:.4} rate={rate:?} \
             total={} c/t/r={}/{}/{} \
             kills={} viol={violations} vr={violation_rate:?} p99={:?} bursts={:?} -> {decision:?}",
            report.spawned,
            stats.total,
            stats.completed,
            stats.truncated,
            stats.rejected,
            stats.kills,
            report.p99,
            report.bursts,
        ));
        epochs.push(report);
    }

    // A burst still unrecovered when the run ends: it violated the bound
    // only if the recovery window actually expired before the run did.
    if let Some(burst_epoch) = open_burst {
        let lag = config.epochs - burst_epoch;
        recoveries.push(BurstRecovery {
            burst_epoch,
            recovery_epochs: lag,
            within_bound: lag <= config.recovery_bound_epochs,
        });
    }

    FleetStats {
        epochs,
        total,
        completed,
        truncated,
        rejected,
        kills,
        recovered_tokens,
        reprefilled_tokens,
        lost_tokens,
        scale_ups,
        scale_downs,
        bursts: burst_count,
        recoveries,
        slo_windows: slo.windows().len(),
        violation_rate: slo.violation_rate(),
        tuner_position: tuner.position(),
        tuner_counters: tuner.counters(),
        replay_budget_secs: replay_tuner.budget_secs(),
        replay_tuner_counters: replay_tuner.counters(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            epochs: 8,
            workload: FleetWorkloadSpec {
                requests_per_epoch: 8,
                ..FleetWorkloadSpec::default()
            },
            burst_every: 4,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_ledger_is_exactly_once_and_lossless() {
        let (gpu, geom) = setup();
        let health = HealthStats::new();
        let stats = run_fleet(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &small_config(),
            7,
            Some(&health),
        );
        assert_eq!(stats.accounted(), stats.total);
        assert_eq!(stats.lost_tokens, 0);
        assert_eq!(
            stats.recovered_tokens + stats.reprefilled_tokens,
            stats.kills * small_config().replica_set.prefix_tokens
        );
        assert_eq!(stats.epochs.len(), 8);
        for e in &stats.epochs {
            assert_eq!(e.completed + e.truncated + e.rejected, e.total);
        }
        // Health counters mirror the ledger.
        assert_eq!(
            health.count(HealthEvent::ReplicaKilled),
            stats.kills as u64
        );
        assert_eq!(
            health.count(HealthEvent::SloRequestOk) + health.count(HealthEvent::SloViolation),
            stats.total as u64
        );
    }

    #[test]
    fn replay_budget_is_steered_by_rebuild_telemetry() {
        let (gpu, geom) = setup();
        // A calm fleet (no chaos, no scale churn) closes every epoch
        // with zero rebuilds: the replay budget only relaxes, ending at
        // the top of its range.
        let calm = FleetConfig {
            burst_every: 0,
            ..small_config()
        };
        let calm_stats = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &calm, 21, None);
        let (_, relaxed) = calm.replay_tuner.budget_range;
        if calm_stats.kills == 0 {
            let (_, tightens, relaxes) = calm_stats.replay_tuner_counters;
            assert_eq!(tightens, 0, "calm fleet must not tighten");
            assert!(relaxes > 0, "calm epochs must relax the budget");
            assert!((calm_stats.replay_budget_secs - relaxed).abs() < 1e-9);
        }

        // The budget feeds back into the replica sets: every epoch's
        // record carries the ceiling it checkpointed under, and the
        // trace pins it for the determinism suite.
        let churn = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &small_config(), 21, None);
        let (observed, _, _) = churn.replay_tuner_counters;
        assert_eq!(observed, churn.epochs.len());
        for (e, line) in churn.epochs.iter().zip(&churn.trace) {
            assert!(e.replay_budget_secs > 0.0);
            assert!(
                line.contains(&format!("rbudget={:.4}", e.replay_budget_secs)),
                "trace must carry the epoch's replay budget"
            );
        }
    }

    #[test]
    fn same_seed_same_fleet() {
        let (gpu, geom) = setup();
        let cfg = small_config();
        let a = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &cfg, 11, None);
        let b = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &cfg, 11, None);
        assert_eq!(a, b);
        let c = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &cfg, 12, None);
        assert_ne!(a.trace, c.trace, "different seeds must diverge");
    }

    #[test]
    fn burst_epochs_fire_and_are_traced() {
        let (gpu, geom) = setup();
        let cfg = small_config();
        let stats = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &cfg, 3, None);
        let burst_epochs: Vec<usize> = stats
            .epochs
            .iter()
            .filter(|e| !e.bursts.is_empty())
            .map(|e| e.epoch)
            .collect();
        assert_eq!(burst_epochs, vec![3, 7], "every 4th epoch bursts");
        assert!(stats.bursts >= 2);
        assert_eq!(stats.recoveries.len(), stats.epochs.iter().filter(|e| !e.bursts.is_empty()).count());
    }

    #[test]
    fn autoscaler_state_machine() {
        let slo = SloConfig::default();
        let mut a = Autoscaler::new(AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 4,
            scale_up_step: 2,
            healthy_epochs_to_scale_down: 2,
        });
        // Breach: up by step.
        assert_eq!(a.decide(1, 0.5, &slo), (3, ScaleDecision::Up(2)));
        // Breach at the ceiling: clamped.
        assert_eq!(a.decide(3, 0.5, &slo), (4, ScaleDecision::Up(1)));
        assert_eq!(a.decide(4, 0.5, &slo), (4, ScaleDecision::Hold));
        // Healthy run: retire one after the streak.
        assert_eq!(a.decide(4, 0.0, &slo), (4, ScaleDecision::Hold));
        assert_eq!(a.decide(4, 0.0, &slo), (3, ScaleDecision::Down));
        // Streak resets after a retire.
        assert_eq!(a.decide(3, 0.0, &slo), (3, ScaleDecision::Hold));
        assert_eq!(a.decide(3, 0.0, &slo), (2, ScaleDecision::Down));
        // Floor.
        assert_eq!(a.decide(1, 0.0, &slo), (1, ScaleDecision::Hold));
        assert_eq!(a.decide(1, 0.0, &slo), (1, ScaleDecision::Hold));
    }

    #[test]
    fn diurnal_rate_swings_and_bursts_multiply() {
        let spec = FleetWorkloadSpec {
            burst_probability: 0.0,
            ..FleetWorkloadSpec::default()
        };
        let base = spec.users as f64 / 1e6 * spec.rate_per_million_users;
        // Epoch 2 of an 8-epoch day sits at the sinusoid peak.
        assert!((spec.rate(0, 2) - base * 1.5).abs() < 1e-9);
        // Epoch 6 sits at the trough.
        assert!((spec.rate(0, 6) - base * 0.5).abs() < 1e-9);
        let bursty = FleetWorkloadSpec {
            burst_probability: 1.0,
            ..spec
        };
        assert!((bursty.rate(0, 2) - base * 1.5 * bursty.burst_multiplier).abs() < 1e-9);
    }

    #[test]
    fn scale_up_spawns_cold_replicas_that_rebuild() {
        let (gpu, geom) = setup();
        // An unattainable latency SLO breaches every epoch, forcing
        // scale-up to the ceiling; each spawned replica must warm up
        // through the kill/rebuild path without losing a token.
        let cfg = FleetConfig {
            epochs: 4,
            slo: SloConfig {
                latency_slo: 1e-6,
                ..SloConfig::default()
            },
            burst_every: 0,
            workload: FleetWorkloadSpec {
                requests_per_epoch: 6,
                ..FleetWorkloadSpec::default()
            },
            ..FleetConfig::default()
        };
        let stats = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &cfg, 5, None);
        assert!(stats.scale_ups > 0, "breaching SLO must scale up");
        assert!(
            stats.epochs.iter().any(|e| e.spawned > 0),
            "scale-up must spawn cold replicas"
        );
        let peak = stats.epochs.iter().map(|e| e.replicas).max().unwrap_or(0);
        assert!(peak > cfg.autoscaler.min_replicas);
        assert!(peak <= cfg.autoscaler.max_replicas);
        // Spawn warm-ups count as kills and rebuild losslessly.
        assert!(stats.kills >= stats.epochs.iter().map(|e| e.spawned).sum::<usize>());
        assert_eq!(stats.lost_tokens, 0);
        assert_eq!(
            stats.recovered_tokens + stats.reprefilled_tokens,
            stats.kills * cfg.replica_set.prefix_tokens
        );
    }

    #[test]
    fn sustained_health_drains_back_down() {
        let (gpu, geom) = setup();
        // A permissive SLO keeps every epoch healthy; starting above the
        // floor, the fleet must drain-then-retire down to it.
        let cfg = FleetConfig {
            epochs: 10,
            slo: SloConfig {
                latency_slo: 1e9,
                ..SloConfig::default()
            },
            burst_every: 0,
            workload: FleetWorkloadSpec {
                requests_per_epoch: 6,
                ..FleetWorkloadSpec::default()
            },
            replica_set: ReplicaSetConfig {
                replicas: 3,
                prefix_tokens: 64,
                prefix_dim: 4,
                ..ReplicaSetConfig::default()
            },
            ..FleetConfig::default()
        };
        let stats = run_fleet(&gpu, &geom, AttnMethod::FlashFp16, &cfg, 9, None);
        assert!(stats.scale_downs > 0, "healthy fleet must retire replicas");
        assert_eq!(
            stats.epochs.last().map(|e| e.replicas),
            Some(cfg.autoscaler.min_replicas),
            "fleet should settle at the floor"
        );
        assert_eq!(stats.accounted(), stats.total);
        assert_eq!(stats.lost_tokens, 0);
    }
}
