//! Continuous-batching scheduler: a request [`Queue`] plus an event-loop
//! [`Scheduler`] that re-forms the running batch every decode step.
//!
//! The serialized engine in [`crate::serving`] admits one request per
//! sweep and prefills it against the *entire* running decode batch: a
//! long prompt stalls every in-flight generation until it finishes. The
//! scheduler here follows the TGI `Infer`/`Queue` shape instead:
//!
//! * **Chunked prefill / decode interleaving** — a prompt is consumed in
//!   [`SchedulerConfig::prefill_chunk`]-token chunks, one per engine
//!   step, fused with the step's decode batch. Decoding sequences stall
//!   behind at most one chunk, never a whole prompt. The incremental
//!   chunk cost is derived from the kernel cost model
//!   (`prefill(ctx+chunk) − prefill(ctx)` plus a per-chunk launch and a
//!   per-chunk weight pass), so a fully chunked prefill costs what the
//!   monolithic one did plus the honest re-launch overhead.
//! * **Budgeted batch re-formation** — every step the scheduler may
//!   admit waiting requests, bounded by
//!   [`SchedulerConfig::max_batch_prefill_tokens`] (prompt-chunk tokens
//!   entering one step), [`SchedulerConfig::max_batch_total_tokens`]
//!   (reserved `prompt + gen` footprint across the batch),
//!   [`SchedulerConfig::max_batch_size`], and device memory.
//! * **`waiting_served_ratio` admission policy** — a running batch is
//!   only interrupted for a prefill when the eligible queue is at least
//!   `waiting_served_ratio ×` the running batch, or when
//!   [`SchedulerConfig::max_waiting_tokens`] decode steps have passed
//!   since the last prefill (bounding time-to-first-token), or when the
//!   device is idle.
//! * **Per-request deadlines** — waiting requests past their deadline
//!   are shed as rejections, prefilling ones are shed before any token
//!   is produced, decoding ones are truncated at token emission,
//!   exactly as the serialized engine did.
//! * **Streaming token delivery** — every generated token is emitted as
//!   a [`TokenEvent`] at the simulated instant its decode step
//!   completes; callers can observe the stream with
//!   [`simulate_serving_continuous_streamed`].
//!
//! The scheduler sits on the same paged-KV-pool `try_*` hot path as the
//! serialized engine (fork on admission, append per token, release on
//! finish; any cache fault degrades to a rejection) and its decode steps
//! evaluate per-sequence kernel latencies as pooled `turbo_runtime`
//! tasks, bit-identical at any worker count — the property suite pins
//! [`SchedulerStats`] equality across 1/2/8 workers.
//!
//! `simulate_serving_robust*` (and therefore `gpusim::replica`,
//! `gpusim::fleet`, the chaos/crash soaks, and the exactly-once ledger)
//! all run on this scheduler now; the serialized loop survives only in
//! the plain [`crate::serving::simulate_serving`] reference simulator.

use crate::endtoend::linear_time;
use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::kernels::{decode_latency, prefill_latency};
use crate::memory::fits_in_memory;
use crate::method::AttnMethod;
use crate::serving::{RequestSpec, RobustServingStats, ServingPolicy};
use std::sync::Mutex;
use turbo_kvcache::{PagedKvPool, SeqId};
use turbo_robust::{percentile, HealthEvent, HealthStats};
use turbo_runtime::{LayerPipeline, WorkClass};

/// Batch-formation budgets of the continuous-batching scheduler (the
/// TGI `Queue` knobs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Prompt tokens consumed per sequence per engine step. Smaller
    /// chunks interleave tighter (lower decode stall) at more launch
    /// overhead.
    pub prefill_chunk: usize,
    /// Budget of prompt-chunk tokens processed in one engine step,
    /// across all prefilling sequences (admission + continuation).
    pub max_batch_prefill_tokens: usize,
    /// Cap on the reserved `prompt + gen` footprint summed over the
    /// running batch. `usize::MAX` leaves capacity to the memory model.
    pub max_batch_total_tokens: usize,
    /// Decode steps tolerated since the last prefill before the queue
    /// is served regardless of the ratio policy (bounds TTFT).
    pub max_waiting_tokens: usize,
    /// A running batch is interrupted for a prefill only when the
    /// eligible queue is at least this multiple of the running batch
    /// (or `max_waiting_tokens` expired, or the device is idle).
    pub waiting_served_ratio: f64,
    /// Hard cap on concurrently running sequences.
    pub max_batch_size: usize,
}

impl Default for SchedulerConfig {
    /// 512-token chunks, 4096 prefill tokens per step, unbounded total
    /// tokens (memory-capped), serve the queue after 4 decode steps or
    /// at 1.2× pressure, up to 1024 concurrent sequences.
    fn default() -> Self {
        Self {
            prefill_chunk: 512,
            max_batch_prefill_tokens: 4096,
            max_batch_total_tokens: usize::MAX,
            max_waiting_tokens: 4,
            waiting_served_ratio: 1.2,
            max_batch_size: 1024,
        }
    }
}

impl SchedulerConfig {
    /// Panics on degenerate budgets (caller error).
    fn validate(&self) {
        assert!(self.prefill_chunk >= 1, "prefill chunk must be positive");
        assert!(
            self.max_batch_prefill_tokens >= 1,
            "per-step prefill budget must be positive"
        );
        assert!(
            self.max_batch_total_tokens >= 1,
            "total-token budget must be positive"
        );
        assert!(self.max_batch_size >= 1, "batch size cap must be positive");
        assert!(
            self.waiting_served_ratio.is_finite() && self.waiting_served_ratio >= 0.0,
            "waiting/served ratio must be finite and non-negative"
        );
    }
}

/// One streamed token: request index, zero-based token index within the
/// request, and the simulated time its decode step completed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenEvent {
    /// Index of the request in the submitted slice.
    pub req: usize,
    /// Zero-based index of the token within the request's generation.
    pub index: usize,
    /// Simulated delivery time in seconds.
    pub time: f64,
}

/// One engine step's record — the property suite asserts the budgets
/// hold on every entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepRecord {
    /// Zero-based step index.
    pub index: usize,
    /// Simulated time at the start of the step.
    pub start: f64,
    /// Step duration in seconds (prefill part + decode part).
    pub duration: f64,
    /// Requests admitted into the batch at this step.
    pub admitted: usize,
    /// Sequences granted a prompt chunk this step.
    pub prefill_seqs: usize,
    /// Prompt-chunk tokens processed this step
    /// (`≤ max_batch_prefill_tokens`).
    pub prefill_tokens: usize,
    /// Sequences that each produced one token this step.
    pub decode_batch: usize,
    /// Reserved `prompt + gen` footprint of the running batch after
    /// admission (`≤ max_batch_total_tokens`).
    pub reserved_tokens: usize,
    /// Running batch size after admission (`≤ max_batch_size`).
    pub batch: usize,
    /// Requests that finished (complete or truncated) this step.
    pub finished: usize,
}

/// Scheduler result: the serving-compatible ledger plus the scheduling
/// telemetry the serialized engine could not produce.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerStats {
    /// The exactly-once serving ledger and latency aggregates, shaped
    /// like the serialized robust engine's output so replica/fleet
    /// consume it unchanged.
    pub serving: RobustServingStats,
    /// Per-step records, in order.
    pub steps: Vec<StepRecord>,
    /// Steps that processed at least one prompt chunk.
    pub prefill_steps: usize,
    /// Steps that decoded at least one token.
    pub decode_steps: usize,
    /// Tokens delivered through the stream (== generated tokens).
    pub streamed_tokens: usize,
    /// Mean time-to-first-token of sequences that produced output.
    pub mean_ttft: f64,
    /// 95th-percentile time-to-first-token (nearest-rank).
    pub p95_ttft: f64,
    /// Largest per-step prompt-chunk token count observed.
    pub peak_step_prefill_tokens: usize,
    /// Largest reserved-footprint observed across steps.
    pub peak_reserved_tokens: usize,
}

#[derive(Clone, Copy, Debug)]
struct WaitingReq {
    req: usize,
    attempts: u32,
    next_try: f64,
}

/// Arrival-ordered waiting queue with deadline shedding and
/// backoff-aware eligibility (the TGI `Queue`).
#[derive(Clone, Debug, Default)]
pub struct Queue {
    entries: Vec<WaitingReq>,
}

impl Queue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Waiting requests (including ones backing off).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Requests whose backoff expired by `now` — the population the
    /// `waiting_served_ratio` policy weighs against the running batch.
    pub fn eligible(&self, now: f64) -> usize {
        self.entries.iter().filter(|w| w.next_try <= now).count()
    }

    fn push(&mut self, req: usize, arrival: f64) {
        self.entries.push(WaitingReq {
            req,
            attempts: 0,
            next_try: arrival,
        });
    }

    fn earliest_retry(&self) -> f64 {
        self.entries
            .iter()
            .map(|w| w.next_try)
            .fold(f64::INFINITY, f64::min)
    }
}

fn record(health: Option<&HealthStats>, event: HealthEvent) {
    if let Some(h) = health {
        h.record(event);
    }
}

/// Incremental attention cost of prefilling `chunk` prompt tokens on top
/// of `ctx` resident ones, against an explicit geometry: the cost-model
/// delta plus a per-chunk kernel launch. The monolithic path passes the
/// whole model; the pipelined per-layer tasks pass a single-layer
/// geometry and sum. The per-chunk weight pass (`linear_time`) is
/// whole-model either way, so the caller adds it once.
fn chunk_attn_cost(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    ctx: usize,
    chunk: usize,
) -> f64 {
    let full = prefill_latency(gpu, geom, method, 1, ctx + chunk);
    if ctx == 0 {
        full.total()
    } else {
        let prev = prefill_latency(gpu, geom, method, 1, ctx);
        (full.total() - prev.total()).max(0.0) + full.launch
    }
}

#[derive(Clone, Copy, Debug)]
struct Seq {
    req: usize,
    /// Prompt tokens not yet prefilled (0 = decoding).
    remaining_prefill: usize,
    /// Tokens resident in the KV cache (prefilled + generated).
    ctx: usize,
    generated: usize,
    kv: Option<SeqId>,
}

/// The continuous-batching event loop. Construct with
/// [`Scheduler::new`], drive with [`Scheduler::step`] until it returns
/// `false`, then take the stats with [`Scheduler::finish`] — or use the
/// `simulate_serving_continuous*` wrappers that do exactly that.
pub struct Scheduler<'a> {
    gpu: GpuSpec,
    geom: &'a ModelGeometry,
    method: AttnMethod,
    requests: &'a [RequestSpec],
    policy: &'a ServingPolicy,
    cfg: SchedulerConfig,
    paged: Option<(&'a mut PagedKvPool, SeqId)>,
    rt: Option<&'a turbo_runtime::Runtime>,
    health: Option<&'a HealthStats>,
    /// When set, every step's prefill and decode costs are issued as
    /// per-`(sequence, layer)` [`LayerPipeline`] tasks and joined once
    /// (see [`Scheduler::step_costs_pipelined`]); when clear, the
    /// monolithic whole-model cost formulas run inline.
    pipelined: bool,

    now: f64,
    next_arrival: usize,
    queue: Queue,
    running: Vec<Seq>,
    /// Reserved `prompt + gen` footprint of `running` (kept incremental
    /// so admission sweeps stay O(queue), not O(queue × batch)).
    reserved: usize,
    steps_since_prefill: usize,

    admit_time: Vec<f64>,
    finish_time: Vec<f64>,
    first_token: Vec<f64>,
    generated: Vec<usize>,
    truncated_flag: Vec<bool>,
    rejected: usize,
    deadline_misses: usize,
    admission_retries: u64,
    demotions: u64,
    peak_batch: usize,
    streamed: usize,
    steps: Vec<StepRecord>,
}

impl<'a> Scheduler<'a> {
    /// Builds a scheduler over `requests` (sorted by arrival).
    ///
    /// # Panics
    ///
    /// Panics on caller errors: empty/unsorted `requests`, a
    /// non-positive backoff or HBM fraction in `policy`, or degenerate
    /// budgets in `policy.sched`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        gpu: &GpuSpec,
        geom: &'a ModelGeometry,
        method: AttnMethod,
        requests: &'a [RequestSpec],
        policy: &'a ServingPolicy,
        paged: Option<(&'a mut PagedKvPool, SeqId)>,
        rt: Option<&'a turbo_runtime::Runtime>,
        health: Option<&'a HealthStats>,
    ) -> Self {
        assert!(!requests.is_empty(), "no requests to serve");
        for w in requests.windows(2) {
            assert!(
                w[0].arrival <= w[1].arrival,
                "requests must be sorted by arrival"
            );
        }
        assert!(
            policy.admission_backoff > 0.0,
            "admission backoff must be positive"
        );
        assert!(
            policy.hbm_usable_fraction > 0.0 && policy.hbm_usable_fraction <= 1.0,
            "usable HBM fraction must be in (0, 1]"
        );
        policy.sched.validate();

        // Simulated memory pressure: co-tenants shrink the usable device.
        let mut gpu = *gpu;
        gpu.hbm_capacity *= policy.hbm_usable_fraction;

        let n = requests.len();
        Self {
            gpu,
            geom,
            method,
            requests,
            policy,
            cfg: policy.sched,
            paged,
            rt,
            health,
            pipelined: false,
            now: 0.0,
            next_arrival: 0,
            queue: Queue::new(),
            running: Vec::new(),
            reserved: 0,
            steps_since_prefill: 0,
            admit_time: vec![f64::NAN; n],
            finish_time: vec![f64::NAN; n],
            first_token: vec![f64::NAN; n],
            generated: vec![0; n],
            truncated_flag: vec![false; n],
            rejected: 0,
            deadline_misses: 0,
            admission_retries: 0,
            demotions: 0,
            peak_batch: 0,
            streamed: 0,
            steps: Vec::new(),
        }
    }

    /// The waiting queue (for inspection in tests/harnesses).
    pub fn queue(&self) -> &Queue {
        &self.queue
    }

    /// Switches this scheduler to the pipelined step: all layers' prefill
    /// and decode work is issued as tagged [`LayerPipeline`] tasks and
    /// joined once per step. With a runtime attached the layer tasks run
    /// pooled; without one the same pipeline runs serially in issue
    /// order — the two are bit-identical at any worker count.
    pub fn with_pipelined_steps(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    fn demoted_method(&self) -> Option<AttnMethod> {
        match (self.method, self.policy.degrade_bits) {
            (AttnMethod::Turbo { kv_bits }, Some(target)) if target < kv_bits => {
                Some(AttnMethod::Turbo { kv_bits: target })
            }
            _ => None,
        }
    }

    /// Whether a batch reserving `total` tokens fits the budgets at
    /// method `m` (token budget is method-independent; memory is not).
    fn fits(&self, m: AttnMethod, total: usize) -> bool {
        total <= self.cfg.max_batch_total_tokens
            && fits_in_memory(&self.gpu, self.geom, m, 1, total.max(1))
    }

    fn release_kv(paged: &mut Option<(&'a mut PagedKvPool, SeqId)>, kv: &mut Option<SeqId>) {
        if let Some((pool, _)) = paged.as_mut() {
            if let Some(id) = kv.take() {
                let _ = pool.try_release(id);
            }
        }
    }

    /// Sheds waiting requests and prefilling sequences whose deadline
    /// passed; both are rejections (no output was produced).
    fn shed_expired(&mut self) {
        let deadline = self.policy.deadline;
        let now = self.now;
        let requests = self.requests;
        let (rejected, misses, health) = (&mut self.rejected, &mut self.deadline_misses, self.health);
        self.queue.entries.retain(|w| {
            if now - requests[w.req].arrival > deadline {
                *misses += 1;
                *rejected += 1;
                record(health, HealthEvent::DeadlineMiss);
                record(health, HealthEvent::RequestRejected);
                false
            } else {
                true
            }
        });
        let mut i = 0;
        while i < self.running.len() {
            let s = self.running[i];
            if s.remaining_prefill > 0 && now - requests[s.req].arrival > deadline {
                let mut seq = self.running.remove(i);
                self.reserved -= requests[seq.req].prompt + requests[seq.req].gen;
                Self::release_kv(&mut self.paged, &mut seq.kv);
                self.generated[seq.req] = 0;
                self.deadline_misses += 1;
                self.rejected += 1;
                record(self.health, HealthEvent::DeadlineMiss);
                record(self.health, HealthEvent::RequestRejected);
            } else {
                i += 1;
            }
        }
    }

    /// Whether the batch should be re-formed this step: idle device,
    /// TTFT bound expired, or the queue outweighs the batch.
    fn admission_due(&self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        if self.running.is_empty() || self.steps_since_prefill >= self.cfg.max_waiting_tokens {
            return true;
        }
        let min_size = (self.cfg.waiting_served_ratio * self.running.len() as f64).ceil() as usize;
        self.queue.eligible(self.now) >= min_size.max(1)
    }

    /// Admission sweep: admits eligible requests in arrival order under
    /// the prefill/total-token/batch-size/memory budgets; failed fits
    /// back off exponentially and reject after the retry budget (or
    /// immediately when infeasible even alone). Returns the number of
    /// requests admitted into the running batch.
    fn admit(&mut self) -> usize {
        let mut admitted = 0usize;
        let mut admit_tokens = 0usize;
        let mut i = 0usize;
        while i < self.queue.entries.len() {
            let w = self.queue.entries[i];
            if w.next_try > self.now {
                i += 1;
                continue;
            }
            let spec = self.requests[w.req];
            // Zero-length generation: nothing to prefill for, nothing to
            // decode — complete at admission with zero tokens attributed
            // (the old engine's decode loop minted one spurious token).
            if spec.gen == 0 {
                self.queue.entries.remove(i);
                self.admit_time[w.req] = self.now;
                self.finish_time[w.req] = self.now;
                continue;
            }
            if self.running.len() + 1 > self.cfg.max_batch_size {
                break; // batch full: defer the rest, not a failure
            }
            let first_chunk = spec
                .prompt
                .min(self.cfg.prefill_chunk)
                .min(self.cfg.max_batch_prefill_tokens);
            if admit_tokens + first_chunk > self.cfg.max_batch_prefill_tokens {
                break; // this step's prefill budget is spoken for
            }
            let total = self.reserved + spec.prompt + spec.gen;
            let mut fits_now = self.fits(self.method, total);
            if !fits_now {
                if let Some(lower) = self.demoted_method() {
                    // Demote the whole cache rather than shed this load.
                    if self.fits(lower, total) {
                        self.method = lower;
                        self.demotions += 1;
                        record(self.health, HealthEvent::PressureDemotion);
                        fits_now = true;
                    }
                }
            }
            if fits_now {
                // Forking the shared prefix goes through `try_fork`: a
                // corrupt or missing prefix degrades this admission to a
                // rejection instead of panicking the replica.
                let kv = match self.paged.as_mut() {
                    Some((pool, prefix)) => match pool.try_fork(*prefix) {
                        Ok(id) => Some(id),
                        Err(_) => {
                            self.queue.entries.remove(i);
                            self.rejected += 1;
                            record(self.health, HealthEvent::RequestRejected);
                            continue;
                        }
                    },
                    None => None,
                };
                self.queue.entries.remove(i);
                self.admit_time[w.req] = self.now;
                self.running.push(Seq {
                    req: w.req,
                    remaining_prefill: spec.prompt,
                    ctx: 0,
                    generated: 0,
                    kv,
                });
                self.reserved += spec.prompt + spec.gen;
                self.peak_batch = self.peak_batch.max(self.running.len());
                admitted += 1;
                admit_tokens += first_chunk;
                continue;
            }
            // Fit failure: count a retry; reject when the request cannot
            // fit even alone at the lowest allowed width, or the retry
            // budget is spent.
            let best = self.demoted_method().unwrap_or(self.method);
            let alone = spec.prompt + spec.gen <= self.cfg.max_batch_total_tokens
                && fits_in_memory(
                    &self.gpu,
                    self.geom,
                    best,
                    1,
                    (spec.prompt + spec.gen).max(1),
                );
            self.admission_retries += 1;
            record(self.health, HealthEvent::AdmissionRetry);
            if !alone || w.attempts >= self.policy.max_admission_retries {
                self.queue.entries.remove(i);
                self.rejected += 1;
                record(self.health, HealthEvent::RequestRejected);
                continue;
            }
            self.queue.entries[i].attempts += 1;
            self.queue.entries[i].next_try =
                self.now + self.policy.admission_backoff * f64::powi(2.0, w.attempts as i32);
            i += 1;
        }
        admitted
    }

    /// Incremental cost of prefilling `chunk` prompt tokens on top of
    /// `ctx` already-resident ones: the cost-model delta plus a
    /// per-chunk kernel launch and a per-chunk pass over the weights.
    /// Summed over a whole prompt this equals the monolithic prefill
    /// plus the honest re-launch/re-stream overhead of chunking.
    fn chunk_cost(&self, ctx: usize, chunk: usize) -> f64 {
        chunk_attn_cost(&self.gpu, self.geom, self.method, ctx, chunk)
            + linear_time(&self.gpu, self.geom, 1, chunk)
    }

    /// Computes one step's prefill and decode costs by issuing every
    /// layer's work as tagged [`LayerPipeline`] tasks and joining once.
    ///
    /// Each `(sequence, layer)` pair becomes one task — prompt chunks as
    /// [`WorkClass::PrefillChunk`], decode steps as
    /// [`WorkClass::DecodeStep`] — chained along the layer axis (layer
    /// `l` of a sequence depends on its own layer `l-1`) and fully
    /// independent across sequences, so layer `k+1` of one sequence
    /// overlaps layer `k` of another inside the single join. Every task
    /// is a pure cost-model evaluation writing its own slot, and the
    /// folds below run in fixed sequence-major, layer-ascending order,
    /// so the result is bit-identical at any worker count — including
    /// the serial reference used when no runtime is attached.
    ///
    /// The decomposition evaluates the kernel model at `layers = 1` and
    /// sums across layers. The model is mathematically linear in the
    /// layer count, but floating-point addition does not distribute
    /// bit-for-bit, so this path is its own reference and is compared
    /// against the monolithic [`Scheduler::step`] costs only up to
    /// rounding (the tests pin a tight relative tolerance). Per-chunk
    /// and per-step weight passes (`linear_time`) are whole-model by
    /// construction and are added once outside the pipeline.
    fn step_costs_pipelined(&self, grants: &[(usize, usize)], decode_ctx: &[usize]) -> (f64, f64) {
        let layers = self.geom.layers.max(1);
        let geom1 = ModelGeometry {
            layers: 1,
            ..*self.geom
        };
        let gpu = self.gpu;
        let method = self.method;
        let decode_batch = decode_ctx.len();

        // Resolve grant shapes before the tasks borrow anything.
        let grant_shapes: Vec<(usize, usize)> = grants
            .iter()
            .map(|&(idx, chunk)| (self.running[idx].ctx, chunk))
            .collect();

        let pcells: Vec<Mutex<f64>> = (0..grant_shapes.len() * layers)
            .map(|_| Mutex::new(0.0))
            .collect();
        let dcells: Vec<Mutex<f64>> = (0..decode_ctx.len() * layers)
            .map(|_| Mutex::new(0.0))
            .collect();

        let mut pipeline = LayerPipeline::new();
        for (i, &(ctx, chunk)) in grant_shapes.iter().enumerate() {
            let mut prev = None;
            for l in 0..layers {
                let cell = &pcells[i * layers + l];
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(pipeline.task(WorkClass::PrefillChunk, l, &deps, move || {
                    *cell.lock().unwrap() = chunk_attn_cost(&gpu, &geom1, method, ctx, chunk);
                }));
            }
        }
        for (j, &ctx) in decode_ctx.iter().enumerate() {
            let mut prev = None;
            for l in 0..layers {
                let cell = &dcells[j * layers + l];
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(pipeline.task(WorkClass::DecodeStep, l, &deps, move || {
                    *cell.lock().unwrap() =
                        decode_latency(&gpu, &geom1, method, decode_batch, ctx).total();
                }));
            }
        }
        match self.rt {
            Some(rt) => pipeline.run_on(rt),
            None => pipeline.run_serial(),
        };

        let prefill_time: f64 = grant_shapes
            .iter()
            .enumerate()
            .map(|(i, &(_, chunk))| {
                (0..layers)
                    .map(|l| *pcells[i * layers + l].lock().unwrap())
                    .sum::<f64>()
                    + linear_time(&gpu, self.geom, 1, chunk)
            })
            .sum();
        let decode_time = if decode_batch == 0 {
            0.0
        } else {
            let attn = (0..decode_ctx.len())
                .map(|j| {
                    (0..layers)
                        .map(|l| *dcells[j * layers + l].lock().unwrap())
                        .sum::<f64>()
                })
                .fold(0.0f64, f64::max);
            attn + linear_time(&gpu, self.geom, decode_batch, 1)
        };
        (prefill_time, decode_time)
    }

    /// Runs one engine step (admission + fused prefill/decode), emitting
    /// tokens into `sink`. Returns `false` once every request has
    /// reached a terminal state.
    pub fn step(&mut self, mut sink: Option<&mut dyn FnMut(TokenEvent)>) -> bool {
        // Ingest arrivals up to `now`, shed expired work.
        while self.next_arrival < self.requests.len()
            && self.requests[self.next_arrival].arrival <= self.now
        {
            self.queue
                .push(self.next_arrival, self.requests[self.next_arrival].arrival);
            self.next_arrival += 1;
        }
        self.shed_expired();

        let admitted = if self.admission_due() { self.admit() } else { 0 };

        if self.running.is_empty() {
            // Idle: jump to the next arrival or the earliest retry.
            let next_retry = self.queue.earliest_retry();
            let next_event = if self.next_arrival < self.requests.len() {
                next_retry.min(self.requests[self.next_arrival].arrival)
            } else {
                next_retry
            };
            if next_event.is_finite() {
                self.now = self.now.max(next_event);
                return true;
            }
            return false;
        }

        let start = self.now;

        // Grant prompt chunks in batch order under the per-step budget.
        let mut budget = self.cfg.max_batch_prefill_tokens;
        let mut grants: Vec<(usize, usize)> = Vec::new();
        let mut prefill_time = 0.0f64;
        for (idx, s) in self.running.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if s.remaining_prefill > 0 {
                let chunk = s.remaining_prefill.min(self.cfg.prefill_chunk).min(budget);
                if !self.pipelined {
                    prefill_time += self.chunk_cost(s.ctx, chunk);
                }
                grants.push((idx, chunk));
                budget -= chunk;
            }
        }
        let prefill_tokens: usize = grants.iter().map(|&(_, c)| c).sum();

        // One decode step for every sequence past its prompt. The step
        // finishes with its slowest member; the cost model is monotone
        // in context, so the pooled max is bitwise the serial
        // longest-context latency at any worker count.
        let decode_ctx: Vec<usize> = self
            .running
            .iter()
            .filter(|s| s.remaining_prefill == 0)
            .map(|s| s.ctx)
            .collect();
        let decode_batch = decode_ctx.len();
        let decode_time = if self.pipelined {
            // Pipelined step: all layers' prefill-chunk and decode work
            // issued as tagged tasks, one join for the whole step.
            let (p, d) = self.step_costs_pipelined(&grants, &decode_ctx);
            prefill_time = p;
            d
        } else if decode_batch == 0 {
            0.0
        } else {
            let attn = match self.rt {
                Some(rt) => rt
                    .par_map(&decode_ctx, |&ctx| {
                        decode_latency(&self.gpu, self.geom, self.method, decode_batch, ctx)
                            .total()
                    })
                    .into_iter()
                    .fold(0.0f64, f64::max),
                None => {
                    let max_ctx = decode_ctx.iter().copied().fold(0, usize::max);
                    decode_latency(&self.gpu, self.geom, self.method, decode_batch, max_ctx)
                        .total()
                }
            };
            attn + linear_time(&self.gpu, self.geom, decode_batch, 1)
        };

        self.now += prefill_time + decode_time;

        // Apply prefill progress.
        for &(idx, chunk) in &grants {
            self.running[idx].remaining_prefill -= chunk;
            self.running[idx].ctx += chunk;
        }

        // Footprint and batch size the step actually ran under (after
        // admission, before retirements below shrink them).
        let reserved_at_step = self.reserved;
        let batch_at_step = self.running.len();

        // Emit one token per decoding sequence; finish, truncate, or
        // keep. A paged append fault rejects that one request mid-flight
        // (released sequence, zeroed output) and the batch keeps going.
        let mut finished = 0usize;
        let mut still: Vec<Seq> = Vec::with_capacity(self.running.len());
        for mut s in std::mem::take(&mut self.running) {
            if s.remaining_prefill > 0 {
                still.push(s);
                continue;
            }
            let spec = self.requests[s.req];
            if let Some((pool, _)) = self.paged.as_mut() {
                if let Some(id) = s.kv {
                    let d = pool.head_dim();
                    let row: Vec<f32> = (0..d)
                        .map(|c| ((s.req * 31 + s.generated * 7 + c) % 97) as f32 * 1e-2)
                        .collect();
                    if pool.try_append(id, &row, &row).is_err() {
                        let _ = pool.try_release(id);
                        s.kv = None;
                        self.generated[s.req] = 0;
                        self.reserved -= spec.prompt + spec.gen;
                        self.rejected += 1;
                        record(self.health, HealthEvent::RequestRejected);
                        finished += 1;
                        continue;
                    }
                }
            }
            s.generated += 1;
            s.ctx += 1;
            self.generated[s.req] = s.generated;
            self.streamed += 1;
            if s.generated == 1 {
                self.first_token[s.req] = self.now - spec.arrival;
            }
            if let Some(f) = sink.as_mut() {
                f(TokenEvent {
                    req: s.req,
                    index: s.generated - 1,
                    time: self.now,
                });
            }
            let done = if s.generated >= spec.gen {
                self.finish_time[s.req] = self.now;
                true
            } else if self.now - spec.arrival > self.policy.deadline {
                // Out of time mid-generation: return what we have.
                self.finish_time[s.req] = self.now;
                self.truncated_flag[s.req] = true;
                self.deadline_misses += 1;
                record(self.health, HealthEvent::DeadlineMiss);
                true
            } else {
                still.push(s);
                false
            };
            if done {
                self.reserved -= spec.prompt + spec.gen;
                Self::release_kv(&mut self.paged, &mut s.kv);
                finished += 1;
            }
        }
        self.running = still;

        self.steps_since_prefill = if prefill_tokens > 0 {
            0
        } else {
            self.steps_since_prefill + 1
        };
        self.steps.push(StepRecord {
            index: self.steps.len(),
            start,
            duration: self.now - start,
            admitted,
            prefill_seqs: grants.len(),
            prefill_tokens,
            decode_batch,
            reserved_tokens: reserved_at_step,
            batch: batch_at_step,
            finished,
        });
        true
    }

    /// Consumes the scheduler and assembles the final statistics.
    pub fn finish(self) -> SchedulerStats {
        let requests = self.requests;
        let served: Vec<usize> = (0..requests.len())
            .filter(|&i| self.finish_time[i].is_finite())
            .collect();
        let completed = served.iter().filter(|&&i| !self.truncated_flag[i]).count();
        let truncated = served.len() - completed;
        let generated_tokens: usize = self.generated.iter().sum();
        let makespan = served
            .iter()
            .map(|&i| self.finish_time[i])
            .fold(0.0f64, f64::max);
        let mut latencies: Vec<f64> = served
            .iter()
            .map(|&i| self.finish_time[i] - requests[i].arrival)
            .collect();
        latencies.sort_by(f64::total_cmp);
        let (mean_latency, p95_latency, mean_queue_time) = if latencies.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            let queue: f64 = served
                .iter()
                .map(|&i| self.admit_time[i] - requests[i].arrival)
                .sum::<f64>()
                / served.len() as f64;
            (
                latencies.iter().sum::<f64>() / latencies.len() as f64,
                percentile(&latencies, 0.95),
                queue,
            )
        };
        let mut ttft: Vec<f64> = self
            .first_token
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .collect();
        ttft.sort_by(f64::total_cmp);
        let (mean_ttft, p95_ttft) = if ttft.is_empty() {
            (0.0, 0.0)
        } else {
            (
                ttft.iter().sum::<f64>() / ttft.len() as f64,
                percentile(&ttft, 0.95),
            )
        };

        let serving = RobustServingStats {
            completed,
            truncated,
            rejected: self.rejected,
            deadline_misses: self.deadline_misses,
            admission_retries: self.admission_retries,
            demotions: self.demotions,
            generated_tokens,
            makespan,
            throughput: if makespan > 0.0 {
                generated_tokens as f64 / makespan
            } else {
                0.0
            },
            mean_latency,
            p95_latency,
            mean_queue_time,
            peak_batch: self.peak_batch,
            latencies,
        };
        let prefill_steps = self.steps.iter().filter(|s| s.prefill_tokens > 0).count();
        let decode_steps = self.steps.iter().filter(|s| s.decode_batch > 0).count();
        let peak_step_prefill_tokens = self
            .steps
            .iter()
            .map(|s| s.prefill_tokens)
            .fold(0, usize::max);
        let peak_reserved_tokens = self
            .steps
            .iter()
            .map(|s| s.reserved_tokens)
            .fold(0, usize::max);
        SchedulerStats {
            serving,
            steps: self.steps,
            prefill_steps,
            decode_steps,
            streamed_tokens: self.streamed,
            mean_ttft,
            p95_ttft,
            peak_step_prefill_tokens,
            peak_reserved_tokens,
        }
    }
}

/// Core runner shared by every public entry point and by
/// `simulate_serving_robust*` in [`crate::serving`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_continuous(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    paged: Option<(&mut PagedKvPool, SeqId)>,
    rt: Option<&turbo_runtime::Runtime>,
    health: Option<&HealthStats>,
    mut sink: Option<&mut dyn FnMut(TokenEvent)>,
) -> SchedulerStats {
    let mut sched = Scheduler::new(gpu, geom, method, requests, policy, paged, rt, health);
    loop {
        // Fresh reborrow of the sink each iteration.
        let s = sink
            .as_mut()
            .map(|f| &mut **f as &mut dyn FnMut(TokenEvent));
        if !sched.step(s) {
            break;
        }
    }
    sched.finish()
}

/// Runs the continuous-batching scheduler over `requests` and returns
/// the full [`SchedulerStats`] (ledger + per-step telemetry).
///
/// # Panics
///
/// As [`Scheduler::new`] — caller errors only.
pub fn simulate_serving_continuous(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    health: Option<&HealthStats>,
) -> SchedulerStats {
    run_continuous(gpu, geom, method, requests, policy, None, None, health, None)
}

/// As [`simulate_serving_continuous`], but decode-step kernel latencies
/// are evaluated as pooled tasks on an explicit runtime (worker-count
/// equivalence tests; stats are bit-identical at any worker count).
pub fn simulate_serving_continuous_on(
    rt: &turbo_runtime::Runtime,
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    health: Option<&HealthStats>,
) -> SchedulerStats {
    run_continuous(
        gpu,
        geom,
        method,
        requests,
        policy,
        None,
        Some(rt),
        health,
        None,
    )
}

/// As [`simulate_serving_continuous`], but every engine step issues all
/// layers' prefill-chunk and decode work as tagged
/// [`LayerPipeline`] tasks and joins once — this entry point is the
/// serial reference for the pipelined scheduler (the tasks run in issue
/// order on the caller's thread).
///
/// The per-layer cost decomposition is mathematically equal to the
/// monolithic step but not bitwise (floating-point addition does not
/// distribute over the layer sum), so compare pipelined runs against
/// this reference, not against [`simulate_serving_continuous`].
pub fn simulate_serving_pipelined(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    health: Option<&HealthStats>,
) -> SchedulerStats {
    let mut sched =
        Scheduler::new(gpu, geom, method, requests, policy, None, None, health).with_pipelined_steps();
    while sched.step(None) {}
    sched.finish()
}

/// As [`simulate_serving_pipelined`], but the per-layer tasks run
/// pooled on `rt`, letting one sequence's layer `k+1` overlap another
/// sequence's layer `k` inside the step's single join. Stats are
/// bit-identical to [`simulate_serving_pipelined`] at any worker count.
pub fn simulate_serving_pipelined_on(
    rt: &turbo_runtime::Runtime,
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    health: Option<&HealthStats>,
) -> SchedulerStats {
    let mut sched = Scheduler::new(gpu, geom, method, requests, policy, None, Some(rt), health)
        .with_pipelined_steps();
    while sched.step(None) {}
    sched.finish()
}

/// As [`simulate_serving_continuous`], but every admitted request forks
/// a real [`PagedKvPool`] sequence off `prefix` and all cache traffic
/// goes through the pool's non-panicking `try_*` APIs — a fork error
/// rejects the admission, an append error rejects the request
/// mid-flight with zeroed output, and finish/truncation releases the
/// fork. With a healthy pool the trajectory is identical to the
/// unpooled run.
#[allow(clippy::too_many_arguments)]
pub fn simulate_serving_continuous_paged(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    pool: &mut PagedKvPool,
    prefix: SeqId,
    health: Option<&HealthStats>,
) -> SchedulerStats {
    run_continuous(
        gpu,
        geom,
        method,
        requests,
        policy,
        Some((pool, prefix)),
        None,
        health,
        None,
    )
}

/// As [`simulate_serving_continuous`], but every generated token is
/// delivered to `sink` at its simulated emission time — the streaming
/// interface a serving front end would expose per client.
pub fn simulate_serving_continuous_streamed(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    requests: &[RequestSpec],
    policy: &ServingPolicy,
    sink: &mut dyn FnMut(TokenEvent),
    health: Option<&HealthStats>,
) -> SchedulerStats {
    run_continuous(
        gpu,
        geom,
        method,
        requests,
        policy,
        None,
        None,
        health,
        Some(sink),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::uniform_workload;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    fn policy(sched: SchedulerConfig) -> ServingPolicy {
        ServingPolicy {
            sched,
            ..ServingPolicy::default()
        }
    }

    #[test]
    fn budgets_hold_on_every_step() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(32, 6.0, 1024, 24, 41);
        let cfg = SchedulerConfig {
            prefill_chunk: 256,
            max_batch_prefill_tokens: 768,
            max_batch_total_tokens: 24_000,
            max_batch_size: 12,
            ..SchedulerConfig::default()
        };
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy(cfg),
            None,
        );
        assert!(!stats.steps.is_empty());
        for s in &stats.steps {
            assert!(
                s.prefill_tokens <= cfg.max_batch_prefill_tokens,
                "step {} prefill {} over budget",
                s.index,
                s.prefill_tokens
            );
            assert!(
                s.reserved_tokens <= cfg.max_batch_total_tokens,
                "step {} reserved {} over budget",
                s.index,
                s.reserved_tokens
            );
            assert!(s.batch <= cfg.max_batch_size);
            assert!(s.duration > 0.0);
        }
        assert_eq!(
            stats.serving.completed + stats.serving.truncated + stats.serving.rejected,
            reqs.len()
        );
        assert_eq!(stats.serving.completed, reqs.len());
    }

    #[test]
    fn prefill_chunks_interleave_with_decode() {
        let (gpu, geom) = setup();
        // Long prompts arriving while earlier requests decode: some step
        // must carry both a prompt chunk and a decode batch — the thing
        // the serialized engine could never do.
        let reqs = uniform_workload(16, 12.0, 4096, 64, 9);
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy(SchedulerConfig::default()),
            None,
        );
        assert!(
            stats
                .steps
                .iter()
                .any(|s| s.prefill_tokens > 0 && s.decode_batch > 0),
            "no fused prefill+decode step found"
        );
        assert_eq!(stats.serving.completed, reqs.len());
        assert!(stats.prefill_steps > 0 && stats.decode_steps > 0);
    }

    #[test]
    fn streamed_tokens_are_exact_and_ordered() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(10, 4.0, 512, 12, 3);
        let mut events: Vec<TokenEvent> = Vec::new();
        let stats = simulate_serving_continuous_streamed(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy(SchedulerConfig::default()),
            &mut |e| events.push(e),
            None,
        );
        assert_eq!(events.len(), stats.serving.generated_tokens);
        assert_eq!(events.len(), stats.streamed_tokens);
        // Delivery times never go backwards.
        for w in events.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
        // Per request: contiguous indices 0..gen, strictly increasing
        // times.
        for (r, spec) in reqs.iter().enumerate() {
            let mine: Vec<&TokenEvent> = events.iter().filter(|e| e.req == r).collect();
            assert_eq!(mine.len(), spec.gen);
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.index, i);
            }
            for w in mine.windows(2) {
                assert!(w[1].time > w[0].time);
            }
        }
    }

    #[test]
    fn stats_bit_identical_across_worker_counts() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(24, 6.0, 1024, 32, 77);
        let cfg = SchedulerConfig {
            prefill_chunk: 384,
            max_batch_prefill_tokens: 1536,
            ..SchedulerConfig::default()
        };
        for method in [AttnMethod::FlashFp16, AttnMethod::Turbo { kv_bits: 3.0 }] {
            let serial = simulate_serving_continuous(
                &gpu,
                &geom,
                method,
                &reqs,
                &policy(cfg),
                None,
            );
            for workers in [1usize, 2, 8] {
                let rt = turbo_runtime::Runtime::with_workers(workers);
                let pooled = simulate_serving_continuous_on(
                    &rt,
                    &gpu,
                    &geom,
                    method,
                    &reqs,
                    &policy(cfg),
                    None,
                );
                assert_eq!(serial, pooled, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn pipelined_stats_bit_identical_across_worker_counts() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(24, 6.0, 1024, 32, 77);
        let cfg = SchedulerConfig {
            prefill_chunk: 384,
            max_batch_prefill_tokens: 1536,
            ..SchedulerConfig::default()
        };
        for method in [AttnMethod::FlashFp16, AttnMethod::Turbo { kv_bits: 3.0 }] {
            let serial =
                simulate_serving_pipelined(&gpu, &geom, method, &reqs, &policy(cfg), None);
            for workers in [1usize, 2, 8] {
                let rt = turbo_runtime::Runtime::with_workers(workers);
                let pooled = simulate_serving_pipelined_on(
                    &rt,
                    &gpu,
                    &geom,
                    method,
                    &reqs,
                    &policy(cfg),
                    None,
                );
                assert_eq!(serial, pooled, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn pipelined_step_costs_match_monolithic_within_rounding() {
        // The per-layer decomposition is mathematically linear in the
        // layer count; only floating-point rounding separates it from
        // the monolithic formulas. The trajectories should agree step
        // for step with durations within a tight relative tolerance.
        let (gpu, geom) = setup();
        let reqs = uniform_workload(16, 6.0, 768, 24, 19);
        let cfg = SchedulerConfig {
            prefill_chunk: 256,
            max_batch_prefill_tokens: 1024,
            ..SchedulerConfig::default()
        };
        let mono = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &reqs,
            &policy(cfg),
            None,
        );
        let piped = simulate_serving_pipelined(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &reqs,
            &policy(cfg),
            None,
        );
        assert_eq!(mono.steps.len(), piped.steps.len());
        for (m, p) in mono.steps.iter().zip(&piped.steps) {
            assert_eq!(m.admitted, p.admitted, "step {}", m.index);
            assert_eq!(m.prefill_tokens, p.prefill_tokens, "step {}", m.index);
            assert_eq!(m.decode_batch, p.decode_batch, "step {}", m.index);
            assert_eq!(m.finished, p.finished, "step {}", m.index);
            let scale = m.duration.abs().max(1e-12);
            assert!(
                (m.duration - p.duration).abs() / scale < 1e-9,
                "step {} duration {} vs {}",
                m.index,
                m.duration,
                p.duration
            );
        }
        assert_eq!(mono.serving.completed, piped.serving.completed);
        let rel = (mono.serving.makespan - piped.serving.makespan).abs()
            / mono.serving.makespan.max(1e-12);
        assert!(rel < 1e-9, "makespan diverged by {rel}");
    }

    #[test]
    fn pipelined_budgets_hold_and_ledger_accounts_all_requests() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(32, 6.0, 1024, 24, 41);
        let cfg = SchedulerConfig {
            prefill_chunk: 256,
            max_batch_prefill_tokens: 768,
            max_batch_total_tokens: 24_000,
            max_batch_size: 12,
            ..SchedulerConfig::default()
        };
        let rt = turbo_runtime::Runtime::with_workers(2);
        let stats = simulate_serving_pipelined_on(
            &rt,
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            &reqs,
            &policy(cfg),
            None,
        );
        assert!(!stats.steps.is_empty());
        for s in &stats.steps {
            assert!(s.prefill_tokens <= cfg.max_batch_prefill_tokens);
            assert!(s.reserved_tokens <= cfg.max_batch_total_tokens);
            assert!(s.batch <= cfg.max_batch_size);
        }
        let ledger =
            stats.serving.completed + stats.serving.truncated + stats.serving.rejected;
        assert_eq!(ledger, reqs.len(), "every request must reach a terminal state");
        assert_eq!(stats.streamed_tokens, stats.serving.generated_tokens);
    }

    #[test]
    fn total_token_budget_throttles_concurrency_without_shedding() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(20, 50.0, 512, 8, 13);
        let tight = SchedulerConfig {
            max_batch_total_tokens: 2 * (512 + 8),
            ..SchedulerConfig::default()
        };
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy(tight),
            None,
        );
        assert!(stats.peak_reserved_tokens <= tight.max_batch_total_tokens);
        assert!(stats.serving.peak_batch <= 2);
        // Backoff retries, never rejections: everything still completes.
        assert_eq!(stats.serving.completed, reqs.len());
        assert!(stats.serving.admission_retries > 0);
    }

    #[test]
    fn max_waiting_tokens_bounds_queue_starvation() {
        let (gpu, geom) = setup();
        // An (effectively) infinite waiting/served ratio means the ratio
        // trigger never fires; only the max_waiting_tokens clock admits
        // late arrivals into a running batch. Everything must still
        // complete.
        let reqs = uniform_workload(16, 10.0, 768, 48, 21);
        let cfg = SchedulerConfig {
            waiting_served_ratio: 1e12,
            max_waiting_tokens: 3,
            ..SchedulerConfig::default()
        };
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy(cfg),
            None,
        );
        assert_eq!(stats.serving.completed, reqs.len());
        assert!(stats.mean_ttft.is_finite() && stats.mean_ttft > 0.0);
        assert!(stats.p95_ttft >= stats.mean_ttft * 0.1);
    }

    #[test]
    fn gen_zero_requests_finish_at_admission() {
        let (gpu, geom) = setup();
        let mut reqs = uniform_workload(8, 5.0, 256, 6, 2);
        reqs[0].gen = 0;
        reqs[5].gen = 0;
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &policy(SchedulerConfig::default()),
            None,
        );
        assert_eq!(stats.serving.completed, reqs.len());
        assert_eq!(
            stats.serving.generated_tokens,
            reqs.iter().map(|r| r.gen).sum::<usize>()
        );
        assert_eq!(stats.streamed_tokens, stats.serving.generated_tokens);
    }

    #[test]
    fn deadline_sheds_are_exact() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(24, 12.0, 2048, 64, 31);
        let pol = ServingPolicy {
            deadline: 1.5,
            ..ServingPolicy::default()
        };
        let health = HealthStats::new();
        let stats = simulate_serving_continuous(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            &reqs,
            &pol,
            Some(&health),
        );
        let s = &stats.serving;
        assert_eq!(s.completed + s.truncated + s.rejected, reqs.len());
        assert!(s.deadline_misses > 0, "1.5s deadline must bite");
        assert_eq!(
            health.count(HealthEvent::DeadlineMiss),
            s.deadline_misses as u64
        );
        // A truncated request exceeded its deadline by at most one step;
        // completed ones can finish at any time (they beat their token
        // count, not the clock) but truncations must be *past* deadline.
        let max_lat = s.latencies.iter().copied().fold(0.0f64, f64::max);
        if s.truncated > 0 {
            assert!(max_lat > pol.deadline);
        }
    }

    #[test]
    fn scheduler_run_is_deterministic() {
        let (gpu, geom) = setup();
        let reqs = uniform_workload(20, 6.0, 1024, 24, 55);
        let pol = ServingPolicy {
            deadline: 5.0,
            hbm_usable_fraction: 0.9,
            ..ServingPolicy::default()
        };
        let a = simulate_serving_continuous(&gpu, &geom, AttnMethod::FlashFp16, &reqs, &pol, None);
        let b = simulate_serving_continuous(&gpu, &geom, AttnMethod::FlashFp16, &reqs, &pol, None);
        assert_eq!(a, b);
    }
}
