//! End-to-end generation latency: linear layers + attention, prefill +
//! decode (Figures 1a and 1c).

use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::kernels::{decode_latency, prefill_latency};
use crate::method::AttnMethod;

/// End-to-end latency decomposition of one generation request.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EndToEndBreakdown {
    /// Linear-layer (QKV/O projection + FFN) time across prefill+decode.
    pub linear: f64,
    /// Attention matmul + KV-load time.
    pub attn_matmul_kv: f64,
    /// Softmax time.
    pub softmax: f64,
    /// KV (de)compression time.
    pub dequant: f64,
    /// Launch and other fixed overheads.
    pub other: f64,
}

impl EndToEndBreakdown {
    /// Total latency in seconds.
    pub fn total(&self) -> f64 {
        self.linear + self.attn_matmul_kv + self.softmax + self.dequant + self.other
    }

    /// Fraction of end-to-end time spent in the attention mechanism
    /// (everything except the linear layers) — the Figure 1a curve.
    pub fn attention_share(&self) -> f64 {
        1.0 - self.linear / self.total()
    }
}

/// Linear-layer time for `tokens` tokens: weight streaming vs tensor-core
/// math, whichever binds (weights dominate at decode, math at prefill).
pub fn linear_time(gpu: &GpuSpec, geom: &ModelGeometry, batch: usize, tokens: usize) -> f64 {
    let t = (batch * tokens) as f64;
    let math = t * geom.linear_macs_per_token() / gpu.fp16_tensor_macs;
    // One pass over the weights per forward step (decode streams all
    // weights for every token; prefill amortizes over the whole batch).
    let mem = geom.weight_bytes() / gpu.hbm_bandwidth;
    math.max(mem)
}

/// Full-request latency breakdown: prefill over `prompt` tokens then
/// `gen` decode steps, at the given batch size.
///
/// # Panics
///
/// Panics if `batch == 0`, `prompt == 0`, or `gen == 0`.
pub fn generation_breakdown(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    batch: usize,
    prompt: usize,
    gen: usize,
) -> EndToEndBreakdown {
    assert!(batch > 0 && prompt > 0 && gen > 0, "sizes must be positive");

    let mut bd = EndToEndBreakdown::default();

    // Prefill.
    let p = prefill_latency(gpu, geom, method, batch, prompt);
    let p_compute = p.matmul + p.softmax + p.quant;
    // Attribute overlapped prefill time to its dominant lanes.
    let attn_core = p.mem.max(p_compute);
    let softmax_share = if p_compute > 0.0 {
        p.softmax / p_compute
    } else {
        0.0
    };
    bd.softmax += attn_core * softmax_share;
    bd.attn_matmul_kv += attn_core * (1.0 - softmax_share);
    bd.dequant += p.dequant;
    bd.other += p.launch;
    bd.linear += linear_time(gpu, geom, batch, prompt);

    // Decode: one step per generated token, cache growing from `prompt`.
    for step in 0..gen {
        let d = decode_latency(gpu, geom, method, batch, prompt + step);
        bd.attn_matmul_kv += d.mem + d.matmul;
        bd.softmax += d.softmax;
        bd.dequant += d.dequant;
        bd.other += d.launch;
        bd.linear += linear_time(gpu, geom, batch, 1);
    }
    bd
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    #[test]
    fn attention_share_grows_with_prompt_length() {
        // Figure 1a: with prompt:output = 8:1, the attention share rises
        // toward ~80 % at long contexts.
        let (gpu, geom) = setup();
        let mut last = 0.0;
        for prompt in [1024usize, 8192, 32768, 81920] {
            let gen = (prompt / 8).max(1);
            let bd = generation_breakdown(&gpu, &geom, AttnMethod::FlashFp16, 1, prompt, gen);
            let share = bd.attention_share();
            assert!(share > last, "share must grow: {share} after {last}");
            last = share;
        }
        assert!(last > 0.6, "share at 80k should be large, got {last}");
    }

    #[test]
    fn attention_share_small_at_short_prompts() {
        let (gpu, geom) = setup();
        let bd = generation_breakdown(&gpu, &geom, AttnMethod::FlashFp16, 1, 512, 64);
        assert!(bd.attention_share() < 0.5);
    }

    #[test]
    fn turbo_end_to_end_beats_fp16_at_long_context() {
        let (gpu, geom) = setup();
        let fp = generation_breakdown(&gpu, &geom, AttnMethod::FlashFp16, 4, 8192, 256).total();
        let tb = generation_breakdown(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            4,
            8192,
            256,
        )
        .total();
        assert!(tb < fp, "turbo {tb} vs fp16 {fp}");
    }

    #[test]
    fn kivi_dequant_lane_visible_in_end_to_end() {
        // Figure 1c: the baselines' dequantization is a visible share.
        let (gpu, geom) = setup();
        let kivi = generation_breakdown(&gpu, &geom, AttnMethod::Kivi { bits: 4.0 }, 4, 8192, 256);
        assert!(kivi.dequant / kivi.total() > 0.1);
        let turbo = generation_breakdown(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            4,
            8192,
            256,
        );
        assert!(turbo.dequant / turbo.total() < 0.08);
    }

    #[test]
    fn breakdown_components_are_positive() {
        let (gpu, geom) = setup();
        let bd = generation_breakdown(&gpu, &geom, AttnMethod::FlashFp16, 2, 2048, 128);
        assert!(bd.linear > 0.0);
        assert!(bd.attn_matmul_kv > 0.0);
        assert!(bd.softmax > 0.0);
        assert!(bd.other > 0.0);
        assert!((bd.attention_share()).is_finite());
    }
}
