//! GPU hardware specification.

/// Peak-rate specification of one GPU.
///
/// All rates are *effective* (peak × achievable efficiency) so kernel
/// times come out in realistic territory rather than datasheet fantasy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Device name for report headers.
    pub name: &'static str,
    /// Effective HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: f64,
    /// Effective FP16 tensor-core throughput in MAC/s.
    pub fp16_tensor_macs: f64,
    /// Effective INT8 tensor-core throughput in MAC/s (2× FP16 on A100).
    pub int8_tensor_macs: f64,
    /// Effective FP32 CUDA-core throughput in op/s (used for
    /// dequantization arithmetic and softmax bookkeeping).
    pub fp32_cuda_ops: f64,
    /// Effective integer ALU throughput in op/s (Turbo's INT4/2 → INT8
    /// dequantization path).
    pub int_alu_ops: f64,
    /// FP32 exponentiation throughput in exp/s. The paper observes FP32
    /// exponentiation delivers ~3 % of FP16 tensor performance.
    pub fp32_exp_ops: f64,
    /// SAS exponentiation throughput in elem/s: a cubic polynomial is 3
    /// FMAs on FP16 tensor-path hardware plus a register-resident LUT
    /// lookup — modelled as FP16 tensor MACs / 4.
    pub sas_exp_ops: f64,
    /// Fixed overhead per kernel launch, in seconds.
    pub kernel_launch: f64,
    /// Allocator/fragmentation reserve: usable memory = capacity / this.
    pub memory_overhead_factor: f64,
}

impl GpuSpec {
    /// An NVIDIA A100-SXM-80GB, the paper's test device.
    pub fn a100_80gb() -> Self {
        let fp16 = 312.0e12 / 2.0 * 0.70; // 312 TFLOPS = 156 TMAC/s, 70 % achievable
        GpuSpec {
            name: "A100-SXM-80GB",
            hbm_bandwidth: 2.039e12 * 0.80,
            hbm_capacity: 80.0e9,
            fp16_tensor_macs: fp16,
            int8_tensor_macs: fp16 * 2.0,
            fp32_cuda_ops: 19.5e12 * 0.60,
            int_alu_ops: 19.5e12 * 0.60 * 2.0,
            // 3 % of FP16 tensor FLOPs (the section 2.2 measurement).
            fp32_exp_ops: 312.0e12 * 0.03,
            sas_exp_ops: fp16 / 4.0,
            kernel_launch: 5.0e-6,
            memory_overhead_factor: 1.05,
        }
    }

    /// An NVIDIA H100-SXM-80GB — FlashAttention-3's target device, useful
    /// for projecting how the paper's trade-offs shift on Hopper: ~1.6×
    /// the HBM bandwidth and ~3.2× the tensor throughput of the A100, so
    /// attention becomes *more* memory-bound and KV compression matters
    /// even more at decode.
    pub fn h100_80gb() -> Self {
        let fp16 = 989.0e12 / 2.0 * 0.70; // dense FP16 TFLOPS -> MAC/s
        GpuSpec {
            name: "H100-SXM-80GB",
            hbm_bandwidth: 3.35e12 * 0.80,
            hbm_capacity: 80.0e9,
            fp16_tensor_macs: fp16,
            int8_tensor_macs: fp16 * 2.0,
            fp32_cuda_ops: 67.0e12 * 0.60,
            int_alu_ops: 67.0e12 * 0.60 * 2.0,
            fp32_exp_ops: 989.0e12 * 0.03,
            sas_exp_ops: fp16 / 4.0,
            kernel_launch: 4.0e-6,
            memory_overhead_factor: 1.05,
        }
    }

    /// Usable HBM bytes after allocator overheads.
    pub fn usable_memory(&self) -> f64 {
        self.hbm_capacity / self.memory_overhead_factor
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a100_80gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_rates_are_ordered() {
        let g = GpuSpec::a100_80gb();
        // INT8 tensor is 2x FP16 tensor; FP32 exp is far slower than both.
        assert_eq!(g.int8_tensor_macs, 2.0 * g.fp16_tensor_macs);
        assert!(g.fp32_exp_ops < g.fp16_tensor_macs * 0.1);
        assert!(g.sas_exp_ops > 2.5 * g.fp32_exp_ops);
    }

    #[test]
    fn exp_rate_matches_paper_three_percent_claim() {
        let g = GpuSpec::a100_80gb();
        let ratio = g.fp32_exp_ops / 312.0e12;
        assert!((ratio - 0.03).abs() < 1e-9);
    }

    #[test]
    fn h100_outclasses_a100_everywhere() {
        let a = GpuSpec::a100_80gb();
        let h = GpuSpec::h100_80gb();
        assert!(h.hbm_bandwidth > a.hbm_bandwidth);
        assert!(h.fp16_tensor_macs > 2.0 * a.fp16_tensor_macs);
        // Compute grows faster than bandwidth: decode becomes more
        // memory-bound, so KV compression helps H100 at least as much.
        let a_ratio = a.fp16_tensor_macs / a.hbm_bandwidth;
        let h_ratio = h.fp16_tensor_macs / h.hbm_bandwidth;
        assert!(h_ratio > a_ratio);
    }

    #[test]
    fn turbo_decode_speedup_holds_on_h100() {
        use crate::geometry::ModelGeometry;
        use crate::kernels::decode_latency;
        use crate::method::AttnMethod;
        let h = GpuSpec::h100_80gb();
        let geom = ModelGeometry::phi3_medium();
        let base = decode_latency(&h, &geom, AttnMethod::FlashFp16, 4, 8192).total();
        let turbo = decode_latency(&h, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, 4, 8192).total();
        assert!(base / turbo > 1.3, "H100 decode speedup {}", base / turbo);
    }

    #[test]
    fn usable_memory_below_capacity() {
        let g = GpuSpec::a100_80gb();
        assert!(g.usable_memory() < g.hbm_capacity);
        assert!(g.usable_memory() > 0.9 * g.hbm_capacity / 1.2);
    }
}
