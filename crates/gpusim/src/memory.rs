//! HBM-footprint model and OOM prediction.

use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::method::AttnMethod;

/// Total HBM bytes needed for a generation run: FP16 weights, the
/// method's KV cache for `batch × ctx` tokens, and transient activation
/// workspace.
pub fn memory_usage(geom: &ModelGeometry, method: AttnMethod, batch: usize, ctx: usize) -> f64 {
    let weights = geom.weight_bytes();
    let tokens = (batch * ctx) as f64;
    let kv = tokens * geom.kv_bytes_per_token_fp16() * method.kv_bits() / 16.0;
    // Activation workspace: a few FP16 hidden-width buffers per sequence.
    let activations = (batch * ctx * geom.hidden) as f64 * 2.0 * 4.0;
    weights + kv + activations
}

/// Whether a run fits the GPU's usable memory.
pub fn fits_in_memory(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    batch: usize,
    ctx: usize,
) -> bool {
    memory_usage(geom, method, batch, ctx) <= gpu.usable_memory()
}

/// Largest power-of-two batch size (up to `max_batch`) that fits, if any.
pub fn max_feasible_batch(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    ctx: usize,
    max_batch: usize,
) -> Option<usize> {
    let mut best = None;
    let mut b = 1;
    while b <= max_batch {
        if fits_in_memory(gpu, geom, method, b, ctx) {
            best = Some(b);
        }
        b *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    #[test]
    fn fp16_oom_points_match_figure_6() {
        // Figure 6 (batch 4): FP16 Phi3-medium runs at 4k/8k but OOMs at
        // 16k and 32k; the compressed methods survive all four.
        let (gpu, geom) = setup();
        assert!(fits_in_memory(&gpu, &geom, AttnMethod::FlashFp16, 4, 4096));
        assert!(fits_in_memory(&gpu, &geom, AttnMethod::FlashFp16, 4, 8192));
        assert!(!fits_in_memory(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            4,
            16384
        ));
        assert!(!fits_in_memory(
            &gpu,
            &geom,
            AttnMethod::FlashFp16,
            4,
            32768
        ));
        for m in [
            AttnMethod::Kivi { bits: 4.0 },
            AttnMethod::GearL { bits: 4.0, rank: 4 },
            AttnMethod::Turbo { kv_bits: 3.0 },
        ] {
            for ctx in [4096usize, 8192, 16384, 32768] {
                assert!(fits_in_memory(&gpu, &geom, m, 4, ctx), "{m} at {ctx}");
            }
        }
    }

    #[test]
    fn turbo_supports_larger_batches_than_fp16() {
        let (gpu, geom) = setup();
        let fp16 = max_feasible_batch(&gpu, &geom, AttnMethod::FlashFp16, 1024, 256).unwrap();
        let turbo =
            max_feasible_batch(&gpu, &geom, AttnMethod::Turbo { kv_bits: 3.0 }, 1024, 256).unwrap();
        assert!(turbo >= 2 * fp16, "turbo max batch {turbo} vs fp16 {fp16}");
    }

    #[test]
    fn memory_is_monotone_in_batch_and_ctx() {
        let (_, geom) = setup();
        let m = AttnMethod::FlashFp16;
        assert!(memory_usage(&geom, m, 2, 1024) < memory_usage(&geom, m, 4, 1024));
        assert!(memory_usage(&geom, m, 2, 1024) < memory_usage(&geom, m, 2, 2048));
    }

    #[test]
    fn weights_dominate_small_contexts() {
        let (_, geom) = setup();
        let usage = memory_usage(&geom, AttnMethod::FlashFp16, 1, 128);
        assert!(usage < geom.weight_bytes() * 1.1);
    }

    #[test]
    fn no_batch_fits_at_extreme_context() {
        let (gpu, geom) = setup();
        // 512k context at FP16 exceeds memory even at batch 1.
        assert_eq!(
            max_feasible_batch(&gpu, &geom, AttnMethod::FlashFp16, 512 * 1024, 64),
            None
        );
    }
}
