//! Throughput model (Figure 7a).

use crate::endtoend::generation_breakdown;
use crate::geometry::ModelGeometry;
use crate::hw::GpuSpec;
use crate::memory::fits_in_memory;
use crate::method::AttnMethod;

/// Generated tokens per second for a `(batch, prompt, gen)` run, or
/// `None` if the configuration does not fit in memory (the OOM points of
/// Figure 7a).
pub fn throughput(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    batch: usize,
    prompt: usize,
    gen: usize,
) -> Option<f64> {
    if !fits_in_memory(gpu, geom, method, batch, prompt + gen) {
        return None;
    }
    let total = generation_breakdown(gpu, geom, method, batch, prompt, gen).total();
    Some((batch * gen) as f64 / total)
}

/// Maximum throughput over candidate batch sizes (1, 2, 4, 8, then
/// multiples of 16) up to `max_batch`, returning
/// `(best_batch, tokens_per_second)`.
pub fn max_throughput(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    method: AttnMethod,
    prompt: usize,
    gen: usize,
    max_batch: usize,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    let candidates = [1usize, 2, 4, 8]
        .into_iter()
        .chain((1..).map(|i| i * 16))
        .take_while(|&b| b <= max_batch);
    for b in candidates {
        if let Some(t) = throughput(gpu, geom, method, b, prompt, gen) {
            if best.map(|(_, bt)| t > bt).unwrap_or(true) {
                best = Some((b, t));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (GpuSpec, ModelGeometry) {
        (GpuSpec::a100_80gb(), ModelGeometry::phi3_medium())
    }

    /// Figure 7a's workload: 1k prompt, 125 generated tokens.
    const PROMPT: usize = 1024;
    const GEN: usize = 125;

    #[test]
    fn throughput_grows_with_batch_until_oom() {
        let (gpu, geom) = setup();
        let t1 = throughput(&gpu, &geom, AttnMethod::FlashFp16, 1, PROMPT, GEN).unwrap();
        let t16 = throughput(&gpu, &geom, AttnMethod::FlashFp16, 16, PROMPT, GEN).unwrap();
        assert!(t16 > 4.0 * t1, "batching must amortize: {t1} -> {t16}");
    }

    #[test]
    fn fp16_ooms_before_turbo() {
        let (gpu, geom) = setup();
        let (b_fp16, _) =
            max_throughput(&gpu, &geom, AttnMethod::FlashFp16, PROMPT, GEN, 4096).unwrap();
        let (b_turbo, _) = max_throughput(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            PROMPT,
            GEN,
            4096,
        )
        .unwrap();
        assert!(
            b_turbo >= 2 * b_fp16,
            "turbo batch {b_turbo} vs fp16 {b_fp16}"
        );
    }

    #[test]
    fn max_throughput_gain_matches_figure_7a() {
        // Figure 7a: TurboAttention reaches up to 2.37x the FP16 maximum
        // throughput. Our request-level metric (prefill included) lands
        // near 1.5x while the decode-phase gain is ~3.7x — the two
        // bracket the paper's number. Accept 1.3-3.5x here.
        let (gpu, geom) = setup();
        let (_, t_fp16) =
            max_throughput(&gpu, &geom, AttnMethod::FlashFp16, PROMPT, GEN, 4096).unwrap();
        let (_, t_turbo) = max_throughput(
            &gpu,
            &geom,
            AttnMethod::Turbo { kv_bits: 3.0 },
            PROMPT,
            GEN,
            4096,
        )
        .unwrap();
        let gain = t_turbo / t_fp16;
        assert!((1.3..=3.5).contains(&gain), "throughput gain {gain}");
    }

    #[test]
    fn turbo_beats_kivi_and_gear_throughput() {
        let (gpu, geom) = setup();
        let best = |m| max_throughput(&gpu, &geom, m, PROMPT, GEN, 4096).unwrap().1;
        let turbo = best(AttnMethod::Turbo { kv_bits: 3.0 });
        let kivi = best(AttnMethod::Kivi { bits: 4.0 });
        let gear = best(AttnMethod::GearL { bits: 4.0, rank: 4 });
        assert!(turbo > kivi, "turbo {turbo} vs kivi {kivi}");
        assert!(turbo > gear, "turbo {turbo} vs gear {gear}");
    }

    #[test]
    fn oom_returns_none() {
        let (gpu, geom) = setup();
        assert!(throughput(&gpu, &geom, AttnMethod::FlashFp16, 4096, 8192, 125).is_none());
    }
}
