//! # turbo-bench
//!
//! Benchmark harness and figure/table generators for the TurboAttention
//! reproduction.
//!
//! * `cargo run --release -p turbo-bench --bin figures -- <exp> [--episodes N]`
//!   regenerates any table or figure from the paper (`all` runs everything;
//!   see [`figs`] for the experiment list and `EXPERIMENTS.md` for the
//!   paper-vs-measured record).
//! * `cargo bench -p turbo-bench` runs the Criterion micro-benchmarks that
//!   back the relative kernel-cost claims (SAS vs FP32 exp, INT8 vs f32
//!   matmul, quantization and buffer throughput, dequantization paths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figs;
pub mod harness;
pub mod report;

pub use report::Table;
