//! Figure 5: the cubic least-squares fit of `e^{-t}` on `[0, 1]`, plus a
//! SAS threshold sweep (the LUT-size / accuracy trade-off).

use crate::Table;
use turbo_softmax::{fit_exp_poly, Sas, PAPER_POLY};

/// Prints the Figure 5 fit and threshold ablation.
pub fn run() {
    let refit = fit_exp_poly(4096);
    let mut t = Table::new(
        "Figure 5 — cubic fit of e^-t on [0,1]",
        &["source", "c0", "c1", "c2", "c3", "max |err| vs exp"],
    );
    for (name, poly) in [
        ("paper (Eq. 15)", PAPER_POLY),
        ("least-squares refit", refit),
    ] {
        let [c0, c1, c2, c3] = poly.coeffs;
        t.row(&[
            name.to_string(),
            format!("{c0:.4}"),
            format!("{c1:.4}"),
            format!("{c2:.4}"),
            format!("{c3:.4}"),
            format!("{:.2e}", poly.max_error_vs_exp(4096)),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "SAS threshold sweep — LUT size vs exp error on [n_r, 0]",
        &["n_r", "LUT entries", "max |err|", "f16-poly max |err|"],
    );
    for nr in [-3i32, -4, -5, -6, -7, -8, -9] {
        let sas = Sas::new(nr, PAPER_POLY);
        let sas16 = Sas::new(nr, PAPER_POLY).with_f16_poly(true);
        t2.row(&[
            format!("{nr}"),
            format!("{}", sas.lut().len()),
            format!("{:.2e}", sas.max_error_vs_exp(4096)),
            format!("{:.2e}", sas16.max_error_vs_exp(4096)),
        ]);
    }
    t2.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
