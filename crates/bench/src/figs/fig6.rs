//! Figure 6: attention speedup over FlashAttention-FP16 for prefill and
//! decode, across batch sizes (ctx 1k) and context lengths (batch 4).

use crate::Table;
use turbo_gpusim::{
    decode_latency, fits_in_memory, prefill_latency, AttnMethod, GpuSpec, ModelGeometry,
};

fn speedup_cell(
    gpu: &GpuSpec,
    geom: &ModelGeometry,
    m: AttnMethod,
    batch: usize,
    ctx: usize,
    decode: bool,
) -> String {
    if !fits_in_memory(gpu, geom, m, batch, ctx) {
        return "OOM".into();
    }
    let this = if decode {
        decode_latency(gpu, geom, m, batch, ctx).total()
    } else {
        prefill_latency(gpu, geom, m, batch, ctx).total()
    };
    let base = if decode {
        decode_latency(gpu, geom, AttnMethod::FlashFp16, batch, ctx).total()
    } else {
        prefill_latency(gpu, geom, AttnMethod::FlashFp16, batch, ctx).total()
    };
    format!("{:.2}x", base / this)
}

/// Prints the four Figure 6 panels.
pub fn run() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let methods = AttnMethod::figure6_lineup();

    for (decode, phase) in [(false, "prefill"), (true, "decode")] {
        let mut t = Table::new(
            &format!("Figure 6 — {phase} speedup vs batch (Phi3-medium, ctx 1k)"),
            &["method", "b=1", "b=4", "b=16", "b=64"],
        );
        for &m in &methods {
            let mut row = vec![m.to_string()];
            for batch in [1usize, 4, 16, 64] {
                row.push(speedup_cell(&gpu, &geom, m, batch, 1024, decode));
            }
            t.row(&row);
        }
        t.print();

        let mut t2 = Table::new(
            &format!("Figure 6 — {phase} speedup vs context (Phi3-medium, batch 4)"),
            &["method", "4k", "8k", "16k", "32k"],
        );
        for &m in &methods {
            let mut row = vec![m.to_string()];
            for ctx in [4096usize, 8192, 16384, 32768] {
                row.push(speedup_cell(&gpu, &geom, m, 4, ctx, decode));
            }
            t2.row(&row);
        }
        t2.print();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
