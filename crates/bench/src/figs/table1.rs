//! Table 1: technique-capability matrix.

use crate::Table;
use turbo_attention::capability_table;

/// Prints Table 1.
pub fn run() {
    let mut t = Table::new(
        "Table 1 — technique capabilities",
        &[
            "technique",
            "QKV projection",
            "KV compression",
            "attention execution",
            "MLP",
            "memory",
            "latency",
        ],
    );
    let arrows = |n: u8| match n {
        0 => "×".to_string(),
        n => "↓".repeat(n as usize),
    };
    for row in capability_table() {
        t.row(&[
            row.name.to_string(),
            row.qkv_projection.to_string(),
            if row.kv_cache_compression { "✓" } else { "-" }.to_string(),
            row.attention_execution.to_string(),
            row.mlp.to_string(),
            arrows(row.memory_reduction),
            arrows(row.latency_reduction),
        ]);
    }
    t.print();
}
