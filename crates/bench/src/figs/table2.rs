//! Table 2: CoT-reasoning-proxy accuracy of every method at 4-bit and
//! 3-bit / mixed-precision KV caches.

use crate::Table;
use turbo_model::backend::{Backend, Fp16Backend, GearBackend, KiviBackend, TurboBackend};
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};
use turbo_quant::BitWidth;

/// Prints Table 2 with `episodes` episodes per cell.
pub fn run(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0xE7A1,
    };
    let profiles = ModelProfile::paper_profiles();
    let suites = TaskSuite::paper_suites();

    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(Fp16Backend),
        Box::new(KiviBackend::new(BitWidth::Int4)),
        Box::new(GearBackend::new(BitWidth::Int4)),
        Box::new(TurboBackend::int4()),
        Box::new(KiviBackend::new(BitWidth::Int3)),
        Box::new(GearBackend::new(BitWidth::Int3)),
        Box::new(TurboBackend::mixed(4)), // half of 8 heads at 2-bit
    ];

    let mut headers = vec!["method".to_string(), "bits".to_string()];
    for p in &profiles {
        for s in &suites {
            headers.push(format!("{}/{}", short(p.name()), short(s.name)));
        }
    }
    headers.push("avg".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        &format!("Table 2 — accuracy on CoT reasoning proxies ({episodes} episodes/cell)"),
        &headers_ref,
    );

    for b in &backends {
        let mut row = vec![b.name(), b.bits_label()];
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &profiles {
            for s in &suites {
                let r = evaluate(b.as_ref(), p, s, &cfg);
                row.push(format!("{:.1}", r.accuracy * 100.0));
                sum += r.accuracy;
                n += 1;
            }
        }
        row.push(format!("{:.1}", sum / n as f64 * 100.0));
        t.row(&row);
    }
    t.print();
}

fn short(name: &str) -> String {
    name.split(['-', ' ']).next().unwrap_or(name).to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_completes() {
        super::run(2);
    }
}
