//! Table 2: CoT-reasoning-proxy accuracy of every method at 4-bit and
//! 3-bit / mixed-precision KV caches.
//!
//! Each backend's row evaluates as one pooled task on `turbo_runtime`
//! (the backends are independent; `Box<dyn Backend>` is built inside the
//! task because trait objects aren't `Sync`). The merge is index-ordered
//! and every evaluation is seed-deterministic, so the rendered table is
//! bit-identical at any worker count — the test pins 1 vs 2 workers.

use crate::Table;
use turbo_model::backend::{Backend, Fp16Backend, GearBackend, KiviBackend, TurboBackend};
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};
use turbo_quant::BitWidth;

const NUM_BACKENDS: usize = 7;

fn backend(i: usize) -> Box<dyn Backend> {
    match i {
        0 => Box::new(Fp16Backend),
        1 => Box::new(KiviBackend::new(BitWidth::Int4)),
        2 => Box::new(GearBackend::new(BitWidth::Int4)),
        3 => Box::new(TurboBackend::int4()),
        4 => Box::new(KiviBackend::new(BitWidth::Int3)),
        5 => Box::new(GearBackend::new(BitWidth::Int3)),
        6 => Box::new(TurboBackend::mixed(4)), // half of 8 heads at 2-bit
        _ => unreachable!("only {NUM_BACKENDS} backends"),
    }
}

/// Renders Table 2 on the global runtime with `episodes` episodes per
/// cell.
pub fn render(episodes: usize) -> Table {
    render_on(turbo_runtime::global(), episodes)
}

/// As [`render`], but on an explicit runtime (worker-count equivalence
/// tests).
pub fn render_on(rt: &turbo_runtime::Runtime, episodes: usize) -> Table {
    let cfg = EvalConfig {
        episodes,
        seed: 0xE7A1,
    };
    let profiles = ModelProfile::paper_profiles();
    let suites = TaskSuite::paper_suites();

    let mut headers = vec!["method".to_string(), "bits".to_string()];
    for p in &profiles {
        for s in &suites {
            headers.push(format!("{}/{}", short(p.name()), short(s.name)));
        }
    }
    headers.push("avg".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        &format!("Table 2 — accuracy on CoT reasoning proxies ({episodes} episodes/cell)"),
        &headers_ref,
    );

    let rows: Vec<Vec<String>> = rt.par_map_indexed(NUM_BACKENDS, |i| {
        let b = backend(i);
        let mut row = vec![b.name(), b.bits_label()];
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &profiles {
            for s in &suites {
                let r = evaluate(b.as_ref(), p, s, &cfg);
                row.push(format!("{:.1}", r.accuracy * 100.0));
                sum += r.accuracy;
                n += 1;
            }
        }
        row.push(format!("{:.1}", sum / n as f64 * 100.0));
        row
    });
    for row in &rows {
        t.row(row);
    }
    t
}

/// Prints Table 2 with `episodes` episodes per cell.
pub fn run(episodes: usize) {
    render(episodes).print();
}

fn short(name: &str) -> String {
    name.split(['-', ' ']).next().unwrap_or(name).to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_completes() {
        super::run(2);
    }

    #[test]
    fn table_is_bit_identical_at_any_worker_count() {
        let serial = super::render_on(&turbo_runtime::Runtime::with_workers(1), 2).to_csv();
        for workers in [2usize, 4] {
            let rt = turbo_runtime::Runtime::with_workers(workers);
            assert_eq!(
                super::render_on(&rt, 2).to_csv(),
                serial,
                "{workers}-worker table diverged"
            );
        }
    }
}
