//! Figure 10: channel-wise vs token-wise group-quantization error on
//! activations with channel outliers (plus a group-size sweep).

use crate::Table;
use turbo_model::ModelProfile;
use turbo_quant::{quant_error_channelwise, quant_error_tokenwise, BitWidth};

/// Prints the Figure 10 comparison on each profile's value activations.
pub fn run() {
    let mut t = Table::new(
        "Figure 10 — group quantization error, channelwise vs tokenwise (value cache, 512 tokens)",
        &[
            "profile",
            "head",
            "bits",
            "channelwise MSE",
            "tokenwise MSE",
            "ratio",
        ],
    );
    for profile in ModelProfile::paper_profiles() {
        // One outlier-bearing head per profile (head 0 or 1 depending on
        // where the value outliers live).
        let head = (0..profile.n_heads())
            .find(|&h| !profile.value_transform(h).is_identity())
            .unwrap_or(0);
        let v = profile.calibration_values(head, 512);
        for bits in [BitWidth::Int4, BitWidth::Int2] {
            let cw = quant_error_channelwise(&v, bits, 64);
            let tw = quant_error_tokenwise(&v, bits, 64);
            t.row(&[
                profile.name().to_string(),
                format!("{head}"),
                bits.to_string(),
                format!("{:.4e}", cw.mse),
                format!("{:.4e}", tw.mse),
                format!("{:.1}x", tw.mse / cw.mse),
            ]);
        }
    }
    t.print();

    let mut t2 = Table::new(
        "Group-size sweep (Phi3-like head 0 values, INT4)",
        &["group", "channelwise MSE", "tokenwise MSE"],
    );
    let v = ModelProfile::phi3_like().calibration_values(0, 512);
    for group in [16usize, 32, 64, 128] {
        let cw = quant_error_channelwise(&v, BitWidth::Int4, group);
        let tw = quant_error_tokenwise(&v, BitWidth::Int4, group);
        t2.row(&[
            format!("{group}"),
            format!("{:.4e}", cw.mse),
            format!("{:.4e}", tw.mse),
        ]);
    }
    t2.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
