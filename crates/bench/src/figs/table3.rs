//! Table 3: block-size (`B_r`, `B_c`) robustness of TurboAttention
//! accuracy on the GSM8k proxy (Phi3-like profile).

use crate::Table;
use turbo_attention::TurboConfig;
use turbo_model::backend::TurboBackend;
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};
use turbo_quant::BitWidth;

/// Prints Table 3 with `episodes` episodes per row.
pub fn run(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0x7AB3,
    };
    let profile = ModelProfile::phi3_like();
    let suite = TaskSuite::gsm8k_proxy();
    let mut t = Table::new(
        &format!("Table 3 — TurboAttention block-size ablation (Phi3-like, GSM8k-proxy, {episodes} episodes)"),
        &["block (Br,Bc)", "dataset", "acc"],
    );
    for (br, bc) in [
        (32usize, 32usize),
        (32, 64),
        (64, 32),
        (64, 64),
        (64, 128),
        (128, 64),
        (128, 128),
    ] {
        let backend = TurboBackend::int4().with_config(TurboConfig {
            block_r: br,
            block_c: bc,
            kv_bits: BitWidth::Int4,
            group_size: 16,
            buffer_capacity: 16,
            ..TurboConfig::default()
        });
        let r = evaluate(&backend, &profile, &suite, &cfg);
        t.row(&[
            format!("({br},{bc})"),
            suite.name.to_string(),
            format!("{:.1}", r.accuracy * 100.0),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_completes() {
        super::run(2);
    }
}
