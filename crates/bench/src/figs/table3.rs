//! Table 3: block-size (`B_r`, `B_c`) robustness of TurboAttention
//! accuracy on the GSM8k proxy (Phi3-like profile).
//!
//! The block-size ablation rows are independent, so each evaluates as
//! one pooled task on `turbo_runtime`; the index-ordered merge plus
//! seed-deterministic evaluation keeps the table bit-identical at any
//! worker count.

use crate::Table;
use turbo_attention::TurboConfig;
use turbo_model::backend::TurboBackend;
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};
use turbo_quant::BitWidth;

const BLOCKS: [(usize, usize); 7] = [
    (32, 32),
    (32, 64),
    (64, 32),
    (64, 64),
    (64, 128),
    (128, 64),
    (128, 128),
];

/// Renders Table 3 on the global runtime with `episodes` episodes per
/// row.
pub fn render(episodes: usize) -> Table {
    render_on(turbo_runtime::global(), episodes)
}

/// As [`render`], but on an explicit runtime (worker-count equivalence
/// tests).
pub fn render_on(rt: &turbo_runtime::Runtime, episodes: usize) -> Table {
    let cfg = EvalConfig {
        episodes,
        seed: 0x7AB3,
    };
    let profile = ModelProfile::phi3_like();
    let suite = TaskSuite::gsm8k_proxy();
    let mut t = Table::new(
        &format!("Table 3 — TurboAttention block-size ablation (Phi3-like, GSM8k-proxy, {episodes} episodes)"),
        &["block (Br,Bc)", "dataset", "acc"],
    );
    let rows: Vec<[String; 3]> = rt.par_map_indexed(BLOCKS.len(), |i| {
        let (br, bc) = BLOCKS[i];
        let backend = TurboBackend::int4().with_config(TurboConfig {
            block_r: br,
            block_c: bc,
            kv_bits: BitWidth::Int4,
            group_size: 16,
            buffer_capacity: 16,
            ..TurboConfig::default()
        });
        let r = evaluate(&backend, &profile, &suite, &cfg);
        [
            format!("({br},{bc})"),
            suite.name.to_string(),
            format!("{:.1}", r.accuracy * 100.0),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    t
}

/// Prints Table 3 with `episodes` episodes per row.
pub fn run(episodes: usize) {
    render(episodes).print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_completes() {
        super::run(2);
    }

    #[test]
    fn table_is_bit_identical_at_any_worker_count() {
        let serial = super::render_on(&turbo_runtime::Runtime::with_workers(1), 2).to_csv();
        let rt = turbo_runtime::Runtime::with_workers(2);
        assert_eq!(super::render_on(&rt, 2).to_csv(), serial);
    }
}
