//! Figures 4, 8 and 9: channel min–max distributions of the synthetic
//! model profiles' key and value activations.

use crate::Table;
use turbo_attention::HeadStats;
use turbo_model::ModelProfile;
use turbo_tensor::col_max_min;

/// Prints the per-head channel statistics behind Figures 4/8/9.
pub fn run() {
    for profile in ModelProfile::paper_profiles() {
        let mut t = Table::new(
            &format!(
                "Figure 4 — per-head channel ranges ({}, 512 calibration tokens)",
                profile.name()
            ),
            &[
                "head",
                "K gap",
                "K chan-gap std",
                "K priority",
                "V gap",
                "V max chan gap",
                "V max token gap",
            ],
        );
        for h in 0..profile.n_heads() {
            let k = profile.calibration_keys(h, 512);
            let v = profile.calibration_values(h, 512);
            let ks = HeadStats::from_activations(&k);
            // Figures 8/9: channel-wise vs token-wise gap comparison for V.
            let chan_gap = col_max_min(&v)
                .iter()
                .map(|(mx, mn)| mx - mn)
                .fold(0.0f32, f32::max);
            let token_gap = col_max_min(&v.transpose())
                .iter()
                .map(|(mx, mn)| mx - mn)
                .fold(0.0f32, f32::max);
            t.row(&[
                format!("{h}"),
                format!("{:.2}", ks.gap),
                format!("{:.2}", ks.channel_gap_std),
                format!("{:.2}", ks.priority()),
                format!("{:.2}", v.max() - v.min()),
                format!("{:.2}", chan_gap),
                format!("{:.2}", token_gap),
            ]);
        }
        t.print();
    }
    println!(
        "(Figures 8/9 shape: outlier-bearing heads show 'V max chan gap' far above\n\
         'V max token gap', with the Phi3-like profile the most extreme.)"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs() {
        super::run();
    }
}
