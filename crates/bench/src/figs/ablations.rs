//! Extra ablations: the appendix's pure 2-bit results, the decode-buffer
//! capacity `n_b` sweep, and the progressive-vs-direct quantization
//! design choice called out in DESIGN.md.

use crate::Table;
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_model::backend::{Backend, Fp8Backend, GearBackend, KiviBackend, TurboBackend};
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};
use turbo_quant::asymmetric::fake_quant_channelwise;
use turbo_quant::{BitWidth, ProgressiveBlock};
use turbo_tensor::{mse, TensorRng};

/// Appendix: pure 2-bit KV-cache accuracy for every method.
pub fn run_pure_2bit(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0xAB2B,
    };
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(TurboBackend::int2()),
        Box::new(KiviBackend::new(BitWidth::Int2)),
        Box::new(GearBackend::new(BitWidth::Int2)),
    ];
    let mut t = Table::new(
        &format!("Appendix — pure 2-bit KV cache accuracy ({episodes} episodes/cell)"),
        &["method", "LLaMA3/GSM8k", "Qwen2/GSM8k", "Phi3/GSM8k"],
    );
    let suite = TaskSuite::gsm8k_proxy();
    for b in &backends {
        let mut row = vec![b.name() + " (2bit)"];
        for p in ModelProfile::paper_profiles() {
            let r = evaluate(b.as_ref(), &p, &suite, &cfg);
            row.push(format!("{:.1}", r.accuracy * 100.0));
        }
        t.row(&row);
    }
    t.print();
}

/// Ablation: decode-buffer capacity `n_b` — accuracy, clamping rate and
/// memory as the buffer grows.
pub fn run_buffer_sweep(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0xAB4B,
    };
    let profile = ModelProfile::llama3_like();
    let suite = TaskSuite::bbh_proxy();
    let mut t = Table::new(
        &format!(
            "Ablation — decode-buffer capacity n_b (LLaMA3-like, BBH-proxy, {episodes} episodes)"
        ),
        &[
            "n_b",
            "accuracy",
            "clamped elems / 256 tokens",
            "cache bytes / 256 tokens",
        ],
    );
    for nb in [4usize, 8, 16, 32, 64] {
        let backend = TurboBackend::int4().with_config(turbo_attention::TurboConfig {
            buffer_capacity: nb,
            block_r: 16,
            block_c: 16,
            group_size: 16,
            ..turbo_attention::TurboConfig::default()
        });
        let acc = evaluate(&backend, &profile, &suite, &cfg).accuracy;

        // Clamping/memory measurement on a decode stream.
        let mut rng = TensorRng::new(nb as u64);
        let data = rng.normal(256, 64, 0.0, 1.0);
        let mut cache = HeadKvCache::new(
            64,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 16,
                buffer_capacity: nb,
            },
        );
        for r in 0..256 {
            cache.append(data.row(r), data.row(r));
        }
        let clamped =
            cache.key_buffer().clamped_elements() + cache.value_buffer().clamped_elements();
        t.row(&[
            format!("{nb}"),
            format!("{:.1}", acc * 100.0),
            format!("{clamped}"),
            format!("{}", cache.memory_stats().total_bytes()),
        ]);
    }
    t.print();
}

/// Ablation: two-stage progressive quantization vs direct float INT4/2 at
/// matched granularity, on outlier-bearing activations.
pub fn run_progressive_vs_direct() {
    let mut t = Table::new(
        "Ablation — progressive (INT8→INTx, integer params) vs direct float INTx",
        &[
            "bits",
            "outlier scale",
            "progressive MSE",
            "direct-float MSE",
            "ratio",
        ],
    );
    for bits in [BitWidth::Int4, BitWidth::Int2] {
        for outlier in [1.0f32, 10.0, 30.0] {
            let mut rng = TensorRng::new(77);
            let m = if outlier > 1.0 {
                rng.normal_with_channel_outliers(256, 64, 1.0, &[3, 40], outlier)
            } else {
                rng.normal(256, 64, 0.0, 1.0)
            };
            let pq = ProgressiveBlock::quantize(&m, bits, 64);
            let e_pq = mse(&pq.dequantize(), &m);
            let e_direct = mse(&fake_quant_channelwise(&m, bits, 64), &m);
            t.row(&[
                bits.to_string(),
                format!("{outlier:.0}x"),
                format!("{e_pq:.4e}"),
                format!("{e_direct:.4e}"),
                format!("{:.2}", e_pq / e_direct),
            ]);
        }
    }
    t.print();
    println!(
        "(Progressive pays a small error premium over direct float quantization in\n\
         exchange for integer-only dequantization — the latency win of Figure 1b.)"
    );
}

/// Extension: FP8 (E4M3) KV cache vs TurboAttention's integer formats —
/// the Hopper-era trade-off the paper's related work alludes to
/// (FlashAttention-3 / FlashInfer FP8).
pub fn run_fp8_extension(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0xF8F8,
    };
    let backends: Vec<(Box<dyn Backend>, &str)> = vec![
        (Box::new(Fp8Backend), "2.0x"),
        (Box::new(TurboBackend::int4()), "~3.6x"),
        (Box::new(TurboBackend::int3()), "~4.2x"),
        (Box::new(TurboBackend::mixed(4)), "~4.9x"),
        (Box::new(TurboBackend::int2()), "~6.9x"),
    ];
    let mut t = Table::new(
        &format!("Extension — FP8 KV cache vs integer formats ({episodes} episodes/cell)"),
        &[
            "method",
            "KV compression",
            "LLaMA3/GSM8k",
            "Qwen2/GSM8k",
            "Phi3/GSM8k",
        ],
    );
    let suite = TaskSuite::gsm8k_proxy();
    for (b, ratio) in &backends {
        let mut row = vec![b.name(), ratio.to_string()];
        for p in ModelProfile::paper_profiles() {
            let r = evaluate(b.as_ref(), &p, &suite, &cfg);
            row.push(format!("{:.1}", r.accuracy * 100.0));
        }
        t.row(&row);
    }
    t.print();
}

/// Extension: continuous-batching serving comparison (sustained load on
/// the A100 cost model).
pub fn run_serving_extension() {
    use turbo_gpusim::{simulate_serving, uniform_workload, AttnMethod, GpuSpec, ModelGeometry};
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let mut t = Table::new(
        "Extension — continuous-batching serving (Phi3-medium, 40 reqs @ 0.5/s, 8k prompt, 128 gen)",
        &[
            "method",
            "mean latency (s)",
            "p95 latency (s)",
            "tokens/s",
            "peak batch",
            "mean queue (s)",
        ],
    );
    let reqs = uniform_workload(40, 0.5, 8192, 128, 2024);
    for m in AttnMethod::figure6_lineup() {
        let s = simulate_serving(&gpu, &geom, m, &reqs);
        t.row(&[
            m.to_string(),
            format!("{:.2}", s.mean_latency),
            format!("{:.2}", s.p95_latency),
            format!("{:.0}", s.throughput),
            format!("{}", s.peak_batch),
            format!("{:.2}", s.mean_queue_time),
        ]);
    }
    t.print();
}

/// Extension: QuaRot composability — per-tile INT8 quantization error with
/// and without Hadamard rotation on outlier-bearing activations.
pub fn run_quarot_extension() {
    use turbo_quant::rotation::rotation_ablation;
    use turbo_tensor::TensorRng;
    let mut t = Table::new(
        "Extension — QuaRot-style rotation composability (per-tile INT8 MSE)",
        &[
            "outlier channels",
            "outlier scale",
            "plain MSE",
            "rotated MSE",
            "gain",
        ],
    );
    for (count, scale) in [(0usize, 1.0f32), (2, 10.0), (4, 30.0), (8, 50.0)] {
        let mut rng = TensorRng::new(31 + count as u64);
        let m = if count == 0 {
            rng.normal(128, 64, 0.0, 1.0)
        } else {
            let channels = rng.distinct_indices(64, count);
            rng.normal_with_channel_outliers(128, 64, 1.0, &channels, scale)
        };
        let (plain, rotated) = rotation_ablation(&m);
        t.row(&[
            format!("{count}"),
            format!("{scale:.0}x"),
            format!("{plain:.3e}"),
            format!("{rotated:.3e}"),
            format!("{:.1}x", plain / rotated),
        ]);
    }
    t.print();

    // Accuracy composition: rotation must not cost accuracy on the task
    // harness (and helps at 2-bit, where outlier smearing matters most).
    use turbo_model::backend::QuarotTurboBackend;
    let cfg = EvalConfig {
        episodes: 120,
        seed: 0xA407,
    };
    let profile = ModelProfile::llama3_like();
    let suite = TaskSuite::gsm8k_proxy();
    let mut t2 = Table::new(
        "QuaRot + TurboAttention accuracy composition (LLaMA3-like, GSM8k-proxy)",
        &["method", "acc"],
    );
    let rows: Vec<(String, Box<dyn Backend>)> = vec![
        ("Turbo 4-bit".into(), Box::new(TurboBackend::int4())),
        (
            "QuaRot + Turbo 4-bit".into(),
            Box::new(QuarotTurboBackend::int4()),
        ),
        ("Turbo 2-bit".into(), Box::new(TurboBackend::int2())),
        (
            "QuaRot + Turbo 2-bit".into(),
            Box::new(QuarotTurboBackend::int2()),
        ),
    ];
    for (name, b) in rows {
        let r = evaluate(b.as_ref(), &profile, &suite, &cfg);
        t2.row(&[name, format!("{:.1}", r.accuracy * 100.0)]);
    }
    t2.print();
}

/// Extension: error compounding with retrieval depth — accuracy as chains
/// grow from 1 to 8 hops (the mechanism behind long-CoT degradation).
pub fn run_depth_extension(episodes: usize) {
    use turbo_model::backend::Fp8Backend;
    use turbo_model::TaskSuite;
    let cfg = EvalConfig {
        episodes,
        seed: 0xDEE9,
    };
    let profile = ModelProfile::llama3_like();
    let mut t = Table::new(
        &format!(
            "Extension — accuracy vs chain depth (LLaMA3-like, 48 pairs, {episodes} episodes)"
        ),
        &["hops", "FP16", "FP8", "Turbo4", "Turbo(2/4)", "KIVI2"],
    );
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(turbo_model::backend::Fp16Backend),
        Box::new(Fp8Backend),
        Box::new(TurboBackend::int4()),
        Box::new(TurboBackend::mixed(4)),
        Box::new(KiviBackend::new(BitWidth::Int2)),
    ];
    for hops in [1usize, 2, 4, 6, 8] {
        let suite = TaskSuite {
            name: "depth-sweep",
            n_pairs: 48,
            hops,
            confusers: 3,
        };
        let mut row = vec![format!("{hops}")];
        for b in &backends {
            let r = evaluate(b.as_ref(), &profile, &suite, &cfg);
            row.push(format!("{:.1}", r.accuracy * 100.0));
        }
        t.row(&row);
    }
    t.print();
    println!(
        "(Per-hop survival compounds multiplicatively: methods with small per-step\n\
         error diverge slowly; 2-bit error compounds to failure within a few hops.)"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_runs_complete() {
        super::run_pure_2bit(2);
        super::run_buffer_sweep(2);
        super::run_progressive_vs_direct();
        super::run_fp8_extension(2);
        super::run_serving_extension();
        super::run_quarot_extension();
        super::run_depth_extension(2);
    }
}
