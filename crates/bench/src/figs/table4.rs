//! Table 4 (Appendix C): separating FlashQ's and SAS's accuracy cost on
//! the AQuA proxy (LLaMA3-like profile).

use crate::Table;
use turbo_model::backend::{Backend, Fp16Backend, SasOnlyBackend, TurboBackend};
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};

/// Prints Table 4 with `episodes` episodes per row.
pub fn run(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0x7AB4,
    };
    let profile = ModelProfile::llama3_like();
    let suite = TaskSuite::aqua_proxy();
    let rows: Vec<(&str, Box<dyn Backend>)> = vec![
        ("FP16", Box::new(Fp16Backend)),
        ("FlashQ-4bit", Box::new(TurboBackend::flashq_only())),
        ("SAS", Box::new(SasOnlyBackend::default())),
        ("FlashQ-4bit + SAS", Box::new(TurboBackend::int4())),
    ];
    let mut t = Table::new(
        &format!(
            "Table 4 — FlashQ vs SAS degradation (LLaMA3-like, AQuA-proxy, {episodes} episodes)"
        ),
        &["method", "acc"],
    );
    for (name, b) in rows {
        let r = evaluate(b.as_ref(), &profile, &suite, &cfg);
        t.row(&[name.to_string(), format!("{:.1}", r.accuracy * 100.0)]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_completes() {
        super::run(2);
    }
}
