//! One module per reproduced table/figure. Each exposes
//! `run(episodes: usize)` printing the result to stdout; `episodes`
//! controls the accuracy experiments' sample count (latency/error
//! experiments ignore it).

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

/// Experiment identifiers accepted by the `figures` binary.
pub const EXPERIMENTS: &[&str] = &[
    "fig1a",
    "fig1b",
    "fig1c",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig4",
    "fig5",
    "fig6",
    "fig7a",
    "fig7b",
    "fig10",
    "appendix-2bit",
    "ablation-nb",
    "ablation-pq",
    "extension-fp8",
    "extension-serving",
    "extension-quarot",
    "extension-depth",
];

/// Runs one experiment by name. Returns `false` for an unknown name.
pub fn run(name: &str, episodes: usize) -> bool {
    match name {
        "fig1a" => fig1::run_1a(),
        "fig1b" => fig1::run_1b(),
        "fig1c" => fig1::run_1c(),
        "table1" => table1::run(),
        "table2" => table2::run(episodes),
        "table3" => table3::run(episodes),
        "table4" => table4::run(episodes),
        "table5" => table5::run(episodes),
        "fig4" => fig4::run(),
        "fig5" => fig5::run(),
        "fig6" => fig6::run(),
        "fig7a" => fig7::run_7a(),
        "fig7b" => fig7::run_7b(episodes),
        "fig10" => fig10::run(),
        "appendix-2bit" => ablations::run_pure_2bit(episodes),
        "ablation-nb" => ablations::run_buffer_sweep(episodes),
        "ablation-pq" => ablations::run_progressive_vs_direct(),
        "extension-fp8" => ablations::run_fp8_extension(episodes),
        "extension-serving" => ablations::run_serving_extension(),
        "extension-quarot" => ablations::run_quarot_extension(),
        "extension-depth" => ablations::run_depth_extension(episodes),
        "all" => {
            for e in EXPERIMENTS {
                run(e, episodes);
            }
        }
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_experiment_rejected() {
        assert!(!super::run("nope", 1));
    }

    #[test]
    fn cheap_experiments_run() {
        // Smoke-test the latency/error generators (no accuracy episodes).
        for e in ["table1", "fig5", "fig10", "fig1b"] {
            assert!(super::run(e, 1), "{e} failed");
        }
    }
}
