//! Figure 1: latency profile of Phi3-medium on an A100.
//!
//! * 1a — attention share of end-to-end latency vs prompt length
//!   (prompt:output = 8:1).
//! * 1b — attention-kernel time share per method (matmul / softmax /
//!   dequant lanes).
//! * 1c — end-to-end time share (matmul+KV-load / dequant / softmax /
//!   other).

use crate::Table;
use turbo_gpusim::{decode_latency, generation_breakdown, AttnMethod, GpuSpec, ModelGeometry};

fn methods() -> Vec<AttnMethod> {
    AttnMethod::figure6_lineup()
}

/// Figure 1a.
pub fn run_1a() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let mut t = Table::new(
        "Figure 1a — attention share of end-to-end latency (Phi3-medium, prompt:output 8:1)",
        &["prompt", "gen", "attention share (FP16)", "total (s)"],
    );
    for prompt in [1024usize, 4096, 8192, 16384, 32768, 65536, 81920] {
        let gen = (prompt / 8).max(1);
        let bd = generation_breakdown(&gpu, &geom, AttnMethod::FlashFp16, 1, prompt, gen);
        t.row(&[
            format!("{prompt}"),
            format!("{gen}"),
            format!("{:.1}%", bd.attention_share() * 100.0),
            format!("{:.2}", bd.total()),
        ]);
    }
    t.print();
}

/// Figure 1b.
pub fn run_1b() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let mut t = Table::new(
        "Figure 1b — attention decode-kernel time share (batch 4, ctx 8k)",
        &[
            "method",
            "KV load",
            "matmul",
            "softmax",
            "dequant",
            "total (ms)",
        ],
    );
    for m in methods() {
        let bd = decode_latency(&gpu, &geom, m, 4, 8192);
        let total = bd.total();
        let pct = |x: f64| format!("{:.1}%", x / total * 100.0);
        t.row(&[
            m.to_string(),
            pct(bd.mem),
            pct(bd.matmul),
            pct(bd.softmax),
            pct(bd.dequant),
            format!("{:.2}", total * 1e3),
        ]);
    }
    t.print();
}

/// Figure 1c.
pub fn run_1c() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let mut t = Table::new(
        "Figure 1c — end-to-end time share (batch 4, 8k prompt, 256 generated)",
        &[
            "method",
            "linear",
            "matmul+KV",
            "softmax",
            "dequant",
            "other",
            "total (s)",
        ],
    );
    for m in methods() {
        let bd = generation_breakdown(&gpu, &geom, m, 4, 8192, 256);
        let total = bd.total();
        let pct = |x: f64| format!("{:.1}%", x / total * 100.0);
        t.row(&[
            m.to_string(),
            pct(bd.linear),
            pct(bd.attn_matmul_kv),
            pct(bd.softmax),
            pct(bd.dequant),
            pct(bd.other),
            format!("{:.2}", total),
        ]);
    }
    t.print();
}
