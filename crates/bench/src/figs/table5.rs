//! Table 5 (Appendix E): composing TurboAttention with weight
//! quantization (LLM.int8 / Qserve proxies) on the GSM8k proxy.

use crate::Table;
use turbo_model::backend::{Backend, Fp16Backend, TurboBackend};
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite, WeightQuant};

/// Prints Table 5 with `episodes` episodes per row.
pub fn run(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0x7AB5,
    };
    let suite = TaskSuite::gsm8k_proxy();
    let base = ModelProfile::llama3_like();
    let mut t = Table::new(
        &format!(
            "Table 5 — integration with weight quantization (LLaMA3-like, GSM8k-proxy, {episodes} episodes)"
        ),
        &["weights", "attention", "acc"],
    );
    let cell = |profile: &ModelProfile, b: &dyn Backend| {
        let r = evaluate(b, profile, &suite, &cfg);
        format!("{:.1}", r.accuracy * 100.0)
    };
    let int8 = base.with_weight_quant(WeightQuant::Int8PerChannel);
    let int4 = base.with_weight_quant(WeightQuant::Int4PerChannel);

    t.row(&["FP16 weights", "FP16", &cell(&base, &Fp16Backend)]);
    t.row(&["LLM.int8()", "FP16", &cell(&int8, &Fp16Backend)]);
    t.row(&[
        "LLM.int8()",
        "TurboAttention",
        &cell(&int8, &TurboBackend::int4()),
    ]);
    t.row(&["Qserve (W4)", "FP16", &cell(&int4, &Fp16Backend)]);
    t.row(&[
        "Qserve (W4)",
        "TurboAttention",
        &cell(&int4, &TurboBackend::int4()),
    ]);
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tiny_run_completes() {
        super::run(2);
    }
}
