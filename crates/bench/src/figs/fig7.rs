//! Figure 7: (a) throughput vs batch size; (b) head-selection ablation.

use crate::Table;
use turbo_attention::SelectionMethod;
use turbo_gpusim::{max_throughput, throughput, AttnMethod, GpuSpec, ModelGeometry};
use turbo_model::backend::TurboBackend;
use turbo_model::{evaluate, EvalConfig, ModelProfile, TaskSuite};

/// Prints Figure 7a: throughput (1k prompt, 125 generated) per batch, plus
/// the max-throughput summary.
pub fn run_7a() {
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let methods = AttnMethod::figure6_lineup();
    let mut t = Table::new(
        "Figure 7a — tokens/s vs batch (Phi3-medium, 1k prompt, 125 generated)",
        &["method", "b=1", "b=8", "b=32", "b=64", "b=128", "b=192"],
    );
    for &m in &methods {
        let mut row = vec![m.to_string()];
        for batch in [1usize, 8, 32, 64, 128, 192] {
            row.push(match throughput(&gpu, &geom, m, batch, 1024, 125) {
                Some(tp) => format!("{tp:.0}"),
                None => "OOM".into(),
            });
        }
        t.row(&row);
    }
    t.print();

    let mut t2 = Table::new(
        "Figure 7a — maximum throughput",
        &["method", "best batch", "tokens/s", "vs FP16"],
    );
    let base = max_throughput(&gpu, &geom, AttnMethod::FlashFp16, 1024, 125, 4096)
        .expect("FP16 must fit at some batch")
        .1;
    for &m in &methods {
        if let Some((b, tp)) = max_throughput(&gpu, &geom, m, 1024, 125, 4096) {
            t2.row(&[
                m.to_string(),
                format!("{b}"),
                format!("{tp:.0}"),
                format!("{:.2}x", tp / base),
            ]);
        }
    }
    t2.print();
}

/// Prints Figure 7b: accuracy of each head-selection strategy as the
/// number of 2-bit heads grows (LLaMA3-like profile, AQuA proxy).
pub fn run_7b(episodes: usize) {
    let cfg = EvalConfig {
        episodes,
        seed: 0x7B,
    };
    let profile = ModelProfile::llama3_like();
    let suite = TaskSuite::aqua_proxy();
    let counts: Vec<usize> = (0..=profile.n_heads()).step_by(2).collect();

    let mut headers = vec!["method".to_string()];
    headers.extend(counts.iter().map(|n| format!("{n} heads@2bit")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        &format!(
            "Figure 7b — head-selection ablation (LLaMA3-like, AQuA-proxy, {episodes} episodes)"
        ),
        &headers_ref,
    );
    for method in SelectionMethod::ALL {
        let mut row = vec![method.to_string()];
        for &n in &counts {
            let backend = TurboBackend::mixed_with(n, method);
            let r = evaluate(&backend, &profile, &suite, &cfg);
            row.push(format!("{:.1}", r.accuracy * 100.0));
        }
        t.row(&row);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig7a_runs() {
        super::run_7a();
    }

    #[test]
    fn fig7b_tiny_runs() {
        super::run_7b(2);
    }
}
