//! Plain-text table rendering for figure/table generators.

use std::fmt;

/// A titled, column-aligned text table.
///
/// # Example
///
/// ```
/// use turbo_bench::Table;
///
/// let mut t = Table::new("Demo", &["method", "speedup"]);
/// t.row(&["TurboAttention", "1.8x"]);
/// let s = t.to_string();
/// assert!(s.contains("TurboAttention"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{self}");
    }

    /// Renders as CSV (header row first; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::new();
            for (w, cell) in widths.iter().zip(cells) {
                parts.push(format!("{cell:<w$}"));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["wide-cell-content", "x"]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("wide-cell-content"));
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new("T", &["a", "b"]).row(&["only-one"]);
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_renders_and_escapes() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["plain", "with,comma"]);
        t.row(&["with\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }
}
