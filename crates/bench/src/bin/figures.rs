//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p turbo-bench --bin figures -- all --episodes 200
//! cargo run --release -p turbo-bench --bin figures -- table2 fig6
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut episodes = 200usize;
    let mut experiments = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--episodes" | "-n" => {
                i += 1;
                episodes = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => {
                        eprintln!("--episodes requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    for exp in &experiments {
        if !turbo_bench::figs::run(exp, episodes) {
            eprintln!("unknown experiment '{exp}'");
            print_usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!(
        "usage: figures <experiment>... [--episodes N]\n\
         experiments: all {}",
        turbo_bench::figs::EXPERIMENTS.join(" ")
    );
}
