//! Minimal self-contained benchmark harness.
//!
//! Implements the small subset of the `criterion` API the bench targets
//! use (`Criterion`, `benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros) so the workspace carries zero external
//! dependencies and still builds, tests and benches offline. Timing is
//! wall-clock medians over adaptively sized batches — coarser than
//! criterion's bootstrapped statistics but adequate for the relative
//! comparisons these benches make.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use turbo_bench::harness::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint (accepted for API compatibility; the harness always
/// re-runs setup per iteration, which matches `BatchSize::PerIteration`
/// semantics and is safe for every benchmark in this workspace).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Target measurement budget per benchmark.
const TARGET: Duration = Duration::from_millis(120);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(20);

/// One benchmark's measurement context.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            std_black_box(f());
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < TARGET {
            std_black_box(f());
            iters += 1;
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Times `routine` on fresh input from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            std_black_box(routine(setup()));
        }
        // Measure routine time only.
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < TARGET {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
        }
        self.ns_per_iter = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(name: &str, ns: f64) {
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("bench {name:<50} {human}/iter");
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Opens a named group; member benchmarks are prefixed with its name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            prefix: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name.as_ref()), b.ns_per_iter);
        self
    }

    /// Ends the group (formatting no-op, mirrors criterion).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.ns_per_iter > 0.0);
    }
}
