//! Minimal self-contained benchmark harness.
//!
//! Implements the small subset of the `criterion` API the bench targets
//! use (`Criterion`, `benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros) so the workspace carries zero external
//! dependencies and still builds, tests and benches offline.
//!
//! Each benchmark collects a set of timing *samples* (ns per iteration)
//! and reports their median and p95 — coarser than criterion's
//! bootstrapped statistics but adequate for the relative comparisons
//! these benches make. `iter_batched` honors its [`BatchSize`] hint by
//! pre-building that many inputs per timed batch, so setup time never
//! leaks into the measurement.
//!
//! Environment knobs:
//!
//! * `TURBO_BENCH_OUT=<path>` — write results as JSON (median/p95 ns per
//!   iteration, keyed by bench name) when the run finishes. This is what
//!   `scripts/bench.sh` uses to produce `BENCH_attention.json`.
//! * `TURBO_BENCH_SMOKE=1` — one sample of one iteration per bench, no
//!   warm-up: the CI smoke mode that proves the pipeline end-to-end
//!   without paying for real measurements.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use turbo_bench::harness::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]: how many inputs to
/// pre-build per timed batch. Bigger batches amortize timer overhead;
/// smaller ones bound memory held alive at once.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs: 64 inputs per timed batch.
    SmallInput,
    /// Large per-iteration inputs: 8 inputs per timed batch.
    LargeInput,
    /// Fresh setup for every iteration (batch of 1) — for routines that
    /// must not share any state between iterations.
    PerIteration,
}

impl BatchSize {
    fn inputs_per_batch(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Target measurement budget per benchmark.
const TARGET: Duration = Duration::from_millis(120);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(20);
/// Timing samples per benchmark (each sample is the mean of a timed run
/// of one or more iterations).
const SAMPLES: usize = 16;

/// One benchmark's measurement context.
pub struct Bencher {
    /// Per-sample nanoseconds per iteration, filled by `iter` /
    /// `iter_batched`.
    samples: Vec<f64>,
    /// Smoke mode: one sample of one iteration, no warm-up.
    smoke: bool,
}

impl Bencher {
    fn new(smoke: bool) -> Self {
        Self {
            samples: Vec::new(),
            smoke,
        }
    }

    /// Times `f` until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let t = Instant::now();
            std_black_box(f());
            self.samples.push(t.elapsed().as_nanos() as f64);
            return;
        }
        // Warm-up, and calibrate how many iterations fit in one sample.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP {
            std_black_box(f());
            warm_iters += 1;
        }
        let est_ns = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let per_sample_ns = TARGET.as_nanos() as f64 / SAMPLES as f64;
        let iters = ((per_sample_ns / est_ns.max(1.0)) as u64).max(1);

        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`. Inputs are built in
    /// batches of `size.inputs_per_batch()` *before* the timer starts, so
    /// setup cost is excluded from every sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            return;
        }
        let batch = size.inputs_per_batch();

        // Warm-up on one batch; calibrate batches per sample from it.
        let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs {
            std_black_box(routine(input));
        }
        let est_ns = t.elapsed().as_nanos() as f64 / batch as f64;
        let per_sample_ns = TARGET.as_nanos() as f64 / SAMPLES as f64;
        // Cap batches per sample: for nanosecond-scale routines the limit
        // on precision is timer overhead, not sample size, and an
        // expensive `setup` (excluded from timing but still paid in wall
        // time) must not blow the bench budget.
        let batches = ((per_sample_ns / (est_ns.max(1.0) * batch as f64)) as u64).clamp(1, 64);

        for _ in 0..SAMPLES {
            let mut timed = Duration::ZERO;
            let mut iters = 0u64;
            for _ in 0..batches {
                let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
                let t = Instant::now();
                for input in inputs {
                    std_black_box(routine(input));
                }
                timed += t.elapsed();
                iters += batch as u64;
            }
            self.samples
                .push(timed.as_nanos() as f64 / iters.max(1) as f64);
        }
    }
}

/// Finished measurement of one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Full bench name (`group/member`).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration across samples.
    pub p95_ns: f64,
    /// Number of timing samples taken.
    pub samples: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn summarize(name: &str, samples: &[f64]) -> BenchResult {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    BenchResult {
        name: name.to_string(),
        median_ns: percentile(&sorted, 0.5),
        p95_ns: percentile(&sorted, 0.95),
        samples: samples.len(),
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(r: &BenchResult) {
    println!(
        "bench {:<50} {:>12}/iter  (p95 {})",
        r.name,
        human(r.median_ns),
        human(r.p95_ns)
    );
}

/// Escapes a bench name for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine context stamped into every results file, so numbers from a
/// 1-core CI container are distinguishable from a multi-core dev box.
fn machine_json() -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = std::env::var("TURBO_RUNTIME_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or_else(|| "null".to_string(), |n| n.to_string());
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!(
        "{{\"available_parallelism\": {parallelism}, \
         \"turbo_runtime_threads\": {threads}, \
         \"timestamp_unix\": {timestamp}}}"
    )
}

/// Renders all results as a JSON document.
fn to_json(results: &[BenchResult]) -> String {
    let mut out = format!("{{\n  \"machine\": {},\n  \"benches\": [\n", machine_json());
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"samples\": {}}}{}\n",
            json_escape(&r.name),
            r.median_ns,
            r.p95_ns,
            r.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Entry point handed to every benchmark function. Collects results and,
/// when `TURBO_BENCH_OUT` is set, writes them to that path as JSON when
/// dropped (i.e. when the bench binary finishes).
pub struct Criterion {
    results: Vec<BenchResult>,
    smoke: bool,
    out_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::var("TURBO_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
        let out_path = std::env::var("TURBO_BENCH_OUT")
            .ok()
            .filter(|p| !p.is_empty());
        Self {
            results: Vec::new(),
            smoke,
            out_path,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.smoke);
        f(&mut b);
        let r = summarize(name, &b.samples);
        report(&r);
        self.results.push(r);
        self
    }

    /// Opens a named group; member benchmarks are prefixed with its name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.into(),
        }
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Some(path) = &self.out_path {
            if let Err(e) = std::fs::write(path, to_json(&self.results)) {
                eprintln!("warning: failed to write bench results to {path}: {e}");
            } else {
                println!("wrote {} bench results to {path}", self.results.len());
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group (formatting no-op, mirrors criterion).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_bencher() -> Bencher {
        Bencher::new(true)
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = smoke_bencher();
        b.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(b.samples.len(), 1);
        assert!(b.samples[0] >= 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        // A setup far more expensive than the routine: the measured time
        // must reflect the routine, not the setup.
        let mut b = Bencher::new(false);
        b.iter_batched(
            || {
                std::thread::sleep(Duration::from_micros(50));
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::PerIteration,
        );
        assert_eq!(b.samples.len(), SAMPLES);
        let r = summarize("setup_exclusion", &b.samples);
        assert!(
            r.median_ns < 25_000.0,
            "setup leaked into measurement: {} ns/iter",
            r.median_ns
        );
    }

    #[test]
    fn batch_size_controls_inputs_per_batch() {
        assert_eq!(BatchSize::SmallInput.inputs_per_batch(), 64);
        assert_eq!(BatchSize::LargeInput.inputs_per_batch(), 8);
        assert_eq!(BatchSize::PerIteration.inputs_per_batch(), 1);

        // Count setup calls in smoke mode: exactly one per measurement.
        let mut calls = 0usize;
        let mut b = smoke_bencher();
        b.iter_batched(
            || {
                calls += 1;
            },
            |()| 0u8,
            BatchSize::SmallInput,
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn summary_orders_median_below_p95() {
        let samples = vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0];
        let r = summarize("x", &samples);
        assert!(r.median_ns <= r.p95_ns);
        assert_eq!(r.samples, 8);
    }

    #[test]
    fn json_output_is_well_formed() {
        let results = vec![
            BenchResult {
                name: "group/one".into(),
                median_ns: 1234.5,
                p95_ns: 2000.0,
                samples: 16,
            },
            BenchResult {
                name: "group/two".into(),
                median_ns: 10.0,
                p95_ns: 11.0,
                samples: 16,
            },
        ];
        let json = to_json(&results);
        assert!(json.contains("\"benches\""));
        assert!(json.contains("\"group/one\""));
        assert!(json.contains("\"median_ns\": 1234.5"));
        // Machine metadata distinguishes 1-core CI runs from dev boxes.
        assert!(json.contains("\"machine\""));
        assert!(json.contains("\"available_parallelism\""));
        assert!(json.contains("\"turbo_runtime_threads\""));
        assert!(json.contains("\"timestamp_unix\""));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let r = vec![BenchResult {
            name: "we\"ird\\name".into(),
            median_ns: 1.0,
            p95_ns: 1.0,
            samples: 1,
        }];
        let json = to_json(&r);
        assert!(json.contains("we\\\"ird\\\\name"));
    }
}
