//! Softmax micro-benchmarks: the SAS claim is that LUT×POLY beats `exp`
//! element-for-element; these benches measure that on the CPU substrate
//! (the GPU-side factor is modelled in `turbo-gpusim`).

use turbo_bench::harness::Criterion;
use turbo_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use turbo_softmax::{softmax, Sas, PAPER_POLY};
use turbo_tensor::TensorRng;

fn scores() -> turbo_tensor::Matrix {
    TensorRng::new(11).normal(64, 256, 0.0, 3.0)
}

fn bench_exp_scalar(c: &mut Criterion) {
    let mut rng = TensorRng::new(12);
    let xs: Vec<f32> = (0..4096)
        .map(|_| -rng.standard_normal().abs() * 3.0)
        .collect();
    let sas = Sas::paper_default();
    let sas16 = Sas::paper_default().with_f16_poly(true);
    let mut g = c.benchmark_group("softmax/exp_4096");
    g.bench_function("std_exp", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in black_box(&xs) {
                acc += x.exp();
            }
            acc
        })
    });
    g.bench_function("sas", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in black_box(&xs) {
                acc += sas.exp(x);
            }
            acc
        })
    });
    g.bench_function("sas_f16_poly", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in black_box(&xs) {
                acc += sas16.exp(x);
            }
            acc
        })
    });
    g.finish();
}

fn bench_full_softmax(c: &mut Criterion) {
    let m = scores();
    let sas = Sas::paper_default();
    let mut g = c.benchmark_group("softmax/full_64x256");
    g.bench_function("exact", |b| b.iter(|| softmax(black_box(&m))));
    g.bench_function("sas", |b| b.iter(|| sas.softmax(black_box(&m))));
    g.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let m = scores();
    let mut g = c.benchmark_group("softmax/sas_threshold");
    for nr in [-3i32, -6, -9] {
        let sas = Sas::new(nr, PAPER_POLY);
        g.bench_function(format!("n_r={nr}"), |b| {
            b.iter(|| sas.softmax(black_box(&m)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_exp_scalar,
    bench_full_softmax,
    bench_threshold_sweep
);
criterion_main!(benches);
