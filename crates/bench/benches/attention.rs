//! Whole-attention benchmarks: prefill and decode per method on the CPU
//! reference kernels.

use turbo_bench::harness::{BatchSize, Criterion};
use turbo_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use turbo_attention::{
    flash_attention, naive_attention, turbo_attend_cache, turbo_attend_cache_splitk,
    turbo_prefill_head, Masking,
};
use turbo_baselines::{
    decode_attention_fp16, GearCache, GearConfig, KiviCache, KiviConfig, KvCompressor,
};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_softmax::Sas;
use turbo_tensor::{Matrix, TensorRng};

const N: usize = 256;
const D: usize = 64;

fn qkv() -> (Matrix, Matrix, Matrix) {
    let mut rng = TensorRng::new(31);
    (
        rng.normal(N, D, 0.0, 1.0),
        rng.normal(N, D, 0.0, 1.0),
        rng.normal(N, D, 0.0, 1.0),
    )
}

fn bench_prefill(c: &mut Criterion) {
    let (q, k, v) = qkv();
    let sas = Sas::paper_default();
    let mut g = c.benchmark_group("attention/prefill_256x64");
    g.bench_function("naive_f32", |b| {
        b.iter(|| naive_attention(black_box(&q), black_box(&k), black_box(&v), Masking::Causal))
    });
    g.bench_function("flash_f32", |b| {
        b.iter(|| {
            flash_attention(
                black_box(&q),
                black_box(&k),
                black_box(&v),
                Masking::Causal,
                64,
                64,
            )
        })
    });
    g.bench_function("turbo", |b| {
        b.iter_batched(
            || HeadKvCache::new(D, KvCacheConfig::default()),
            |mut cache| {
                turbo_prefill_head(
                    black_box(&q),
                    black_box(&k),
                    black_box(&v),
                    Masking::Causal,
                    &sas,
                    64,
                    64,
                    &mut cache,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let (q, k, v) = qkv();
    let sas = Sas::paper_default();

    // Pre-populate each cache with N tokens.
    let mut turbo = HeadKvCache::new(D, KvCacheConfig::default());
    for t in 0..N {
        turbo.append(k.row(t), v.row(t));
    }
    let mut kivi = KiviCache::new(D, KiviConfig::default());
    let mut gear = GearCache::new(D, GearConfig::default());
    for t in 0..N {
        kivi.append(k.row(t), v.row(t));
        gear.append(k.row(t), v.row(t));
    }

    let mut g = c.benchmark_group("attention/decode_over_256");
    g.bench_function("turbo_attend_cache", |b| {
        b.iter(|| turbo_attend_cache(black_box(q.row(0)), &turbo, &sas))
    });
    g.bench_function("turbo_attend_splitk", |b| {
        b.iter(|| turbo_attend_cache_splitk(black_box(q.row(0)), &turbo, &sas))
    });
    g.bench_function("kivi_dequant_then_f16", |b| {
        b.iter(|| decode_attention_fp16(black_box(q.row(0)), &kivi))
    });
    g.bench_function("gear_dequant_then_f16", |b| {
        b.iter(|| decode_attention_fp16(black_box(q.row(0)), &gear))
    });
    g.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    let (q, k, v) = qkv();
    let sas = Sas::paper_default();
    let mut g = c.benchmark_group("attention/turbo_prefill_block_size");
    for (br, bc) in [(32usize, 32usize), (64, 64), (128, 128)] {
        g.bench_function(format!("{br}x{bc}"), |b| {
            b.iter_batched(
                || HeadKvCache::new(D, KvCacheConfig::default()),
                |mut cache| {
                    turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, br, bc, &mut cache)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_prefill, bench_decode, bench_block_sizes);
criterion_main!(benches);
