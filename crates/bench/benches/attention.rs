//! Whole-attention benchmarks: prefill and decode per method on the CPU
//! reference kernels.

use turbo_bench::harness::{BatchSize, Criterion};
use turbo_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use turbo_attention::{
    flash_attention, multilayer_episode_pipelined_on, multilayer_episode_serialized,
    naive_attention, splitk_wins, turbo_attend_cache, turbo_attend_cache_into,
    turbo_attend_cache_splitk, turbo_attend_cache_splitk_on, turbo_prefill_head, Masking,
    Scratch, TurboAttention, SPLITK_MIN_TOKENS,
};
use turbo_quant::BitWidth;
use turbo_baselines::{
    decode_attention_fp16, GearCache, GearConfig, KiviCache, KiviConfig, KvCompressor,
};
use turbo_kvcache::{HeadKvCache, KvCacheConfig};
use turbo_softmax::Sas;
use turbo_tensor::{Matrix, TensorRng};

const N: usize = 256;
const D: usize = 64;

fn qkv() -> (Matrix, Matrix, Matrix) {
    let mut rng = TensorRng::new(31);
    (
        rng.normal(N, D, 0.0, 1.0),
        rng.normal(N, D, 0.0, 1.0),
        rng.normal(N, D, 0.0, 1.0),
    )
}

fn bench_prefill(c: &mut Criterion) {
    let (q, k, v) = qkv();
    let sas = Sas::paper_default();
    let mut g = c.benchmark_group("attention/prefill_256x64");
    g.bench_function("naive_f32", |b| {
        b.iter(|| naive_attention(black_box(&q), black_box(&k), black_box(&v), Masking::Causal))
    });
    g.bench_function("flash_f32", |b| {
        b.iter(|| {
            flash_attention(
                black_box(&q),
                black_box(&k),
                black_box(&v),
                Masking::Causal,
                64,
                64,
            )
        })
    });
    g.bench_function("turbo", |b| {
        b.iter_batched(
            || HeadKvCache::new(D, KvCacheConfig::default()),
            |mut cache| {
                turbo_prefill_head(
                    black_box(&q),
                    black_box(&k),
                    black_box(&v),
                    Masking::Causal,
                    &sas,
                    64,
                    64,
                    &mut cache,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let (q, k, v) = qkv();
    let sas = Sas::paper_default();

    // Pre-populate each cache with N tokens.
    let mut turbo = HeadKvCache::new(D, KvCacheConfig::default());
    for t in 0..N {
        turbo.append(k.row(t), v.row(t));
    }
    let mut kivi = KiviCache::new(D, KiviConfig::default());
    let mut gear = GearCache::new(D, GearConfig::default());
    for t in 0..N {
        kivi.append(k.row(t), v.row(t));
        gear.append(k.row(t), v.row(t));
    }

    let mut g = c.benchmark_group("attention/decode_over_256");
    g.bench_function("turbo_attend_cache", |b| {
        b.iter(|| turbo_attend_cache(black_box(q.row(0)), &turbo, &sas))
    });
    // The strictly allocation-free variant: caller-owned scratch arena
    // and output row, warm resident-tile cache.
    let mut scratch = Scratch::for_cache(&turbo);
    let mut out_row: Vec<f32> = Vec::with_capacity(D);
    g.bench_function("turbo_attend_cache_into", |b| {
        b.iter(|| {
            turbo_attend_cache_into(black_box(q.row(0)), &turbo, &sas, &mut scratch, &mut out_row);
            black_box(out_row[0])
        })
    });
    g.bench_function("turbo_attend_splitk", |b| {
        b.iter(|| turbo_attend_cache_splitk(black_box(q.row(0)), &turbo, &sas))
    });
    // One full decode step — append the new token's K/V, then attend —
    // with and without the write-ahead log on the append path. The delta
    // is the durability tax of crash-consistent serving.
    //
    // Every durability row here uses a *persistent* cache/set: each
    // iteration appends one token, and every `EPISODE` tokens the state
    // checkpoints and trims back to the 256-token prefix (the real
    // serving cadence). The earlier clone-per-iteration shape timed the
    // clone *and the drop* of the full structure inside the routine, so
    // the reported "WAL tax" was mostly clone/drop traffic — ~10× on the
    // layer set — not durability.
    const EPISODE: usize = 256;
    let durable = {
        let mut d = turbo_kvcache::DurableHeadCache::from_cache(turbo.clone());
        d.checkpoint();
        d
    };
    {
        let mut cache = turbo.clone();
        let mut tok = 0usize;
        g.bench_function("turbo_decode_step", |b| {
            b.iter(|| {
                cache.append(k.row(0), v.row(0));
                tok += 1;
                if tok == EPISODE {
                    tok = 0;
                    cache = turbo.clone();
                }
                turbo_attend_cache(black_box(q.row(0)), &cache, &sas)
            })
        });
    }
    {
        let mut d = durable.clone();
        let mut tok = 0usize;
        g.bench_function("turbo_decode_step_with_wal", |b| {
            b.iter(|| {
                d.try_append(k.row(0), v.row(0)).expect("decode append");
                tok += 1;
                if tok == EPISODE {
                    tok = 0;
                    d.checkpoint();
                    d = durable.clone();
                }
                turbo_attend_cache(black_box(q.row(0)), d.cache(), &sas)
            })
        });
    }
    // Durability at model scale: 8 heads receive the token's K/V rows.
    // The per-head baseline logs 8 WAL records per token (one flush per
    // head); the layer-level group commit logs one record carrying all 8
    // heads. Both rows append to all 8 caches and attend on head 0, so
    // the delta between them is purely the logging path.
    const HEADS: usize = 8;
    let head_wals: Vec<turbo_kvcache::DurableHeadCache> = (0..HEADS)
        .map(|_| {
            let mut d = turbo_kvcache::DurableHeadCache::from_cache(turbo.clone());
            d.checkpoint();
            d
        })
        .collect();
    let layer_set = {
        let mut s = turbo_kvcache::DurableLayerSet::new(
            1,
            HEADS,
            D,
            KvCacheConfig::default(),
            Box::new(turbo_kvcache::NeverCheckpoint),
        );
        for t in 0..N {
            let kr: Vec<&[f32]> = vec![k.row(t); HEADS];
            let vr: Vec<&[f32]> = vec![v.row(t); HEADS];
            s.try_append_token(&kr, &vr, None).expect("prefill");
        }
        s.checkpoint(None);
        s
    };
    {
        let mut ds = head_wals.clone();
        let mut tok = 0usize;
        g.bench_function("turbo_decode_step_8head_head_wals", |b| {
            b.iter(|| {
                for d in ds.iter_mut() {
                    d.try_append(k.row(0), v.row(0)).expect("decode append");
                }
                tok += 1;
                if tok == EPISODE {
                    tok = 0;
                    for d in ds.iter_mut() {
                        d.checkpoint();
                    }
                    ds = head_wals.clone();
                }
                turbo_attend_cache(black_box(q.row(0)), ds[0].cache(), &sas)
            })
        });
    }
    let kr: Vec<&[f32]> = vec![k.row(0); HEADS];
    let vr: Vec<&[f32]> = vec![v.row(0); HEADS];
    {
        let mut s = layer_set.clone();
        let mut tok = 0usize;
        g.bench_function("turbo_decode_step_with_layer_wal", |b| {
            b.iter(|| {
                s.try_append_token(&kr, &vr, None).expect("decode append");
                tok += 1;
                if tok == EPISODE {
                    tok = 0;
                    s.checkpoint(None);
                    s = layer_set.clone();
                }
                turbo_attend_cache(black_box(q.row(0)), s.layer(0).head(0), &sas)
            })
        });
    }
    // Batched WAL flush (fsync every 8 tokens instead of every token):
    // the delta vs the row above is the amortized durability tax.
    {
        let mut s = layer_set.clone();
        s.set_flush_every_n_tokens(8);
        let mut tok = 0usize;
        g.bench_function("turbo_decode_step_with_layer_wal_flush8", |b| {
            b.iter(|| {
                s.try_append_token(&kr, &vr, None).expect("decode append");
                tok += 1;
                if tok == EPISODE {
                    tok = 0;
                    s.checkpoint(None);
                    s = layer_set.clone();
                    s.set_flush_every_n_tokens(8);
                }
                turbo_attend_cache(black_box(q.row(0)), s.layer(0).head(0), &sas)
            })
        });
    }
    g.bench_function("kivi_dequant_then_f16", |b| {
        b.iter(|| decode_attention_fp16(black_box(q.row(0)), &kivi))
    });
    g.bench_function("gear_dequant_then_f16", |b| {
        b.iter(|| decode_attention_fp16(black_box(q.row(0)), &gear))
    });
    g.finish();
}

/// Integer micro-kernels, scalar arm vs the detected dispatch arm, on
/// the shapes the fused sweeps actually run (64-wide dot for QK^T at
/// d=64; a 64×64×64 tile GEMM). On a machine without vector support the
/// two rows coincide; the delta is the per-call win the SIMD layer buys
/// before any fusion. These rows are recorded for the trend, not gated —
/// the end-to-end prefill/decode rows above are the gate.
fn bench_i8_kernels(c: &mut Criterion) {
    use turbo_tensor::simd::{dot_i8_on, matmul_i8t_on};
    use turbo_tensor::{simd_level, SimdLevel};
    let mut rng = TensorRng::new(41);
    let mk = |n: usize, rng: &mut TensorRng| -> Vec<i8> {
        (0..n)
            .map(|_| (rng.standard_normal() * 40.0).clamp(-127.0, 127.0) as i8)
            .collect()
    };
    let a = mk(D, &mut rng);
    let b = mk(D, &mut rng);
    let ga = mk(64 * D, &mut rng);
    let gb = mk(64 * D, &mut rng);
    let level = simd_level();

    let mut g = c.benchmark_group("attention/kernels_i8");
    g.bench_function("dot_64/scalar", |bch| {
        bch.iter(|| dot_i8_on(SimdLevel::Scalar, black_box(&a), black_box(&b)))
    });
    g.bench_function("dot_64/dispatched", |bch| {
        bch.iter(|| dot_i8_on(level, black_box(&a), black_box(&b)))
    });
    let mut out = Vec::with_capacity(64 * 64);
    g.bench_function("matmul_64x64x64/scalar", |bch| {
        bch.iter(|| {
            matmul_i8t_on(SimdLevel::Scalar, black_box(&ga), black_box(&gb), 64, D, 64, &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("matmul_64x64x64/dispatched", |bch| {
        bch.iter(|| {
            matmul_i8t_on(level, black_box(&ga), black_box(&gb), 64, D, 64, &mut out);
            black_box(out[0])
        })
    });
    g.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    let (q, k, v) = qkv();
    let sas = Sas::paper_default();
    let mut g = c.benchmark_group("attention/turbo_prefill_block_size");
    for (br, bc) in [(32usize, 32usize), (64, 64), (128, 128)] {
        g.bench_function(format!("{br}x{bc}"), |b| {
            b.iter_batched(
                || HeadKvCache::new(D, KvCacheConfig::default()),
                |mut cache| {
                    turbo_prefill_head(&q, &k, &v, Masking::Causal, &sas, br, bc, &mut cache)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// 32-head layer prefill, serial vs. pooled: the headline number for the
/// execution runtime. On a ≥4-core machine the pooled path should show
/// ≥2× over serial; on fewer cores the two converge (the pool adds no
/// arithmetic, only scheduling).
fn bench_prefill_layer_32head(c: &mut Criterion) {
    const H: usize = 32;
    const SEQ: usize = 128;
    let mut rng = TensorRng::new(77);
    let mk = |rng: &mut TensorRng| -> Vec<Matrix> {
        (0..H).map(|_| rng.normal(SEQ, D, 0.0, 1.0)).collect()
    };
    let qs = mk(&mut rng);
    let ks = mk(&mut rng);
    let vs = mk(&mut rng);
    let bits = [BitWidth::Int4; H];
    let engine = TurboAttention::default();

    let mut g = c.benchmark_group("attention/prefill_layer_32head_128x64");
    g.bench_function("serial", |b| {
        b.iter(|| engine.prefill_layer(black_box(&qs), black_box(&ks), black_box(&vs), &bits))
    });
    g.bench_function("pooled", |b| {
        b.iter(|| {
            engine.prefill_layer_parallel(black_box(&qs), black_box(&ks), black_box(&vs), &bits)
        })
    });
    g.finish();
}

/// Multi-layer pipelined episode vs. the serialized reference: an
/// 8-layer × 2-head shard runs a 48-token prompt (8-token chunks) plus
/// 16 decode steps through the same [`LayerPipeline`] DAG, either in
/// task order or released to the pool. Both engines are bit-identical by
/// construction (the integration suite pins that), so this delta is pure
/// scheduling: on a multi-core box the pipelined row should win by
/// overlapping layer k+1's prefill with layer k's decode; on one core it
/// pays only the pool's dispatch overhead. Both rows are median-gated.
fn bench_multilayer(c: &mut Criterion) {
    use turbo_kvcache::{DurableLayerSet, NeverCheckpoint};
    const LAYERS: usize = 8;
    const ML_HEADS: usize = 2;
    const ML_D: usize = 32;
    const PROMPT: usize = 48;
    const DECODE: usize = 16;
    const CHUNK: usize = 8;
    let mut rng = TensorRng::new(53);
    let prompt = rng.normal(PROMPT, ML_HEADS * ML_D, 0.0, 1.0);
    let decode = rng.normal(DECODE, ML_HEADS * ML_D, 0.0, 1.0);
    let sas = Sas::paper_default();
    let fresh = || {
        DurableLayerSet::new(
            LAYERS,
            ML_HEADS,
            ML_D,
            KvCacheConfig::default(),
            Box::new(NeverCheckpoint),
        )
    };
    let rt = turbo_runtime::global();

    let mut g = c.benchmark_group("attention/multilayer_8layer");
    g.bench_function("serialized", |b| {
        b.iter_batched(
            fresh,
            |mut set| {
                multilayer_episode_serialized(&mut set, &prompt, &decode, &sas, CHUNK, None)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pipelined", |b| {
        b.iter_batched(
            fresh,
            |mut set| {
                multilayer_episode_pipelined_on(rt, &mut set, &prompt, &decode, &sas, CHUNK, None)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The split-K routing crossover: fused vs. split-K decode attention at
/// the routing threshold ([`SPLITK_MIN_TOKENS`] cached tokens) and one
/// octave below it. These rows pin the constant empirically — on a
/// multi-core box split-K should win at the threshold and lose below it;
/// on one core `splitk_wins` routes everything to the fused kernel and
/// the rows record how far from break-even the partitioned sweep runs.
/// Recorded for the trend, not gated (the crossover is machine-shaped).
fn bench_splitk_crossover(c: &mut Criterion) {
    let mut rng = TensorRng::new(59);
    let q: Vec<f32> = (0..D).map(|_| rng.standard_normal()).collect();
    let sas = Sas::paper_default();
    let rt = turbo_runtime::global();

    let mut g = c.benchmark_group("attention/splitk_crossover");
    for tokens in [SPLITK_MIN_TOKENS / 2, SPLITK_MIN_TOKENS] {
        let mut cache = HeadKvCache::new(D, KvCacheConfig::default());
        let ctx = rng.normal(tokens, D, 0.0, 1.0);
        for t in 0..tokens {
            cache.append(ctx.row(t), ctx.row(t));
        }
        g.bench_function(format!("fused_{tokens}"), |b| {
            b.iter(|| turbo_attend_cache(black_box(&q), &cache, &sas))
        });
        g.bench_function(format!("splitk_{tokens}"), |b| {
            b.iter(|| turbo_attend_cache_splitk_on(rt, black_box(&q), &cache, &sas))
        });
        // Sanity: the routing predicate agrees with the threshold the
        // rows straddle.
        assert_eq!(
            splitk_wins(tokens, rt.workers().max(2)),
            tokens >= SPLITK_MIN_TOKENS
        );
    }
    g.finish();
}

/// Fleet control-plane throughput: one diurnal day (8 epochs × 12
/// requests = 96 requests) served through the SLO-driven autoscaled
/// fleet, with and without correlated chaos bursts. Each iteration runs
/// the whole control loop, so requests/s = 96 / (median_ns × 1e-9); the
/// delta between the rows is the cost of enduring bursts (kills, WAL
/// rebuilds, scale-ups) versus steady diurnal serving.
fn bench_fleet(c: &mut Criterion) {
    use turbo_gpusim::{
        fleet::FleetWorkloadSpec, run_fleet, AttnMethod, FleetConfig, GpuSpec, ModelGeometry,
    };
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let chaos = FleetConfig {
        epochs: 8,
        burst_every: 4,
        workload: FleetWorkloadSpec {
            requests_per_epoch: 12,
            ..FleetWorkloadSpec::default()
        },
        ..FleetConfig::default()
    };
    let quiet = FleetConfig {
        burst_every: 0,
        ..chaos.clone()
    };
    let mut g = c.benchmark_group("fleet/diurnal_8ep_96req");
    g.bench_function("no_chaos", |b| {
        b.iter(|| {
            run_fleet(
                black_box(&gpu),
                &geom,
                AttnMethod::FlashFp16,
                &quiet,
                2026,
                None,
            )
        })
    });
    g.bench_function("chaos_bursts", |b| {
        b.iter(|| {
            run_fleet(
                black_box(&gpu),
                &geom,
                AttnMethod::FlashFp16,
                &chaos,
                2026,
                None,
            )
        })
    });
    g.finish();
}

/// Continuous-batching scheduler at production scale: 2048 concurrent
/// short sequences (32-token prompts, 12 generated tokens each) admitted
/// through the budgeted event loop. At 3-bit resident KV the entire
/// cohort's ~90k-token reservation fits the device and the scheduler
/// holds all 2048 sequences in flight at once; FP16 must serve the same
/// load in memory-limited waves. Each iteration runs the whole episode
/// (admission sweeps, chunked prefills, batched decode steps, ledger),
/// so sequences/s = 2048 / (median_ns × 1e-9).
fn bench_continuous_serving(c: &mut Criterion) {
    use turbo_gpusim::{
        simulate_serving_continuous, AttnMethod, GpuSpec, ModelGeometry, SchedulerConfig,
        ServingPolicy, WorkloadSpec,
    };
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let reqs = WorkloadSpec {
        n: 2048,
        rate: 200_000.0,
        prompt: 32,
        gen: 12,
        seed: 0x7007,
    }
    .requests();
    let policy = ServingPolicy {
        sched: SchedulerConfig {
            prefill_chunk: 32,
            max_batch_prefill_tokens: 8192,
            max_batch_size: 4096,
            ..SchedulerConfig::default()
        },
        ..ServingPolicy::default()
    };
    let mut g = c.benchmark_group("serving/continuous_2048seq");
    g.bench_function("turbo3", |b| {
        b.iter(|| {
            simulate_serving_continuous(
                black_box(&gpu),
                &geom,
                AttnMethod::Turbo { kv_bits: 3.0 },
                &reqs,
                &policy,
                None,
            )
        })
    });
    g.bench_function("flash_fp16", |b| {
        b.iter(|| {
            simulate_serving_continuous(
                black_box(&gpu),
                &geom,
                AttnMethod::FlashFp16,
                &reqs,
                &policy,
                None,
            )
        })
    });
    g.finish();
}

/// Sharded long-context serving: a 128k-token context partitioned over
/// 4 shards, served through the full episode — fan-out dispatch with
/// hedging, a degraded-zone burst, a mid-episode shard kill with WAL
/// tear, deterministic re-shard (prefix migration + suffix re-prefill +
/// map epoch bump + tile-cache invalidation), and the per-shard
/// lockstep serve. Each iteration runs the whole episode including its
/// ledger asserts, so episodes/s = 1 / (median_ns × 1e-9); the
/// turbo3-vs-fp16 delta prices the serving phase, the rest is the
/// shared durability machinery.
fn bench_sharded_serving(c: &mut Criterion) {
    use turbo_gpusim::{
        run_sharded_episode, uniform_workload, AttnMethod, GpuSpec, ModelGeometry, ShardedConfig,
    };
    use turbo_robust::{ChaosAction, ChaosEvent};
    let gpu = GpuSpec::a100_80gb();
    let geom = ModelGeometry::phi3_medium();
    let config = ShardedConfig {
        shards: 4,
        context_tokens: 131_072,
        ..ShardedConfig::default()
    };
    let reqs = uniform_workload(6, 1.5, 256, 16, 77);
    let chaos = [
        ChaosEvent {
            time: 0.5,
            action: ChaosAction::DegradeZone {
                zone: 1,
                latency_factor: 4.0,
                wal_rot: 0.7,
                duration: 3.0,
            },
        },
        ChaosEvent {
            time: 1.5,
            action: ChaosAction::KillReplica {
                replica: 1,
                wal_cut: 0.9,
            },
        },
    ];
    let mut g = c.benchmark_group("serving/sharded_128k_4shard");
    g.bench_function("turbo3", |b| {
        b.iter(|| {
            run_sharded_episode(
                black_box(&gpu),
                &geom,
                AttnMethod::Turbo { kv_bits: 3.0 },
                &reqs,
                &chaos,
                &config,
                31,
                None,
            )
        })
    });
    g.bench_function("flash_fp16", |b| {
        b.iter(|| {
            run_sharded_episode(
                black_box(&gpu),
                &geom,
                AttnMethod::FlashFp16,
                &reqs,
                &chaos,
                &config,
                31,
                None,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_prefill,
    bench_decode,
    bench_i8_kernels,
    bench_block_sizes,
    bench_multilayer,
    bench_splitk_crossover,
    bench_prefill_layer_32head,
    bench_fleet,
    bench_continuous_serving,
    bench_sharded_serving,
);
criterion_main!(benches);
