//! GEMM micro-benchmarks across precisions.

use turbo_bench::harness::Criterion;
use turbo_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use turbo_tensor::{matmul, matmul_f16, matmul_i8_transposed_b, matmul_transposed_b, TensorRng};

fn bench_f32_vs_f16(c: &mut Criterion) {
    let mut rng = TensorRng::new(21);
    let a = rng.normal(64, 128, 0.0, 1.0);
    let b = rng.normal(128, 64, 0.0, 1.0);
    let mut g = c.benchmark_group("matmul/64x128x64");
    g.bench_function("f32", |bch| {
        bch.iter(|| matmul(black_box(&a), black_box(&b)))
    });
    g.bench_function("f16_emulated", |bch| {
        bch.iter(|| matmul_f16(black_box(&a), black_box(&b)))
    });
    g.finish();
}

fn bench_scores_layout(c: &mut Criterion) {
    let mut rng = TensorRng::new(22);
    let q = rng.normal(64, 128, 0.0, 1.0);
    let k = rng.normal(64, 128, 0.0, 1.0);
    c.bench_function("matmul/scores_transposed_b_64x128x64", |b| {
        b.iter(|| matmul_transposed_b(black_box(&q), black_box(&k)))
    });
}

fn bench_i8(c: &mut Criterion) {
    let a: Vec<i8> = (0..64 * 128).map(|i| (i % 255) as u8 as i8).collect();
    let bt: Vec<i8> = (0..64 * 128).map(|i| ((i * 7) % 255) as u8 as i8).collect();
    c.bench_function("matmul/i8_transposed_b_64x128x64", |b| {
        b.iter(|| matmul_i8_transposed_b(black_box(&a), black_box(&bt), 64, 128, 64))
    });
}

criterion_group!(benches, bench_f32_vs_f16, bench_scores_layout, bench_i8);
criterion_main!(benches);
