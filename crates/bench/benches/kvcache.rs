//! KV-cache benchmarks, including the universal-scale buffer ablation
//! from DESIGN.md: fixed-scale append+clamp (the paper's design) vs
//! re-deriving a scale for every appended row.

use turbo_bench::harness::{BatchSize, Criterion};
use turbo_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use turbo_kvcache::{HeadKvCache, Int8Buffer, KvCacheConfig};
use turbo_quant::symmetric::quantize_slice_sym;
use turbo_quant::BitWidth;
use turbo_tensor::{Matrix, TensorRng};

const D: usize = 128;

fn rows(n: usize) -> Matrix {
    TensorRng::new(41).normal(n, D, 0.0, 1.0)
}

fn bench_buffer_append(c: &mut Criterion) {
    let data = rows(64);
    let mut g = c.benchmark_group("kvcache/buffer_scale_ablation_64_rows");
    // The paper's design: one universal scale, later rows clamp.
    g.bench_function("universal_scale", |b| {
        b.iter_batched(
            || Int8Buffer::new(D),
            |mut buf| {
                for t in 0..64 {
                    buf.append(black_box(data.row(t)));
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
    // The alternative KIVI/GEAR avoid: re-deriving a scale per row (which
    // would force per-row parameter storage and block integer matmuls).
    g.bench_function("per_row_rescale", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(64 * D);
            let mut scales = Vec::with_capacity(64);
            for t in 0..64 {
                let (codes, scale) = quantize_slice_sym(black_box(data.row(t)));
                out.extend(codes);
                scales.push(scale);
            }
            (out, scales)
        })
    });
    g.finish();
}

fn bench_decode_append_and_flush(c: &mut Criterion) {
    let data = rows(256);
    let mut g = c.benchmark_group("kvcache/append_256_tokens");
    for bits in [BitWidth::Int4, BitWidth::Int2] {
        g.bench_function(format!("{bits}"), |b| {
            b.iter_batched(
                || {
                    HeadKvCache::new(
                        D,
                        KvCacheConfig {
                            bits,
                            group_size: 64,
                            buffer_capacity: 64,
                        },
                    )
                },
                |mut cache| {
                    for t in 0..256 {
                        cache.append(black_box(data.row(t)), black_box(data.row(t)));
                    }
                    cache
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_prefill_block(c: &mut Criterion) {
    let k = rows(64);
    c.bench_function("kvcache/prefill_block_64x128_int4", |b| {
        b.iter_batched(
            || HeadKvCache::new(D, KvCacheConfig::default()),
            |mut cache| {
                cache.append_prefill_block(black_box(&k), black_box(&k));
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_persistence(c: &mut Criterion) {
    let data = rows(256);
    let mut cache = HeadKvCache::new(D, KvCacheConfig::default());
    for t in 0..256 {
        cache.append(data.row(t), data.row(t));
    }
    let bytes = cache.to_bytes();
    let mut g = c.benchmark_group("kvcache/persist_256x128");
    g.bench_function("serialize", |b| b.iter(|| black_box(&cache).to_bytes()));
    g.bench_function("deserialize", |b| {
        b.iter(|| HeadKvCache::from_bytes(black_box(&bytes)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_buffer_append,
    bench_decode_append_and_flush,
    bench_prefill_block,
    bench_persistence
);
criterion_main!(benches);
