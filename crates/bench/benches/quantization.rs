//! Quantization-kernel micro-benchmarks, including the
//! progressive-vs-direct ablation called out in DESIGN.md.

use turbo_bench::harness::{BatchSize, Criterion};
use turbo_bench::{criterion_group, criterion_main};
use std::hint::black_box;
use turbo_quant::asymmetric::fake_quant_channelwise;
use turbo_quant::{AsymQuantized, BitWidth, PackedCodes, ProgressiveBlock, SymQuantized};
use turbo_tensor::{Matrix, TensorRng};

fn tile() -> Matrix {
    TensorRng::new(7).normal(64, 128, 0.0, 1.0)
}

fn bench_symmetric_int8(c: &mut Criterion) {
    let m = tile();
    c.bench_function("quant/symmetric_int8_64x128", |b| {
        b.iter(|| SymQuantized::quantize(black_box(&m)))
    });
}

fn bench_progressive(c: &mut Criterion) {
    let m = tile();
    let mut g = c.benchmark_group("quant/progressive_64x128");
    for bits in [BitWidth::Int4, BitWidth::Int2] {
        g.bench_function(format!("{bits}"), |b| {
            b.iter(|| ProgressiveBlock::quantize(black_box(&m), bits, 64))
        });
    }
    let pq = ProgressiveBlock::quantize(&m, BitWidth::Int4, 64);
    g.bench_function("dequantize_to_int8", |b| {
        b.iter(|| black_box(&pq).dequantize_to_int8())
    });
    g.finish();
}

/// Ablation: two-stage progressive INT4 vs direct float asymmetric INT4
/// at the same (channel-wise) granularity.
fn bench_progressive_vs_direct(c: &mut Criterion) {
    let m = tile();
    let mut g = c.benchmark_group("quant/progressive_vs_direct_int4");
    g.bench_function("progressive", |b| {
        b.iter(|| ProgressiveBlock::quantize(black_box(&m), BitWidth::Int4, 64))
    });
    g.bench_function("direct_channelwise_float", |b| {
        b.iter(|| fake_quant_channelwise(black_box(&m), BitWidth::Int4, 64))
    });
    g.finish();
}

fn bench_asymmetric_group(c: &mut Criterion) {
    let mut rng = TensorRng::new(9);
    let xs: Vec<f32> = (0..4096).map(|_| rng.standard_normal()).collect();
    let mut g = c.benchmark_group("quant/asymmetric_group_4096");
    for bits in [BitWidth::Int2, BitWidth::Int4, BitWidth::Int8] {
        g.bench_function(format!("{bits}"), |b| {
            b.iter(|| AsymQuantized::quantize(black_box(&xs), bits))
        });
    }
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("quant/packing_8192");
    for bits in [BitWidth::Int2, BitWidth::Int4] {
        let codes: Vec<u8> = (0..8192u32).map(|i| (i % bits.levels()) as u8).collect();
        g.bench_function(format!("pack_{bits}"), |b| {
            b.iter(|| PackedCodes::pack(black_box(&codes), bits))
        });
        let packed = PackedCodes::pack(&codes, bits);
        g.bench_function(format!("unpack_{bits}"), |b| {
            b.iter_batched(
                || packed.clone(),
                |p| black_box(p.unpack()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_symmetric_int8,
    bench_progressive,
    bench_progressive_vs_direct,
    bench_asymmetric_group,
    bench_packing
);
criterion_main!(benches);
