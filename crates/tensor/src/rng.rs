//! Deterministic random tensor generation for workloads.
//!
//! All evaluation workloads in this reproduction are synthetic, so
//! determinism matters: the same seed must regenerate the same table row.
//! [`TensorRng`] wraps a self-contained seeded PCG32 generator (no external
//! dependencies, so the workspace builds offline) and supplies the
//! distributions the paper's analysis depends on, including the
//! channel-outlier structure of query/key activations shown in Figure 4.

use crate::matrix::Matrix;

/// A PCG-XSH-RR 32-bit generator (O'Neill 2014): a 64-bit LCG state with
/// an output permutation. Small, fast, statistically solid for synthetic
/// workload generation, and fully deterministic across platforms.
#[derive(Clone, Debug)]
struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MUL: u64 = 6364136223846793005;

/// SplitMix64 step — used only to expand a 64-bit seed into the PCG
/// state/stream pair so nearby seeds produce unrelated streams.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Pcg32 {
    fn new(seed: u64) -> Self {
        let mut sm = seed;
        let init_state = splitmix64(&mut sm);
        let init_inc = splitmix64(&mut sm) | 1; // stream must be odd
        let mut pcg = Self {
            state: 0,
            inc: init_inc,
        };
        pcg.next_u32();
        pcg.state = pcg.state.wrapping_add(init_state);
        pcg.next_u32();
        pcg
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform f32 in `[0, 1)` from the top 24 bits.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Seeded random tensor generator.
///
/// # Example
///
/// ```
/// use turbo_tensor::TensorRng;
///
/// let mut rng = TensorRng::new(42);
/// let a = rng.normal(4, 8, 0.0, 1.0);
/// let mut rng2 = TensorRng::new(42);
/// let b = rng2.normal(4, 8, 0.0, 1.0);
/// assert_eq!(a, b); // same seed, same tensor
/// ```
#[derive(Clone, Debug)]
pub struct TensorRng {
    rng: Pcg32,
    /// Cached second Box-Muller output.
    spare: Option<f32>,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Pcg32::new(seed),
            spare: None,
        }
    }

    /// One standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f32 = 1.0 - self.rng.next_f32();
        let u2: f32 = self.rng.next_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// One uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_value(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty uniform range");
        lo + (hi - lo) * self.rng.next_f32()
    }

    /// One uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Modulo over a 64-bit draw: bias is < 2^-40 for any practical n.
        (self.rng.next_u64() % n as u64) as usize
    }

    /// A `rows × cols` matrix of `N(mean, std²)` samples.
    pub fn normal(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| mean + std * self.standard_normal())
    }

    /// A `rows × cols` matrix of `U[lo, hi)` samples.
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.uniform_value(lo, hi))
    }

    /// A Gaussian activation matrix where the listed channels (columns) are
    /// amplified by `outlier_scale` — the channel-outlier pattern the paper
    /// observes in query/key tensors (Figure 4) and that motivates
    /// channel-wise second-stage quantization.
    pub fn normal_with_channel_outliers(
        &mut self,
        rows: usize,
        cols: usize,
        std: f32,
        outlier_channels: &[usize],
        outlier_scale: f32,
    ) -> Matrix {
        let mut m = self.normal(rows, cols, 0.0, std);
        for &c in outlier_channels {
            assert!(
                c < cols,
                "outlier channel {c} out of bounds for {cols} cols"
            );
            for r in 0..rows {
                m.set(r, c, m.get(r, c) * outlier_scale);
            }
        }
        m
    }

    /// Chooses `count` distinct indices from `[0, n)` (partial
    /// Fisher–Yates), e.g. to pick which channels carry outliers.
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    pub fn distinct_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot draw {count} distinct from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(count);
        pool
    }

    /// Permutes `0..n` uniformly at random.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        self.distinct_indices(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = TensorRng::new(7).normal(8, 8, 0.0, 1.0);
        let b = TensorRng::new(7).normal(8, 8, 0.0, 1.0);
        assert_eq!(a, b);
        let c = TensorRng::new(8).normal(8, 8, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = TensorRng::new(1).normal(200, 200, 2.0, 3.0);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = TensorRng::new(2).uniform(50, 50, -1.0, 3.0);
        assert!(m.as_slice().iter().all(|&x| (-1.0..3.0).contains(&x)));
    }

    #[test]
    fn outlier_channels_are_amplified() {
        let m = TensorRng::new(3).normal_with_channel_outliers(500, 16, 1.0, &[3, 9], 20.0);
        let ranges = crate::reduce::col_max_min(&m);
        let gap = |c: usize| ranges[c].0 - ranges[c].1;
        // Outlier channels should have a far larger range than typical ones.
        assert!(gap(3) > 4.0 * gap(0));
        assert!(gap(9) > 4.0 * gap(1));
    }

    #[test]
    fn distinct_indices_are_distinct_and_in_range() {
        let mut rng = TensorRng::new(4);
        let idx = rng.distinct_indices(20, 10);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|&i| i < 20));
    }

    #[test]
    fn permutation_covers_all() {
        let mut rng = TensorRng::new(5);
        let mut p = rng.permutation(16);
        p.sort_unstable();
        assert_eq!(p, (0..16).collect::<Vec<_>>());
    }
}
