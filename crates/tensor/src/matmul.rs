//! Matrix-multiplication kernels.
//!
//! Three families, mirroring the precisions the paper's kernels use:
//!
//! * [`matmul`] / [`matmul_transposed_b`] — `f32` reference GEMM.
//! * [`matmul_f16`] — inputs rounded through binary16, `f32` accumulation:
//!   the numerics of an FP16 tensor-core MMA.
//! * [`matmul_i8`] / [`matmul_i8_transposed_b`] — `i8 × i8 → i32`
//!   accumulation: the numerics of an INT8 tensor-core MMA (IMMA). `i32`
//!   accumulation cannot overflow for the dimensions used in attention
//!   (`|a·b| ≤ 127² · k`, safe up to [`DOT_I8_MAX_LEN`] ≈ 2¹⁷ — *not*
//!   unbounded; longer reductions must go through [`dot_i8_wide`]).
//!
//! The integer dot/GEMM kernels dispatch once per process to an
//! explicit-SIMD arm (see [`crate::simd`]); every arm is bit-identical
//! to the scalar fallback.

use crate::half::round_f16;
use crate::matrix::Matrix;
use crate::simd;

/// Largest slice length the `i32`-accumulating integer kernels accept
/// before a debug assertion fires.
///
/// Every product is bounded by `127² = 16129`, so a length-`k` dot is
/// bounded by `16129 · k`; the exact wrap point is
/// `⌊(2³¹−1)/16129⌋ = 133 151`. We pin the guard at the power of two
/// below it (`2¹⁷ = 131 072`) so the bound is memorable and leaves
/// headroom. The SIMD arms are *stricter* than scalar about partial
/// sums (AVX2 lanes accumulate `k/8` products each, NEON `k/4`), so a
/// length that passes this bound is safe on every arm. Callers with
/// longer reductions (e.g. full-channel statistics over 100k+ token
/// contexts) must use [`dot_i8_wide`], which chunks into `i64`.
pub const DOT_I8_MAX_LEN: usize = 131_072;

/// Exact `f32` GEMM: `C = A · B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use turbo_tensor::{Matrix, matmul};
/// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
/// assert_eq!(matmul(&a, &b).get(0, 0), 11.0);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (kk, &av) in arow.iter().enumerate().take(k) {
            let brow = b.row(kk);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// This is the natural layout for attention scores `S = Q · Kᵀ` where both
/// `Q` and `K` are stored token-major.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transposed_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transposed_b dimension mismatch: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
    c
}

/// FP16-emulated GEMM: inputs and the per-element products are rounded
/// through binary16; accumulation stays in `f32` (tensor-core semantics).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_f16(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_f16 dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += round_f16(a.get(i, kk)) * round_f16(b.get(kk, j));
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// INT8 GEMM with `i32` accumulation: `C = A · B`.
///
/// `a` is `m × k` row-major, `b` is `k × n` row-major.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn matmul_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "a length mismatch");
    assert_eq!(b.len(), k * n, "b length mismatch");
    debug_assert!(
        k <= DOT_I8_MAX_LEN,
        "matmul_i8 k {k} exceeds the i32-safe bound {DOT_I8_MAX_LEN}"
    );
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk] as i32;
            if av == 0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv as i32;
            }
        }
    }
    c
}

/// `i8 × i8 → i32` dot product over equal-length slices — the shared
/// inner kernel of every integer GEMM here, dispatched once per process
/// to the best available SIMD arm ([`simd::simd_level`]).
///
/// On AVX2 this widens `i8→i16` and multiply-accumulates pairs with
/// `pmaddwd` (16 exact products per instruction); on NEON it uses
/// `vmull_s8` + `vpadalq_s16`; elsewhere it falls back to a zip
/// reduction LLVM auto-vectorizes. All arms are bit-identical because
/// every partial product is exact and integer addition is associative.
///
/// # Panics
///
/// Panics if the slices differ in length. Debug builds additionally
/// assert `a.len() <= `[`DOT_I8_MAX_LEN`] — beyond that the `i32`
/// accumulator can wrap silently; long-`k` callers must use
/// [`dot_i8_wide`].
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert!(
        a.len() <= DOT_I8_MAX_LEN,
        "dot_i8 length {} exceeds the i32-safe bound {DOT_I8_MAX_LEN}; use dot_i8_wide",
        a.len()
    );
    simd::dot_i8_on(simd::simd_level(), a, b)
}

/// Overflow-proof `i8 × i8 → i64` dot product for reductions longer
/// than [`DOT_I8_MAX_LEN`]: the slices are processed in
/// `DOT_I8_MAX_LEN`-sized chunks through the dispatched `i32` kernel
/// and the per-chunk sums accumulate in `i64` (exact for any
/// representable slice length, since `16129 · 2⁶³⁻¹⁴` is unreachable).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_i8_wide(a: &[i8], b: &[i8]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let level = simd::simd_level();
    a.chunks(DOT_I8_MAX_LEN)
        .zip(b.chunks(DOT_I8_MAX_LEN))
        .map(|(ca, cb)| simd::dot_i8_on(level, ca, cb) as i64)
        .sum()
}

/// INT8 GEMM against a transposed second operand: `C = A · Bᵀ`.
///
/// `a` is `m × k`, `b` is `n × k`, both row-major; result is `m × n` in
/// `i32`. This matches the `Q⁸ · (K⁸)ᵀ` step of Algorithm 1.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn matmul_i8_transposed_b(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut c = Vec::new();
    matmul_i8_transposed_b_into(a, b, m, k, n, &mut c);
    c
}

/// Allocation-free [`matmul_i8_transposed_b`]: writes the `m × n` result
/// into `out` (cleared and refilled; no reallocation once `out` has
/// capacity). The SIMD arm is resolved once up front
/// ([`simd::matmul_i8t_on`]) rather than per inner dot; on AVX2 a
/// four-output micro-kernel shares each widened `a` chunk across four
/// `b` rows. Bit-identical to the scalar twin because integer adds are
/// exact.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
/// Debug builds additionally assert `k <= `[`DOT_I8_MAX_LEN`] (the
/// `i32` accumulator wraps beyond it).
pub fn matmul_i8_transposed_b_into(
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    out: &mut Vec<i32>,
) {
    debug_assert!(
        k <= DOT_I8_MAX_LEN,
        "matmul_i8_transposed_b k {k} exceeds the i32-safe bound {DOT_I8_MAX_LEN}"
    );
    simd::matmul_i8t_on(simd::simd_level(), a, b, m, k, n, out);
}

/// Row-sum of an `i8` matrix in `i32` — the correction term
/// `Σ_k Q(A_ik)` needed by asymmetric integer GEMMs (Equation 5).
pub fn row_sums_i8(a: &[i8], m: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "length mismatch");
    (0..m)
        .map(|i| a[i * k..(i + 1) * k].iter().map(|&x| x as i32).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(matmul(&a, &Matrix::eye(3)), a);
        assert_eq!(matmul(&Matrix::eye(3), &a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transposed_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.37);
        let b = Matrix::from_fn(5, 6, |r, c| (r * c) as f32 * 0.11 - 1.0);
        let direct = matmul_transposed_b(&a, &b);
        let via_t = matmul(&a, &b.transpose());
        for i in 0..4 {
            for j in 0..5 {
                assert!((direct.get(i, j) - via_t.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn f16_matmul_close_to_f32_for_small_values() {
        let a = Matrix::from_fn(3, 8, |r, c| ((r + c) as f32 * 0.125) - 0.5);
        let b = Matrix::from_fn(8, 3, |r, c| ((r * c) as f32 * 0.0625) - 0.25);
        let exact = matmul(&a, &b);
        let approx = matmul_f16(&a, &b);
        for i in 0..3 {
            for j in 0..3 {
                assert!((exact.get(i, j) - approx.get(i, j)).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn f16_matmul_is_exact_on_f16_grid() {
        // Inputs already representable in f16 -> identical to f32 result.
        let a = Matrix::from_fn(2, 4, |r, c| (r as f32 + c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| r as f32 - c as f32);
        assert_eq!(matmul(&a, &b), matmul_f16(&a, &b));
    }

    #[test]
    fn i8_matmul_matches_i64_reference() {
        let m = 5;
        let k = 17;
        let n = 7;
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|i| ((i * 91 + 3) % 255) as i8).collect();
        let c = matmul_i8(&a, &b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += a[i * k + kk] as i64 * b[kk * n + j] as i64;
                }
                assert_eq!(c[i * n + j] as i64, acc);
            }
        }
    }

    #[test]
    fn i8_transposed_matches_dense() {
        let m = 4;
        let k = 9;
        let n = 6;
        let a: Vec<i8> = (0..m * k).map(|i| (i as i32 % 251 - 125) as i8).collect();
        let bt: Vec<i8> = (0..n * k).map(|i| (i as i32 % 201 - 100) as i8).collect();
        // Build dense b (k x n) from bt (n x k).
        let mut b = vec![0i8; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        assert_eq!(
            matmul_i8_transposed_b(&a, &bt, m, k, n),
            matmul_i8(&a, &b, m, k, n)
        );
    }

    #[test]
    fn i8_extremes_do_not_overflow_i32() {
        // Worst case: all entries ±127 over k=1024 -> 127*127*1024 ≈ 1.65e7,
        // far below i32::MAX. Verify exactness at extremes.
        let k = 1024;
        let a = vec![127i8; k];
        let b = vec![-128i8; k];
        let c = matmul_i8(&a, &b, 1, k, 1);
        assert_eq!(c[0], 127 * -128 * k as i32);
    }

    #[test]
    fn unrolled_dot_matches_naive_at_all_lengths() {
        // Lengths around the 4-wide unroll boundary, including ragged tails.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 65] {
            let a: Vec<i8> = (0..len).map(|i| ((i * 73 + 5) % 255) as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| ((i * 131 + 17) % 255) as i8).collect();
            let naive: i32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| x as i32 * y as i32)
                .sum();
            assert_eq!(dot_i8(&a, &b), naive, "len {len}");
        }
    }

    #[test]
    fn into_variant_matches_and_reuses_capacity() {
        let (m, k, n) = (3usize, 13usize, 5usize);
        let a: Vec<i8> = (0..m * k).map(|i| (i as i32 % 251 - 125) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| (i as i32 % 201 - 100) as i8).collect();
        let direct = matmul_i8_transposed_b(&a, &b, m, k, n);
        let mut buf = Vec::new();
        matmul_i8_transposed_b_into(&a, &b, m, k, n, &mut buf);
        assert_eq!(direct, buf);
        let cap = buf.capacity();
        matmul_i8_transposed_b_into(&a, &b, m, k, n, &mut buf);
        assert_eq!(buf.capacity(), cap, "second call must not reallocate");
    }

    #[test]
    fn row_sums() {
        let a: Vec<i8> = vec![1, -2, 3, 100, -100, 5];
        assert_eq!(row_sums_i8(&a, 2, 3), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn wide_dot_is_exact_past_the_i32_wrap_point() {
        // 127·127·k overflows i32 at k = 133 152; at k = 200 000 the true
        // sum is 16129 · 200 000 = 3 225 800 000 > i32::MAX. The chunked
        // i64 path must report it exactly (the i32 kernel would wrap to a
        // negative value here).
        let k = 200_000usize;
        let a = vec![127i8; k];
        let b = vec![127i8; k];
        assert_eq!(dot_i8_wide(&a, &b), 16_129i64 * k as i64);
        // Mixed-sign long reduction with a non-trivial ragged tail.
        let a2: Vec<i8> = (0..k + 7).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b2: Vec<i8> = (0..k + 7).map(|i| ((i * 91 + 3) % 255) as i8).collect();
        let reference: i64 = a2
            .iter()
            .zip(&b2)
            .map(|(&x, &y)| x as i64 * y as i64)
            .sum();
        assert_eq!(dot_i8_wide(&a2, &b2), reference);
    }

    #[test]
    fn wide_dot_matches_narrow_below_the_bound() {
        let a: Vec<i8> = (0..4096).map(|i| ((i * 73 + 5) % 255) as i8).collect();
        let b: Vec<i8> = (0..4096).map(|i| ((i * 131 + 17) % 255) as i8).collect();
        assert_eq!(dot_i8_wide(&a, &b), dot_i8(&a, &b) as i64);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the i32-safe bound")]
    fn long_k_narrow_dot_trips_the_guard() {
        let a = vec![0i8; DOT_I8_MAX_LEN + 1];
        let b = vec![0i8; DOT_I8_MAX_LEN + 1];
        dot_i8(&a, &b);
    }
}
