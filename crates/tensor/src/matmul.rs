//! Matrix-multiplication kernels.
//!
//! Three families, mirroring the precisions the paper's kernels use:
//!
//! * [`matmul`] / [`matmul_transposed_b`] — `f32` reference GEMM.
//! * [`matmul_f16`] — inputs rounded through binary16, `f32` accumulation:
//!   the numerics of an FP16 tensor-core MMA.
//! * [`matmul_i8`] / [`matmul_i8_transposed_b`] — `i8 × i8 → i32`
//!   accumulation: the numerics of an INT8 tensor-core MMA (IMMA). `i32`
//!   accumulation cannot overflow for the dimensions used in attention
//!   (`|a·b| ≤ 127² · k`, so `k` up to ~2²⁷ is safe).

use crate::half::round_f16;
use crate::matrix::Matrix;

/// Exact `f32` GEMM: `C = A · B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use turbo_tensor::{Matrix, matmul};
/// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
/// assert_eq!(matmul(&a, &b).get(0, 0), 11.0);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (kk, &av) in arow.iter().enumerate().take(k) {
            let brow = b.row(kk);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// This is the natural layout for attention scores `S = Q · Kᵀ` where both
/// `Q` and `K` are stored token-major.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transposed_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_transposed_b dimension mismatch: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
    c
}

/// FP16-emulated GEMM: inputs and the per-element products are rounded
/// through binary16; accumulation stays in `f32` (tensor-core semantics).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_f16(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_f16 dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += round_f16(a.get(i, kk)) * round_f16(b.get(kk, j));
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// INT8 GEMM with `i32` accumulation: `C = A · B`.
///
/// `a` is `m × k` row-major, `b` is `k × n` row-major.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn matmul_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "a length mismatch");
    assert_eq!(b.len(), k * n, "b length mismatch");
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk] as i32;
            if av == 0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv as i32;
            }
        }
    }
    c
}

/// Unrolled `i8 × i8 → i32` dot product over equal-length slices — the
/// shared inner kernel of every integer GEMM here.
///
/// Written as a bounds-check-free zip reduction: integer adds are
/// associative, so LLVM is free to split the accumulator into as many
/// independent lanes as the target vector width allows (16+ i8 lanes
/// with widening multiplies). A hand-unrolled 4-accumulator variant was
/// measured at 2× *slower* on the reference target — fixing the lane
/// count manually pins the vectorizer below its natural width. Either
/// shape is bit-identical to the naive single-accumulator loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// INT8 GEMM against a transposed second operand: `C = A · Bᵀ`.
///
/// `a` is `m × k`, `b` is `n × k`, both row-major; result is `m × n` in
/// `i32`. This matches the `Q⁸ · (K⁸)ᵀ` step of Algorithm 1.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn matmul_i8_transposed_b(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut c = Vec::new();
    matmul_i8_transposed_b_into(a, b, m, k, n, &mut c);
    c
}

/// Allocation-free [`matmul_i8_transposed_b`]: writes the `m × n` result
/// into `out` (cleared and refilled; no reallocation once `out` has
/// capacity). The inner dot runs through the 4-wide-unrolled [`dot_i8`],
/// which is bit-identical to the naive accumulation because integer adds
/// are exact.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the given dimensions.
pub fn matmul_i8_transposed_b_into(
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    out: &mut Vec<i32>,
) {
    assert_eq!(a.len(), m * k, "a length mismatch");
    assert_eq!(b.len(), n * k, "b length mismatch");
    out.clear();
    out.reserve(m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            out.push(dot_i8(arow, &b[j * k..(j + 1) * k]));
        }
    }
}

/// Row-sum of an `i8` matrix in `i32` — the correction term
/// `Σ_k Q(A_ik)` needed by asymmetric integer GEMMs (Equation 5).
pub fn row_sums_i8(a: &[i8], m: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "length mismatch");
    (0..m)
        .map(|i| a[i * k..(i + 1) * k].iter().map(|&x| x as i32).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(matmul(&a, &Matrix::eye(3)), a);
        assert_eq!(matmul(&Matrix::eye(3), &a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transposed_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.37);
        let b = Matrix::from_fn(5, 6, |r, c| (r * c) as f32 * 0.11 - 1.0);
        let direct = matmul_transposed_b(&a, &b);
        let via_t = matmul(&a, &b.transpose());
        for i in 0..4 {
            for j in 0..5 {
                assert!((direct.get(i, j) - via_t.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn f16_matmul_close_to_f32_for_small_values() {
        let a = Matrix::from_fn(3, 8, |r, c| ((r + c) as f32 * 0.125) - 0.5);
        let b = Matrix::from_fn(8, 3, |r, c| ((r * c) as f32 * 0.0625) - 0.25);
        let exact = matmul(&a, &b);
        let approx = matmul_f16(&a, &b);
        for i in 0..3 {
            for j in 0..3 {
                assert!((exact.get(i, j) - approx.get(i, j)).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn f16_matmul_is_exact_on_f16_grid() {
        // Inputs already representable in f16 -> identical to f32 result.
        let a = Matrix::from_fn(2, 4, |r, c| (r as f32 + c as f32) * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| r as f32 - c as f32);
        assert_eq!(matmul(&a, &b), matmul_f16(&a, &b));
    }

    #[test]
    fn i8_matmul_matches_i64_reference() {
        let m = 5;
        let k = 17;
        let n = 7;
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|i| ((i * 91 + 3) % 255) as i8).collect();
        let c = matmul_i8(&a, &b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += a[i * k + kk] as i64 * b[kk * n + j] as i64;
                }
                assert_eq!(c[i * n + j] as i64, acc);
            }
        }
    }

    #[test]
    fn i8_transposed_matches_dense() {
        let m = 4;
        let k = 9;
        let n = 6;
        let a: Vec<i8> = (0..m * k).map(|i| (i as i32 % 251 - 125) as i8).collect();
        let bt: Vec<i8> = (0..n * k).map(|i| (i as i32 % 201 - 100) as i8).collect();
        // Build dense b (k x n) from bt (n x k).
        let mut b = vec![0i8; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        assert_eq!(
            matmul_i8_transposed_b(&a, &bt, m, k, n),
            matmul_i8(&a, &b, m, k, n)
        );
    }

    #[test]
    fn i8_extremes_do_not_overflow_i32() {
        // Worst case: all entries ±127 over k=1024 -> 127*127*1024 ≈ 1.65e7,
        // far below i32::MAX. Verify exactness at extremes.
        let k = 1024;
        let a = vec![127i8; k];
        let b = vec![-128i8; k];
        let c = matmul_i8(&a, &b, 1, k, 1);
        assert_eq!(c[0], 127 * -128 * k as i32);
    }

    #[test]
    fn unrolled_dot_matches_naive_at_all_lengths() {
        // Lengths around the 4-wide unroll boundary, including ragged tails.
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 65] {
            let a: Vec<i8> = (0..len).map(|i| ((i * 73 + 5) % 255) as i8).collect();
            let b: Vec<i8> = (0..len).map(|i| ((i * 131 + 17) % 255) as i8).collect();
            let naive: i32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| x as i32 * y as i32)
                .sum();
            assert_eq!(dot_i8(&a, &b), naive, "len {len}");
        }
    }

    #[test]
    fn into_variant_matches_and_reuses_capacity() {
        let (m, k, n) = (3usize, 13usize, 5usize);
        let a: Vec<i8> = (0..m * k).map(|i| (i as i32 % 251 - 125) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| (i as i32 % 201 - 100) as i8).collect();
        let direct = matmul_i8_transposed_b(&a, &b, m, k, n);
        let mut buf = Vec::new();
        matmul_i8_transposed_b_into(&a, &b, m, k, n, &mut buf);
        assert_eq!(direct, buf);
        let cap = buf.capacity();
        matmul_i8_transposed_b_into(&a, &b, m, k, n, &mut buf);
        assert_eq!(buf.capacity(), cap, "second call must not reallocate");
    }

    #[test]
    fn row_sums() {
        let a: Vec<i8> = vec![1, -2, 3, 100, -100, 5];
        assert_eq!(row_sums_i8(&a, 2, 3), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }
}
