//! Explicit-SIMD kernels behind one-time runtime feature dispatch.
//!
//! Every kernel here has a **scalar twin** that is the semantic source of
//! truth: the SIMD arm must produce bit-identical results for every input
//! (pinned by exhaustive equivalence tests at ragged lengths around every
//! vector-width boundary). This is a hard requirement, not a nicety — the
//! workspace's determinism suites (worker-count bit-identity, crash-
//! consistency replay, sharding content CRCs) compare outputs across
//! machines and arms byte-for-byte, so a kernel whose vector arm drifts
//! by one ULP would make recovery "corruption" indistinguishable from
//! dispatch differences.
//!
//! Bit-identity is cheap for the integer kernels: `i8×i8→i32` products
//! are exact and integer addition is associative, so any lane split gives
//! the same sums (as long as nothing overflows — see
//! [`crate::matmul::DOT_I8_MAX_LEN`]). The floating-point kernels are
//! engineered for it: every lane performs the *same operations in the
//! same order* as the scalar twin (no FMA contraction, true division
//! instead of reciprocal multiplication, explicit round-half-away-from-
//! zero instead of the hardware's round-half-even), so IEEE-754
//! determinism gives bitwise equality per element.
//!
//! Dispatch is decided once per process ([`simd_level`]) from CPU
//! feature detection, overridable with `TURBO_SIMD=0|off|scalar` so CI
//! can pin the scalar fallback arm under test on any machine.

use std::sync::OnceLock;

/// A kernel arm selectable at runtime.
///
/// [`simd_level`] picks the best available arm once per process; the
/// `*_on` kernel entry points accept an explicit level so tests and
/// benches can exercise both arms in the same process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar kernels — the always-correct reference arm.
    Scalar,
    /// 256-bit AVX2 kernels (x86-64): widening `i8→i16→i32` integer
    /// dot/matmul via `pmaddwd`, plus vectorized SAS exponentiation and
    /// symmetric INT8 encode.
    Avx2,
    /// 128-bit NEON kernels (aarch64): widening `vmull_s8` +
    /// `vpadalq_s16` integer dot/matmul (four `b` rows per sweep),
    /// vectorized SAS exponentiation with a `vqtbl2q`-resident LUT, and
    /// symmetric INT8 encode via `FRINTA` (the hardware round-half-away
    /// the scalar twin specifies).
    Neon,
}

impl SimdLevel {
    /// Whether this arm can run on the current machine.
    pub fn available(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            SimdLevel::Avx2 => false,
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(target_arch = "aarch64"))]
            SimdLevel::Neon => false,
        }
    }
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

/// The process-wide dispatch decision, detected once on first call and
/// cached (subsequent calls are a single atomic load).
///
/// Setting `TURBO_SIMD=0`, `off`, or `scalar` in the environment forces
/// [`SimdLevel::Scalar`] regardless of CPU features — the hook CI uses to
/// keep the scalar fallback arm covered on SIMD-capable machines. The
/// variable is read once; changing it after the first kernel call has no
/// effect.
pub fn simd_level() -> SimdLevel {
    *LEVEL.get_or_init(|| {
        if let Ok(v) = std::env::var("TURBO_SIMD") {
            let v = v.to_ascii_lowercase();
            if v == "0" || v == "off" || v == "scalar" {
                return SimdLevel::Scalar;
            }
        }
        if SimdLevel::Avx2.available() {
            SimdLevel::Avx2
        } else if SimdLevel::Neon.available() {
            SimdLevel::Neon
        } else {
            SimdLevel::Scalar
        }
    })
}

/// Number of `i8` elements the widest integer-dot vector step consumes —
/// equivalence tests sweep every ragged length in `0..=4 * lanes + 3`.
pub const DOT_I8_SIMD_LANES: usize = 32;

/// `f32` lanes of the vectorized SAS / quantize kernels.
pub const F32_SIMD_LANES: usize = 8;

#[inline]
pub(crate) fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// `i8 × i8 → i32` dot product on an explicit arm.
///
/// Bit-identical across arms (integer accumulation is exact). Prefer
/// [`crate::dot_i8`], which dispatches on [`simd_level`]; this entry
/// point exists so tests and benches can pin a specific arm.
///
/// # Panics
///
/// Panics if the slices differ in length or `level` is not
/// [`available`](SimdLevel::available) on this machine.
#[inline]
pub fn dot_i8_on(level: SimdLevel, a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match level {
        SimdLevel::Scalar => dot_i8_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            assert!(level.available(), "AVX2 not available on this machine");
            // SAFETY: AVX2 support verified at runtime above.
            unsafe { x86::dot_i8_avx2(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            assert!(level.available(), "NEON not available on this machine");
            // SAFETY: NEON support verified at runtime above.
            unsafe { arm::dot_i8_neon(a, b) }
        }
        #[allow(unreachable_patterns)]
        other => panic!("SIMD level {other:?} is not supported on this target"),
    }
}

/// `C = A · Bᵀ` integer GEMM on an explicit arm, writing the `m × n`
/// result into `out` (cleared and refilled; no reallocation once `out`
/// has capacity). `a` is `m × k`, `b` is `n × k`, both row-major.
///
/// The AVX2 arm processes four `b` rows per sweep so each `a` chunk is
/// loaded once per four outputs; results are bit-identical to the scalar
/// twin because every `i32` partial sum is exact.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with the dimensions or
/// `level` is not available on this machine.
pub fn matmul_i8t_on(
    level: SimdLevel,
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    out: &mut Vec<i32>,
) {
    assert_eq!(a.len(), m * k, "a length mismatch");
    assert_eq!(b.len(), n * k, "b length mismatch");
    out.clear();
    match level {
        SimdLevel::Scalar => {
            out.reserve(m * n);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    out.push(dot_i8_scalar(arow, &b[j * k..(j + 1) * k]));
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            assert!(level.available(), "AVX2 not available on this machine");
            out.resize(m * n, 0);
            // SAFETY: AVX2 support verified at runtime above; `out` was
            // just sized to exactly m*n.
            unsafe { x86::matmul_i8t_avx2(a, b, m, k, n, out) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            assert!(level.available(), "NEON not available on this machine");
            out.resize(m * n, 0);
            // SAFETY: NEON support verified at runtime above; `out` was
            // just sized to exactly m*n.
            unsafe { arm::matmul_i8t_neon(a, b, m, k, n, out) }
        }
        #[allow(unreachable_patterns)]
        other => panic!("SIMD level {other:?} is not supported on this target"),
    }
}

/// The scalar SAS exponential the vector arms are pinned against:
/// `exp(x) ≈ lut[⌊-x⌋] · poly(frac)` for max-subtracted scores, with
/// NaN → 0, positive jitter clamped to 0, and strict-below-threshold
/// sparsified to exactly 0. Operation-for-operation identical to
/// `turbo_softmax::Sas::exp` (pinned by that crate's tests).
#[inline]
pub fn sas_exp_scalar(x: f32, threshold: f32, lut: &[f32], coeffs: [f32; 4]) -> f32 {
    if x.is_nan() {
        return 0.0;
    }
    let x = x.min(0.0);
    if x < threshold {
        return 0.0;
    }
    let t = -x;
    let n = t as usize;
    let frac = t - n as f32;
    let [c0, c1, c2, c3] = coeffs;
    let p = ((c3 * frac + c2) * frac + c1) * frac + c0;
    lut[n] * p
}

/// Vectorized SAS tile-exp over a row of `f32` scores: writes
/// `exp(scores[j] - m_new)` (per [`sas_exp_scalar`]) into `out[j]`.
///
/// Returns `false` — leaving `out` untouched — when `level` has no
/// vector arm for this kernel (Scalar) or the LUT exceeds the 8 entries
/// a register-resident table holds (i.e. `threshold < -7`: one 256-bit
/// register on AVX2, a `vqtbl2q` byte-table pair on NEON); the caller
/// then runs its scalar twin. Returns `true` after filling `out` with
/// results bit-identical to the scalar twin.
///
/// # Panics
///
/// Panics if `scores` and `out` differ in length, `lut` is empty, or an
/// unavailable level is requested.
pub fn sas_exp_row_on(
    level: SimdLevel,
    scores: &[f32],
    m_new: f32,
    threshold: f32,
    lut: &[f32],
    coeffs: [f32; 4],
    out: &mut [f32],
) -> bool {
    assert_eq!(scores.len(), out.len(), "score/probability length mismatch");
    assert!(!lut.is_empty(), "empty LUT");
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if lut.len() <= F32_SIMD_LANES => {
            assert!(level.available(), "AVX2 not available on this machine");
            // SAFETY: AVX2 support verified at runtime above.
            unsafe { x86::sas_exp_row_avx2(scores, m_new, threshold, lut, coeffs, out) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon if lut.len() <= F32_SIMD_LANES => {
            assert!(level.available(), "NEON not available on this machine");
            // SAFETY: NEON support verified at runtime above.
            unsafe { arm::sas_exp_row_neon(scores, m_new, threshold, lut, coeffs, out) };
            true
        }
        _ => false,
    }
}

/// As [`sas_exp_row_on`], fused with the integer-score epilogue: the
/// input is a row of raw `i32` GEMM sums and each lane computes
/// `x = codes[j] as f32 * s_scale - m_new` before the SAS exponential —
/// the INT8 score tile never materializes as an `f32` buffer.
///
/// # Panics
///
/// As [`sas_exp_row_on`].
#[allow(clippy::too_many_arguments)] // mirrors sas_exp_row_on plus the (codes, scale) pair
pub fn sas_exp_scaled_row_on(
    level: SimdLevel,
    codes: &[i32],
    s_scale: f32,
    m_new: f32,
    threshold: f32,
    lut: &[f32],
    coeffs: [f32; 4],
    out: &mut [f32],
) -> bool {
    assert_eq!(codes.len(), out.len(), "score/probability length mismatch");
    assert!(!lut.is_empty(), "empty LUT");
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if lut.len() <= F32_SIMD_LANES => {
            assert!(level.available(), "AVX2 not available on this machine");
            // SAFETY: AVX2 support verified at runtime above.
            unsafe {
                x86::sas_exp_scaled_row_avx2(codes, s_scale, m_new, threshold, lut, coeffs, out)
            };
            true
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon if lut.len() <= F32_SIMD_LANES => {
            assert!(level.available(), "NEON not available on this machine");
            // SAFETY: NEON support verified at runtime above.
            unsafe {
                arm::sas_exp_scaled_row_neon(codes, s_scale, m_new, threshold, lut, coeffs, out)
            };
            true
        }
        _ => false,
    }
}

/// The scalar symmetric-INT8 encode the vector arm is pinned against:
/// `(v / scale).round().clamp(-127, 127) as i8` (round half away from
/// zero, saturating cast, NaN → 0).
#[inline]
pub fn quantize_i8_scalar(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Vectorized symmetric-INT8 encode pass: writes
/// [`quantize_i8_scalar`]`(x[j], scale)` into `out[j]`.
///
/// Returns `false` (with `out` untouched) when `level` has no vector arm
/// for this kernel; the caller runs its scalar twin. Both vector arms use
/// true IEEE division and round half away from zero so results are
/// bit-identical to the scalar twin: AVX2 builds the rounding from an
/// explicit `trunc` + `|frac| ≥ 0.5` bump (its native rounding is
/// half-to-even, which would differ on exact `.5` midpoints), NEON uses
/// the hardware `FRINTA`, which is half-away by definition.
///
/// # Panics
///
/// Panics if `x` and `out` differ in length or an unavailable level is
/// requested.
pub fn quantize_i8_row_on(level: SimdLevel, x: &[f32], scale: f32, out: &mut [i8]) -> bool {
    assert_eq!(x.len(), out.len(), "input/output length mismatch");
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            assert!(level.available(), "AVX2 not available on this machine");
            // SAFETY: AVX2 support verified at runtime above.
            unsafe { x86::quantize_i8_avx2(x, scale, out) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            assert!(level.available(), "NEON not available on this machine");
            // SAFETY: NEON support verified at runtime above.
            unsafe { arm::quantize_i8_neon(x, scale, out) };
            true
        }
        _ => false,
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 kernel arms. Every `unsafe` here is justified by the callers
    //! in the parent module verifying `is_x86_feature_detected!("avx2")`
    //! before entry; pointer arithmetic stays inside slice bounds by the
    //! loop conditions.

    use std::arch::x86_64::*;

    /// Sign-extend 16 `i8` from each operand and multiply-accumulate
    /// pairs into 8 `i32` lanes (`pmaddwd`): 16 exact products per step.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn madd16(a: *const i8, b: *const i8) -> __m256i {
        unsafe {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b as *const __m128i));
            _mm256_madd_epi16(va, vb)
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b10_11_00_01));
        _mm_cvtsi128_si32(s)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        unsafe {
            let mut acc = _mm256_setzero_si256();
            let mut i = 0;
            while i + 32 <= n {
                let m0 = madd16(ap.add(i), bp.add(i));
                let m1 = madd16(ap.add(i + 16), bp.add(i + 16));
                acc = _mm256_add_epi32(acc, _mm256_add_epi32(m0, m1));
                i += 32;
            }
            if i + 16 <= n {
                acc = _mm256_add_epi32(acc, madd16(ap.add(i), bp.add(i)));
                i += 16;
            }
            let mut sum = hsum_epi32(acc);
            while i < n {
                sum += *ap.add(i) as i32 * *bp.add(i) as i32;
                i += 1;
            }
            sum
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_i8t_avx2(
        a: &[i8],
        b: &[i8],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        debug_assert_eq!(out.len(), m * n);
        unsafe {
            for i in 0..m {
                let arow = a.as_ptr().add(i * k);
                let orow = out.as_mut_ptr().add(i * n);
                let mut j = 0;
                // Four b-rows per sweep: each 16-wide a chunk is loaded
                // (and widened) once per four outputs.
                while j + 4 <= n {
                    let b0 = b.as_ptr().add(j * k);
                    let b1 = b.as_ptr().add((j + 1) * k);
                    let b2 = b.as_ptr().add((j + 2) * k);
                    let b3 = b.as_ptr().add((j + 3) * k);
                    let mut acc0 = _mm256_setzero_si256();
                    let mut acc1 = _mm256_setzero_si256();
                    let mut acc2 = _mm256_setzero_si256();
                    let mut acc3 = _mm256_setzero_si256();
                    let mut t = 0;
                    while t + 16 <= k {
                        let va =
                            _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.add(t) as *const __m128i));
                        let w = |p: *const i8| {
                            _mm256_cvtepi8_epi16(_mm_loadu_si128(p as *const __m128i))
                        };
                        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, w(b0.add(t))));
                        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, w(b1.add(t))));
                        acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, w(b2.add(t))));
                        acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, w(b3.add(t))));
                        t += 16;
                    }
                    // Reduce the four accumulators to one [s0,s1,s2,s3].
                    let h01 = _mm256_hadd_epi32(acc0, acc1);
                    let h23 = _mm256_hadd_epi32(acc2, acc3);
                    let h = _mm256_hadd_epi32(h01, h23);
                    let s =
                        _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256(h, 1));
                    let mut sums = [0i32; 4];
                    _mm_storeu_si128(sums.as_mut_ptr() as *mut __m128i, s);
                    while t < k {
                        let av = *arow.add(t) as i32;
                        sums[0] += av * *b0.add(t) as i32;
                        sums[1] += av * *b1.add(t) as i32;
                        sums[2] += av * *b2.add(t) as i32;
                        sums[3] += av * *b3.add(t) as i32;
                        t += 1;
                    }
                    *orow.add(j) = sums[0];
                    *orow.add(j + 1) = sums[1];
                    *orow.add(j + 2) = sums[2];
                    *orow.add(j + 3) = sums[3];
                    j += 4;
                }
                while j < n {
                    let arow_s = std::slice::from_raw_parts(arow, k);
                    let brow = std::slice::from_raw_parts(b.as_ptr().add(j * k), k);
                    *orow.add(j) = dot_i8_avx2(arow_s, brow);
                    j += 1;
                }
            }
        }
    }

    /// SAS constants pre-broadcast into registers.
    struct SasConsts {
        thr: __m256,
        lut: __m256,
        c0: __m256,
        c1: __m256,
        c2: __m256,
        c3: __m256,
        zero: __m256,
        signflip: __m256,
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sas_consts(threshold: f32, lut: &[f32], coeffs: [f32; 4]) -> SasConsts {
        debug_assert!(lut.len() <= 8);
        let mut padded = [0.0f32; 8];
        padded[..lut.len()].copy_from_slice(lut);
        unsafe {
            SasConsts {
                thr: _mm256_set1_ps(threshold),
                lut: _mm256_loadu_ps(padded.as_ptr()),
                c0: _mm256_set1_ps(coeffs[0]),
                c1: _mm256_set1_ps(coeffs[1]),
                c2: _mm256_set1_ps(coeffs[2]),
                c3: _mm256_set1_ps(coeffs[3]),
                zero: _mm256_setzero_ps(),
                signflip: _mm256_set1_ps(-0.0),
            }
        }
    }

    /// Eight lanes of [`super::sas_exp_scalar`], bit-identical per lane:
    /// the keep-mask (`x ≥ thr`, ordered — false for NaN) reproduces
    /// both the sparsification cutoff and the NaN→0 rule; `min(x, 0)`
    /// clamps positive jitter; Horner runs as separate mul/add (no FMA);
    /// the ≤8-entry LUT is a register permute.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sas_exp8(x: __m256, c: &SasConsts) -> __m256 {
        let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(x, c.thr);
        let xz = _mm256_min_ps(x, c.zero);
        let t = _mm256_xor_ps(xz, c.signflip);
        let n = _mm256_cvttps_epi32(t);
        let frac = _mm256_sub_ps(t, _mm256_cvtepi32_ps(n));
        let mut p = _mm256_add_ps(_mm256_mul_ps(c.c3, frac), c.c2);
        p = _mm256_add_ps(_mm256_mul_ps(p, frac), c.c1);
        p = _mm256_add_ps(_mm256_mul_ps(p, frac), c.c0);
        let lutv = _mm256_permutevar8x32_ps(c.lut, n);
        _mm256_and_ps(_mm256_mul_ps(lutv, p), keep)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sas_exp_row_avx2(
        scores: &[f32],
        m_new: f32,
        threshold: f32,
        lut: &[f32],
        coeffs: [f32; 4],
        out: &mut [f32],
    ) {
        let n = scores.len();
        unsafe {
            let c = sas_consts(threshold, lut, coeffs);
            let vm = _mm256_set1_ps(m_new);
            let mut i = 0;
            while i + 8 <= n {
                let x = _mm256_sub_ps(_mm256_loadu_ps(scores.as_ptr().add(i)), vm);
                _mm256_storeu_ps(out.as_mut_ptr().add(i), sas_exp8(x, &c));
                i += 8;
            }
            while i < n {
                out[i] = super::sas_exp_scalar(scores[i] - m_new, threshold, lut, coeffs);
                i += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sas_exp_scaled_row_avx2(
        codes: &[i32],
        s_scale: f32,
        m_new: f32,
        threshold: f32,
        lut: &[f32],
        coeffs: [f32; 4],
        out: &mut [f32],
    ) {
        let n = codes.len();
        unsafe {
            let c = sas_consts(threshold, lut, coeffs);
            let vs = _mm256_set1_ps(s_scale);
            let vm = _mm256_set1_ps(m_new);
            let mut i = 0;
            while i + 8 <= n {
                let ci = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
                let x = _mm256_sub_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(ci), vs), vm);
                _mm256_storeu_ps(out.as_mut_ptr().add(i), sas_exp8(x, &c));
                i += 8;
            }
            while i < n {
                let x = codes[i] as f32 * s_scale - m_new;
                out[i] = super::sas_exp_scalar(x, threshold, lut, coeffs);
                i += 1;
            }
        }
    }

    /// Eight lanes of `(v / scale).round().clamp(-127, 127)` as `i32`,
    /// bit-identical to the scalar twin: true division, then
    /// round-half-away-from-zero built from `trunc` + a `|frac| ≥ 0.5`
    /// bump (the naive `trunc(x + copysign(0.5, x))` is *wrong* — e.g.
    /// the largest f32 below 0.5 rounds up through the addition), then
    /// clamp, with NaN lanes forced to 0 like Rust's saturating cast.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn quant8(v: __m256, vscale: __m256) -> __m256i {
        let q = _mm256_div_ps(v, vscale);
        let t = _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(q);
        let d = _mm256_sub_ps(q, t);
        let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let absd = _mm256_and_ps(d, absmask);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let sign = _mm256_and_ps(q, _mm256_set1_ps(-0.0));
        let bump = _mm256_and_ps(
            _mm256_or_ps(one, sign),
            _mm256_cmp_ps::<_CMP_GE_OQ>(absd, half),
        );
        let r = _mm256_add_ps(t, bump);
        let clamped =
            _mm256_max_ps(_mm256_set1_ps(-127.0), _mm256_min_ps(r, _mm256_set1_ps(127.0)));
        let nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(q, q));
        _mm256_andnot_si256(nan, _mm256_cvtps_epi32(clamped))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_i8_avx2(x: &[f32], scale: f32, out: &mut [i8]) {
        let n = x.len();
        unsafe {
            let vscale = _mm256_set1_ps(scale);
            // Dword-permute indices that undo the 128-bit-lane interleave
            // of packs_epi32 + packs_epi16.
            let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
            let mut i = 0;
            while i + 32 <= n {
                let i0 = quant8(_mm256_loadu_ps(x.as_ptr().add(i)), vscale);
                let i1 = quant8(_mm256_loadu_ps(x.as_ptr().add(i + 8)), vscale);
                let i2 = quant8(_mm256_loadu_ps(x.as_ptr().add(i + 16)), vscale);
                let i3 = quant8(_mm256_loadu_ps(x.as_ptr().add(i + 24)), vscale);
                // Values are already in [-127, 127]; packs saturation is
                // a no-op, the permute restores element order.
                let p16a = _mm256_packs_epi32(i0, i1);
                let p16b = _mm256_packs_epi32(i2, i3);
                let p8 = _mm256_packs_epi16(p16a, p16b);
                let fixed = _mm256_permutevar8x32_epi32(p8, fix);
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, fixed);
                i += 32;
            }
            while i < n {
                out[i] = super::quantize_i8_scalar(x[i], scale);
                i += 1;
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    //! NEON kernel arms. Every `unsafe` here is justified by the callers
    //! in the parent module verifying NEON availability before entry;
    //! pointer arithmetic stays inside slice bounds by the loop
    //! conditions. The float kernels follow the same bit-identity
    //! discipline as the AVX2 arm: separate mul/add (intrinsics never
    //! contract to FMA), true division, and masked lanes resolving to
    //! the exact values the scalar twin produces.

    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_i8_neon(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        unsafe {
            let mut acc = vdupq_n_s32(0);
            let mut i = 0;
            while i + 16 <= n {
                let va = vld1q_s8(ap.add(i));
                let vb = vld1q_s8(bp.add(i));
                let lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
                let hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
                acc = vpadalq_s16(acc, lo);
                acc = vpadalq_s16(acc, hi);
                i += 16;
            }
            let mut sum = vaddvq_s32(acc);
            while i < n {
                sum += *ap.add(i) as i32 * *bp.add(i) as i32;
                i += 1;
            }
            sum
        }
    }

    /// Widen one 16-byte chunk of each operand and accumulate the exact
    /// `i16` products into `acc`'s four `i32` lanes.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn mac16(acc: int32x4_t, a: int8x16_t, b: int8x16_t) -> int32x4_t {
        let lo = vmull_s8(vget_low_s8(a), vget_low_s8(b));
        let hi = vmull_s8(vget_high_s8(a), vget_high_s8(b));
        vpadalq_s16(vpadalq_s16(acc, lo), hi)
    }

    /// `C = A · Bᵀ` with four `b` rows per sweep, so each 16-wide `a`
    /// chunk is loaded once per four outputs (mirrors the AVX2
    /// micro-kernel). Exact integer sums — bit-identical to scalar at
    /// any lane split.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn matmul_i8t_neon(
        a: &[i8],
        b: &[i8],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        debug_assert_eq!(out.len(), m * n);
        unsafe {
            for i in 0..m {
                let arow = a.as_ptr().add(i * k);
                let orow = out.as_mut_ptr().add(i * n);
                let mut j = 0;
                while j + 4 <= n {
                    let b0 = b.as_ptr().add(j * k);
                    let b1 = b.as_ptr().add((j + 1) * k);
                    let b2 = b.as_ptr().add((j + 2) * k);
                    let b3 = b.as_ptr().add((j + 3) * k);
                    let mut acc0 = vdupq_n_s32(0);
                    let mut acc1 = vdupq_n_s32(0);
                    let mut acc2 = vdupq_n_s32(0);
                    let mut acc3 = vdupq_n_s32(0);
                    let mut t = 0;
                    while t + 16 <= k {
                        let va = vld1q_s8(arow.add(t));
                        acc0 = mac16(acc0, va, vld1q_s8(b0.add(t)));
                        acc1 = mac16(acc1, va, vld1q_s8(b1.add(t)));
                        acc2 = mac16(acc2, va, vld1q_s8(b2.add(t)));
                        acc3 = mac16(acc3, va, vld1q_s8(b3.add(t)));
                        t += 16;
                    }
                    let mut sums = [
                        vaddvq_s32(acc0),
                        vaddvq_s32(acc1),
                        vaddvq_s32(acc2),
                        vaddvq_s32(acc3),
                    ];
                    while t < k {
                        let av = *arow.add(t) as i32;
                        sums[0] += av * *b0.add(t) as i32;
                        sums[1] += av * *b1.add(t) as i32;
                        sums[2] += av * *b2.add(t) as i32;
                        sums[3] += av * *b3.add(t) as i32;
                        t += 1;
                    }
                    *orow.add(j) = sums[0];
                    *orow.add(j + 1) = sums[1];
                    *orow.add(j + 2) = sums[2];
                    *orow.add(j + 3) = sums[3];
                    j += 4;
                }
                while j < n {
                    let arow_s = std::slice::from_raw_parts(arow, k);
                    let brow = std::slice::from_raw_parts(b.as_ptr().add(j * k), k);
                    *orow.add(j) = dot_i8_neon(arow_s, brow);
                    j += 1;
                }
            }
        }
    }

    /// SAS constants pre-broadcast into registers. The ≤8-entry `f32`
    /// LUT lives in a `vqtbl2q` byte-table pair; each lane's lookup
    /// builds the four byte indices `4n..4n+3` of entry `n`.
    struct SasConsts {
        thr: float32x4_t,
        tbl: uint8x16x2_t,
        c0: float32x4_t,
        c1: float32x4_t,
        c2: float32x4_t,
        c3: float32x4_t,
        zero: float32x4_t,
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn sas_consts(threshold: f32, lut: &[f32], coeffs: [f32; 4]) -> SasConsts {
        debug_assert!(lut.len() <= 8);
        let mut padded = [0.0f32; 8];
        padded[..lut.len()].copy_from_slice(lut);
        unsafe {
            SasConsts {
                thr: vdupq_n_f32(threshold),
                tbl: uint8x16x2_t(
                    vreinterpretq_u8_f32(vld1q_f32(padded.as_ptr())),
                    vreinterpretq_u8_f32(vld1q_f32(padded.as_ptr().add(4))),
                ),
                c0: vdupq_n_f32(coeffs[0]),
                c1: vdupq_n_f32(coeffs[1]),
                c2: vdupq_n_f32(coeffs[2]),
                c3: vdupq_n_f32(coeffs[3]),
                zero: vdupq_n_f32(0.0),
            }
        }
    }

    /// Four lanes of [`super::sas_exp_scalar`], bit-identical per lane:
    /// the keep-mask (`x ≥ thr`, false for NaN) reproduces both the
    /// sparsification cutoff and the NaN→0 rule; `min(x, 0)` clamps
    /// positive jitter (a NaN lane propagates NaN here, unlike the AVX2
    /// `min`, but the keep-mask AND resolves both to `+0.0`); `FCVTZS`
    /// truncates like `cvttps`; Horner runs as separate mul/add; the
    /// LUT lookup is a byte-table permute whose out-of-range indices
    /// (only on masked lanes) read as 0.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn sas_exp4(x: float32x4_t, c: &SasConsts) -> float32x4_t {
        let keep = vcgeq_f32(x, c.thr);
        let xz = vminq_f32(x, c.zero);
        let t = vnegq_f32(xz);
        let n = vcvtq_s32_f32(t);
        let frac = vsubq_f32(t, vcvtq_f32_s32(n));
        let mut p = vaddq_f32(vmulq_f32(c.c3, frac), c.c2);
        p = vaddq_f32(vmulq_f32(p, frac), c.c1);
        p = vaddq_f32(vmulq_f32(p, frac), c.c0);
        // Entry n occupies bytes 4n..4n+3: replicate 4n into each byte
        // of the lane and add the 0,1,2,3 offsets.
        let n4 = vmulq_s32(vshlq_n_s32::<2>(n), vdupq_n_s32(0x0101_0101));
        let idx = vreinterpretq_u8_s32(vaddq_s32(n4, vdupq_n_s32(0x0302_0100)));
        let lutv = vreinterpretq_f32_u8(vqtbl2q_u8(c.tbl, idx));
        vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(vmulq_f32(lutv, p)), keep))
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sas_exp_row_neon(
        scores: &[f32],
        m_new: f32,
        threshold: f32,
        lut: &[f32],
        coeffs: [f32; 4],
        out: &mut [f32],
    ) {
        let n = scores.len();
        unsafe {
            let c = sas_consts(threshold, lut, coeffs);
            let vm = vdupq_n_f32(m_new);
            let mut i = 0;
            while i + 4 <= n {
                let x = vsubq_f32(vld1q_f32(scores.as_ptr().add(i)), vm);
                vst1q_f32(out.as_mut_ptr().add(i), sas_exp4(x, &c));
                i += 4;
            }
            while i < n {
                out[i] = super::sas_exp_scalar(scores[i] - m_new, threshold, lut, coeffs);
                i += 1;
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sas_exp_scaled_row_neon(
        codes: &[i32],
        s_scale: f32,
        m_new: f32,
        threshold: f32,
        lut: &[f32],
        coeffs: [f32; 4],
        out: &mut [f32],
    ) {
        let n = codes.len();
        unsafe {
            let c = sas_consts(threshold, lut, coeffs);
            let vs = vdupq_n_f32(s_scale);
            let vm = vdupq_n_f32(m_new);
            let mut i = 0;
            while i + 4 <= n {
                let ci = vld1q_s32(codes.as_ptr().add(i));
                let x = vsubq_f32(vmulq_f32(vcvtq_f32_s32(ci), vs), vm);
                vst1q_f32(out.as_mut_ptr().add(i), sas_exp4(x, &c));
                i += 4;
            }
            while i < n {
                let x = codes[i] as f32 * s_scale - m_new;
                out[i] = super::sas_exp_scalar(x, threshold, lut, coeffs);
                i += 1;
            }
        }
    }

    /// Four lanes of `(v / scale).round().clamp(-127, 127)` as `i32`,
    /// bit-identical to the scalar twin: true division, then `FRINTA`
    /// (round to nearest, ties away from zero — exactly Rust's
    /// `f32::round`), then clamp. A NaN lane propagates through
    /// round/clamp and `FCVTZS` converts it to 0, matching the scalar
    /// saturating cast; ±∞ clamps to ±127.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn quant4(v: float32x4_t, vscale: float32x4_t) -> int32x4_t {
        let q = vdivq_f32(v, vscale);
        let r = vrndaq_f32(q);
        let clamped = vmaxq_f32(vdupq_n_f32(-127.0), vminq_f32(r, vdupq_n_f32(127.0)));
        vcvtq_s32_f32(clamped)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn quantize_i8_neon(x: &[f32], scale: f32, out: &mut [i8]) {
        let n = x.len();
        unsafe {
            let vscale = vdupq_n_f32(scale);
            let mut i = 0;
            while i + 16 <= n {
                let i0 = quant4(vld1q_f32(x.as_ptr().add(i)), vscale);
                let i1 = quant4(vld1q_f32(x.as_ptr().add(i + 4)), vscale);
                let i2 = quant4(vld1q_f32(x.as_ptr().add(i + 8)), vscale);
                let i3 = quant4(vld1q_f32(x.as_ptr().add(i + 12)), vscale);
                // Values are already in [-127, 127]; the saturating
                // narrows are exact.
                let p16a = vcombine_s16(vqmovn_s32(i0), vqmovn_s32(i1));
                let p16b = vcombine_s16(vqmovn_s32(i2), vqmovn_s32(i3));
                let p8 = vcombine_s8(vqmovn_s16(p16a), vqmovn_s16(p16b));
                vst1q_s8(out.as_mut_ptr().add(i), p8);
                i += 16;
            }
            while i < n {
                out[i] = super::quantize_i8_scalar(x[i], scale);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_i8(len: usize, mul: usize, add: usize) -> Vec<i8> {
        (0..len).map(|i| ((i * mul + add) % 255) as i8 ).collect()
    }

    fn simd_arm() -> Option<SimdLevel> {
        if SimdLevel::Avx2.available() {
            Some(SimdLevel::Avx2)
        } else if SimdLevel::Neon.available() {
            Some(SimdLevel::Neon)
        } else {
            None
        }
    }

    #[test]
    fn level_is_cached_and_consistent() {
        let first = simd_level();
        assert_eq!(first, simd_level());
        assert!(first.available());
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(SimdLevel::Scalar.available());
    }

    /// Exhaustive scalar-vs-SIMD dot equivalence at every ragged length
    /// around each vector-width boundary: `0..=4·lanes+3`.
    #[test]
    fn dot_equivalence_at_all_ragged_lengths() {
        let Some(arm) = simd_arm() else { return };
        for len in 0..=(4 * DOT_I8_SIMD_LANES + 3) {
            let a = pattern_i8(len, 73, 5);
            let b = pattern_i8(len, 131, 17);
            assert_eq!(
                dot_i8_on(SimdLevel::Scalar, &a, &b),
                dot_i8_on(arm, &a, &b),
                "len {len}"
            );
        }
    }

    #[test]
    fn dot_equivalence_at_extremes() {
        let Some(arm) = simd_arm() else { return };
        for len in [1usize, 15, 16, 17, 31, 32, 33, 64, 1000] {
            let a = vec![127i8; len];
            let b = vec![-128i8; len];
            assert_eq!(
                dot_i8_on(SimdLevel::Scalar, &a, &b),
                dot_i8_on(arm, &a, &b),
                "extreme len {len}"
            );
            let c = vec![-128i8; len];
            assert_eq!(
                dot_i8_on(SimdLevel::Scalar, &c, &b),
                dot_i8_on(arm, &c, &b),
                "extreme negative len {len}"
            );
        }
    }

    #[test]
    fn matmul_equivalence_at_ragged_shapes() {
        let Some(arm) = simd_arm() else { return };
        for (m, k, n) in [
            (1usize, 0usize, 1usize),
            (1, 1, 1),
            (3, 7, 5),
            (2, 16, 4),
            (4, 17, 6),
            (5, 33, 7),
            (1, 64, 9),
            (8, 64, 8),
            (3, 100, 13),
        ] {
            let a = pattern_i8(m * k, 37, 11);
            let b = pattern_i8(n * k, 91, 3);
            let mut scalar = Vec::new();
            let mut simd = Vec::new();
            matmul_i8t_on(SimdLevel::Scalar, &a, &b, m, k, n, &mut scalar);
            matmul_i8t_on(arm, &a, &b, m, k, n, &mut simd);
            assert_eq!(scalar, simd, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn sas_exp_row_bit_identical_at_ragged_lengths() {
        let Some(arm) = simd_arm() else { return };
        // Paper-shaped SAS parameters.
        let threshold = -6.0f32;
        let lut: Vec<f32> = (0..=6).map(|i| (-(i as f32)).exp()).collect();
        let coeffs = [0.9996f32, -0.9922, 0.4626, -0.1025];
        for len in 0..=(4 * F32_SIMD_LANES + 3) {
            // Scores straddling the threshold, NaN, ±inf, positive jitter.
            let scores: Vec<f32> = (0..len)
                .map(|j| match j % 9 {
                    0 => 0.0,
                    1 => -1.3,
                    2 => -6.0,
                    3 => f32::from_bits((-6.0f32).to_bits() + 1),
                    4 => -42.0,
                    5 => f32::NEG_INFINITY,
                    6 => f32::NAN,
                    7 => 0.7,
                    _ => -(j as f32) * 0.37,
                })
                .collect();
            for m_new in [0.0f32, 2.5, -1.0] {
                let mut simd = vec![f32::NAN; len];
                assert!(sas_exp_row_on(
                    arm,
                    &scores,
                    m_new,
                    threshold,
                    &lut,
                    coeffs,
                    &mut simd
                ));
                for (j, &sv) in scores.iter().enumerate() {
                    let want = sas_exp_scalar(sv - m_new, threshold, &lut, coeffs);
                    assert_eq!(
                        simd[j].to_bits(),
                        want.to_bits(),
                        "len {len} j {j} score {sv} m_new {m_new}"
                    );
                }
            }
        }
    }

    #[test]
    fn sas_exp_scaled_row_bit_identical_at_ragged_lengths() {
        let Some(arm) = simd_arm() else { return };
        let threshold = -6.0f32;
        let lut: Vec<f32> = (0..=6).map(|i| (-(i as f32)).exp()).collect();
        let coeffs = [0.9996f32, -0.9922, 0.4626, -0.1025];
        let s_scale = 3.1e-4f32;
        for len in 0..=(4 * F32_SIMD_LANES + 3) {
            let codes: Vec<i32> = (0..len)
                .map(|j| ((j as i32 * 7919) % 40001) - 20000)
                .collect();
            for m_new in [0.0f32, 4.2] {
                let mut simd = vec![f32::NAN; len];
                assert!(sas_exp_scaled_row_on(
                    arm,
                    &codes,
                    s_scale,
                    m_new,
                    threshold,
                    &lut,
                    coeffs,
                    &mut simd
                ));
                for (j, &cv) in codes.iter().enumerate() {
                    let want =
                        sas_exp_scalar(cv as f32 * s_scale - m_new, threshold, &lut, coeffs);
                    assert_eq!(
                        simd[j].to_bits(),
                        want.to_bits(),
                        "len {len} j {j} code {cv} m_new {m_new}"
                    );
                }
            }
        }
    }

    #[test]
    fn sas_exp_row_declines_oversized_lut() {
        let Some(arm) = simd_arm() else { return };
        // threshold -9 needs a 10-entry LUT: no register-resident arm.
        let lut: Vec<f32> = (0..=9).map(|i| (-(i as f32)).exp()).collect();
        let mut out = vec![0.0f32; 4];
        assert!(!sas_exp_row_on(
            arm,
            &[0.0, -1.0, -2.0, -8.5],
            0.0,
            -9.0,
            &lut,
            [0.9996, -0.9922, 0.4626, -0.1025],
            &mut out
        ));
    }

    #[test]
    fn quantize_row_bit_identical_at_ragged_lengths() {
        let Some(arm) = simd_arm() else { return };
        for len in 0..=(4 * 32 + 3) {
            let x: Vec<f32> = (0..len)
                .map(|j| match j % 11 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f32::NAN,
                    3 => f32::INFINITY,
                    4 => f32::NEG_INFINITY,
                    5 => 0.5,   // exact midpoint: half-away rounds to 1
                    6 => -0.5,  // exact midpoint: half-away rounds to -1
                    7 => f32::from_bits(0.5f32.to_bits() - 1), // largest f32 < 0.5
                    8 => 1e30,
                    _ => (j as f32 - 40.0) * 0.73,
                })
                .collect();
            for scale in [1.0f32, 0.01724, 2.5e-6] {
                let mut simd = vec![0i8; len];
                assert!(quantize_i8_row_on(arm, &x, scale, &mut simd));
                for (j, &v) in x.iter().enumerate() {
                    assert_eq!(
                        simd[j],
                        quantize_i8_scalar(v, scale),
                        "len {len} j {j} v {v} scale {scale}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_midpoints_round_half_away() {
        // The scalar contract itself: every exact .5 midpoint in code
        // range rounds away from zero (the hardware default would round
        // half to even — 2.5 → 2 — which the vector arm must not do).
        let Some(arm) = simd_arm() else { return };
        let x: Vec<f32> = (0..64).map(|j| (j as f32 - 32.0) + 0.5).collect();
        let mut simd = vec![0i8; x.len()];
        assert!(quantize_i8_row_on(arm, &x, 1.0, &mut simd));
        for (j, &v) in x.iter().enumerate() {
            assert_eq!(simd[j], quantize_i8_scalar(v, 1.0), "midpoint {v}");
            let away = if v > 0.0 { v.ceil() } else { v.floor() };
            assert_eq!(simd[j] as f32, away, "midpoint {v} must round away");
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn requesting_neon_on_x86_panics() {
        let r = std::panic::catch_unwind(|| dot_i8_on(SimdLevel::Neon, &[1], &[2]));
        assert!(r.is_err());
    }
}
