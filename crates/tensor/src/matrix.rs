//! Row-major dense `f32` matrix with block-row tiling support.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the universal activation container in this workspace: query,
/// key and value tensors for a single attention head are `(tokens × d_head)`
/// matrices. FlashAttention-style tiling is expressed through
/// [`Matrix::row_block`] / [`Matrix::row_blocks`], which yield the `B_r`/`B_c`
/// chunks of Algorithm 1.
///
/// # Example
///
/// ```
/// use turbo_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut m = Self::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {r} has inconsistent length");
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    /// Builds a matrix that takes ownership of `data` laid out row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a freshly allocated vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Copies rows `[start, start + len)` into a new matrix.
    ///
    /// The final block of a FlashAttention sweep may be shorter than the
    /// block size; callers should clamp `len` accordingly (see
    /// [`Matrix::row_blocks`] which does this automatically).
    ///
    /// # Panics
    ///
    /// Panics if `start + len > rows`.
    pub fn row_block(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "row block out of bounds");
        Matrix {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Iterator over `(start_row, block)` pairs of height at most
    /// `block_size`, covering every row exactly once — the tiling used by
    /// FlashAttention and BPQ.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn row_blocks(&self, block_size: usize) -> impl Iterator<Item = (usize, Matrix)> + '_ {
        assert!(block_size > 0, "block size must be positive");
        (0..self.rows.div_ceil(block_size)).map(move |i| {
            let start = i * block_size;
            let len = block_size.min(self.rows - start);
            (start, self.row_block(start, len))
        })
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn append_rows(&mut self, other: &Matrix) {
        assert_eq!(self.cols, other.cols, "column mismatch in append_rows");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Stacks matrices vertically.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack requires at least one matrix");
        let mut out = parts[0].clone();
        for p in &parts[1..] {
            out.append_rows(p);
        }
        out
    }

    /// Concatenates matrices horizontally.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn hstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack requires at least one matrix");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "row mismatch in hstack");
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise scale.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Element-wise sum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty matrix");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty matrix");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:.4}")).collect();
            let ell = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ell)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_and_get_set() {
        let mut m = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        assert_eq!(m.get(1, 1), 2.0);
        m.set(0, 1, 9.0);
        assert_eq!(m.get(0, 1), 9.0);
        assert_eq!(m[(0, 1)], 9.0);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let m = Matrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_blocks_cover_all_rows_once() {
        let m = Matrix::from_fn(10, 2, |r, _| r as f32);
        let blocks: Vec<_> = m.row_blocks(4).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].1.rows(), 4);
        assert_eq!(blocks[2].1.rows(), 2); // ragged tail
        let mut covered = vec![];
        for (start, b) in &blocks {
            for r in 0..b.rows() {
                covered.push(start + r);
                assert_eq!(b.get(r, 0), (start + r) as f32);
            }
        }
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn append_and_vstack() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let s = Matrix::vstack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(2, 1), 2.0);
        let mut c = a;
        c.append_rows(&b);
        assert_eq!(c, s);
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = Matrix::filled(2, 1, 1.0);
        let b = Matrix::filled(2, 3, 2.0);
        let h = Matrix::hstack(&[a, b]);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn map_add_sub_scale() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(m.map(f32::abs).row(0), &[1.0, 2.0]);
        assert_eq!(m.add(&m).row(0), &[2.0, -4.0]);
        assert_eq!(m.sub(&m).row(0), &[0.0, 0.0]);
        let mut s = m.clone();
        s.scale_in_place(3.0);
        assert_eq!(s.row(0), &[3.0, -6.0]);
    }

    #[test]
    fn min_max_abs_max() {
        let m = Matrix::from_rows(&[&[1.0, -5.0], &[3.0, 2.0]]);
        assert_eq!(m.min(), -5.0);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.abs_max(), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_len() {
        Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.col(1), vec![1.0, 3.0, 5.0]);
    }
}
