//! Row- and column-wise reductions used by online softmax and quantization.

use crate::matrix::Matrix;

/// Row-wise maximum: `out[i] = max_j m[i][j]`.
///
/// Returns `-∞` for rows of an empty-width matrix, matching the online
/// softmax initialization `m_i^(0) = -∞`.
pub fn row_max(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|r| m.row(r).iter().copied().fold(f32::NEG_INFINITY, f32::max))
        .collect()
}

/// Row-wise sum: `out[i] = Σ_j m[i][j]`.
pub fn row_sum(m: &Matrix) -> Vec<f32> {
    (0..m.rows()).map(|r| m.row(r).iter().sum()).collect()
}

/// Row-wise maximum absolute value — the symmetric-quantization statistic
/// `max(abs(X))` of Algorithm 1.
pub fn row_abs_max(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|r| m.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs())))
        .collect()
}

/// Per-column `(max, min)` pairs — the channel-range statistic behind the
/// paper's head-priority metric (Equation 11) and Figure 4.
///
/// # Panics
///
/// Panics if the matrix has zero rows.
pub fn col_max_min(m: &Matrix) -> Vec<(f32, f32)> {
    assert!(m.rows() > 0, "col_max_min on empty matrix");
    let mut out = vec![(f32::NEG_INFINITY, f32::INFINITY); m.cols()];
    for r in 0..m.rows() {
        for (c, &v) in m.row(r).iter().enumerate() {
            let (mx, mn) = &mut out[c];
            *mx = mx.max(v);
            *mn = mn.min(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, -4.0, 2.0], &[-1.0, 0.5, 3.0]])
    }

    #[test]
    fn row_max_works() {
        assert_eq!(row_max(&sample()), vec![2.0, 3.0]);
    }

    #[test]
    fn row_sum_works() {
        assert_eq!(row_sum(&sample()), vec![-1.0, 2.5]);
    }

    #[test]
    fn row_abs_max_works() {
        assert_eq!(row_abs_max(&sample()), vec![4.0, 3.0]);
    }

    #[test]
    fn col_max_min_works() {
        let ranges = col_max_min(&sample());
        assert_eq!(ranges[0], (1.0, -1.0));
        assert_eq!(ranges[1], (0.5, -4.0));
        assert_eq!(ranges[2], (3.0, 2.0));
    }

    #[test]
    fn row_max_of_zero_width_is_neg_infinity() {
        let m = Matrix::zeros(2, 0);
        assert_eq!(row_max(&m), vec![f32::NEG_INFINITY; 2]);
    }
}
