//! Software emulation of the OCP 8-bit float formats (FP8).
//!
//! Hopper-class GPUs (the FlashAttention-3 target the paper cites) offer
//! FP8 tensor cores in two flavours:
//!
//! * **E4M3** — 1 sign, 4 exponent (bias 7), 3 mantissa bits; max finite
//!   ±448, no infinities (0x7F is NaN). The usual activation format.
//! * **E5M2** — 1 sign, 5 exponent (bias 15), 2 mantissa bits; the wider
//!   range / lower precision variant (a truncated binary16).
//!
//! The reproduction uses these to model an *FP8 KV cache* baseline —
//! the natural competitor to INT4/INT2 progressive quantization on newer
//! hardware — with round-to-nearest-even conversion and saturating
//! overflow, matching NVIDIA's `__nv_fp8` semantics.

use std::fmt;

/// Generic minifloat description used by both FP8 formats.
#[derive(Clone, Copy, Debug, PartialEq)]
struct MiniSpec {
    exp_bits: u32,
    man_bits: u32,
    bias: i32,
    /// Largest finite magnitude.
    max_finite: f32,
    /// Whether the top exponent is reserved for inf/NaN (E5M2) or only
    /// all-ones-mantissa is NaN (E4M3).
    ieee_like: bool,
}

const E4M3: MiniSpec = MiniSpec {
    exp_bits: 4,
    man_bits: 3,
    bias: 7,
    max_finite: 448.0,
    ieee_like: false,
};

const E5M2: MiniSpec = MiniSpec {
    exp_bits: 5,
    man_bits: 2,
    bias: 15,
    max_finite: 57344.0,
    ieee_like: true,
};

/// Quantizes `x` through a minifloat grid with RNE and saturation,
/// returning the nearest representable value as `f32`.
fn round_minifloat(x: f32, spec: MiniSpec) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let sign = if x.is_sign_negative() { -1.0 } else { 1.0 };
    let mag = x.abs();
    if mag == 0.0 {
        return sign * 0.0;
    }
    // Saturate (FP8 hardware converts out-of-range to max finite, not inf,
    // for E4M3; E5M2 keeps ±inf beyond max).
    if mag > spec.max_finite {
        return if spec.ieee_like && mag.is_infinite() {
            sign * f32::INFINITY
        } else {
            sign * spec.max_finite
        };
    }
    // Smallest normal exponent and subnormal quantum.
    let min_normal_exp = 1 - spec.bias; // value 2^(1-bias)
    let quantum_exp = min_normal_exp - spec.man_bits as i32;

    let e = mag.log2().floor() as i32;
    let step_exp = if e < min_normal_exp {
        quantum_exp
    } else {
        e - spec.man_bits as i32
    };
    let step = (step_exp as f32).exp2();
    let q = (mag / step).round_ties_even() * step;
    // Rounding can carry past max finite.
    sign * q.min(spec.max_finite)
}

/// Rounds an `f32` through FP8 E4M3 precision and back.
///
/// # Example
///
/// ```
/// use turbo_tensor::fp8::round_e4m3;
///
/// assert_eq!(round_e4m3(1.0), 1.0);
/// assert_eq!(round_e4m3(1000.0), 448.0); // saturates
/// assert!((round_e4m3(0.3) - 0.3).abs() < 0.02);
/// ```
pub fn round_e4m3(x: f32) -> f32 {
    round_minifloat(x, E4M3)
}

/// Rounds an `f32` through FP8 E5M2 precision and back.
pub fn round_e5m2(x: f32) -> f32 {
    round_minifloat(x, E5M2)
}

/// FP8 flavour selector for APIs that support both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Fp8Format {
    /// 4-bit exponent, 3-bit mantissa (activation format).
    #[default]
    E4M3,
    /// 5-bit exponent, 2-bit mantissa (wide-range format).
    E5M2,
}

impl Fp8Format {
    /// Rounds a value through this format.
    pub fn round(self, x: f32) -> f32 {
        match self {
            Fp8Format::E4M3 => round_e4m3(x),
            Fp8Format::E5M2 => round_e5m2(x),
        }
    }

    /// Largest finite magnitude.
    pub fn max_finite(self) -> f32 {
        match self {
            Fp8Format::E4M3 => E4M3.max_finite,
            Fp8Format::E5M2 => E5M2.max_finite,
        }
    }
}

impl fmt::Display for Fp8Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fp8Format::E4M3 => write!(f, "FP8-E4M3"),
            Fp8Format::E5M2 => write!(f, "FP8-E5M2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_representable_values_round_trip() {
        // All values m * 2^e with 3-bit mantissas are fixed points
        // (the top binade only reaches 1.75 * 256 = 448).
        for e in -6..=7 {
            for m in 0..8 {
                let x = (1.0 + m as f32 / 8.0) * (e as f32).exp2();
                assert_eq!(round_e4m3(x), x, "{x}");
                assert_eq!(round_e4m3(-x), -x);
            }
        }
        for m in 0..=6 {
            let x = (1.0 + m as f32 / 8.0) * 256.0;
            assert_eq!(round_e4m3(x), x, "{x}");
        }
    }

    #[test]
    fn e4m3_saturates_at_448() {
        assert_eq!(round_e4m3(448.0), 448.0);
        assert_eq!(round_e4m3(10_000.0), 448.0);
        assert_eq!(round_e4m3(-10_000.0), -448.0);
        assert_eq!(round_e4m3(f32::INFINITY), 448.0);
    }

    #[test]
    fn e5m2_has_wider_range_but_coarser_grid() {
        assert_eq!(round_e5m2(57344.0), 57344.0);
        assert_eq!(round_e5m2(f32::INFINITY), f32::INFINITY);
        // Near 1.0: E4M3 step is 1/8, E5M2 step is 1/4. Pick a point on
        // the E4M3 grid but off the E5M2 grid.
        let x = 1.13f32;
        assert!((round_e4m3(x) - x).abs() < (round_e5m2(x) - x).abs());
    }

    #[test]
    fn relative_error_bounded_by_half_ulp() {
        // Bound applies to the normal range [2^-6, 448].
        let mut x = 0.02f32;
        while x < 400.0 {
            let r = round_e4m3(x);
            // 3 mantissa bits -> half-ulp relative error ≤ 2^-4.
            assert!((r - x).abs() / x <= 1.0 / 16.0 + 1e-6, "x={x} r={r}");
            x *= 1.37;
        }
    }

    #[test]
    fn subnormals_and_zero() {
        assert_eq!(round_e4m3(0.0), 0.0);
        // E4M3 quantum is 2^-9; below half of it rounds to zero.
        let q = (2.0f32).powi(-9);
        assert_eq!(round_e4m3(q), q);
        assert_eq!(round_e4m3(q * 0.49), 0.0);
        assert_eq!(round_e4m3(q * 0.51), q);
    }

    #[test]
    fn nan_propagates() {
        assert!(round_e4m3(f32::NAN).is_nan());
        assert!(round_e5m2(f32::NAN).is_nan());
    }

    #[test]
    fn rne_ties_to_even() {
        // Between 1.0 and 1.125 the midpoint 1.0625 ties to 1.0 (even).
        assert_eq!(round_e4m3(1.0625), 1.0);
        // Between 1.125 and 1.25 the midpoint ties to 1.25 (even mantissa).
        assert_eq!(round_e4m3(1.1875), 1.25);
    }

    #[test]
    fn format_selector() {
        assert_eq!(Fp8Format::E4M3.round(1000.0), 448.0);
        assert_eq!(Fp8Format::E5M2.max_finite(), 57344.0);
        assert_eq!(Fp8Format::E4M3.to_string(), "FP8-E4M3");
    }

    #[test]
    fn monotonicity() {
        let mut prev = round_e4m3(-500.0);
        let mut x = -500.0f32;
        while x < 500.0 {
            let r = round_e4m3(x);
            assert!(r >= prev, "x={x}");
            prev = r;
            x += 0.37;
        }
    }
}
