//! Error metrics between an approximation and a reference tensor.
//!
//! Used everywhere the reproduction compares an approximate attention
//! output against the exact `f32` result (quantization-error ablations,
//! SAS accuracy, Figure 7b / Figure 10 sweeps).

use crate::matrix::Matrix;

/// Mean squared error between matching-shape matrices.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are empty.
pub fn mse(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse shape mismatch");
    assert!(!a.is_empty(), "mse of empty matrices");
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Maximum absolute element-wise error.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn max_abs_error(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "max_abs_error shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()))
}

/// Mean absolute element-wise error.
///
/// # Panics
///
/// Panics if shapes differ or the matrices are empty.
pub fn mean_abs_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mean_abs_error shape mismatch");
    assert!(!a.is_empty(), "mean_abs_error of empty matrices");
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| ((x - y) as f64).abs())
        .sum();
    sum / a.len() as f64
}

/// Relative Frobenius-norm error `‖a − b‖ / ‖b‖` with `b` as reference.
///
/// Returns 0 when both are zero, and ∞ when only the reference is zero.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "relative_error shape mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        let d = (x - y) as f64;
        num += d * d;
        den += (y as f64) * (y as f64);
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (num / den).sqrt()
    }
}

/// Cosine similarity of the two matrices flattened to vectors.
///
/// Returns 1.0 for two zero matrices (identical) and 0.0 when exactly one
/// is zero.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn cosine_similarity(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "cosine_similarity shape mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 && nb == 0.0 {
        1.0
    } else if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_have_zero_error() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(mse(&m, &m), 0.0);
        assert_eq!(max_abs_error(&m, &m), 0.0);
        assert_eq!(mean_abs_error(&m, &m), 0.0);
        assert_eq!(relative_error(&m, &m), 0.0);
        assert!((cosine_similarity(&m, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.0, 4.0]]);
        assert_eq!(mse(&a, &b), (1.0 + 4.0) / 2.0);
        assert_eq!(max_abs_error(&a, &b), 2.0);
        assert_eq!(mean_abs_error(&a, &b), 1.5);
    }

    #[test]
    fn relative_error_normalizes_by_reference() {
        let a = Matrix::from_rows(&[&[2.0]]);
        let b = Matrix::from_rows(&[&[1.0]]);
        assert_eq!(relative_error(&a, &b), 1.0);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[-1.0, -1.0]]);
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_edge_cases() {
        let z = Matrix::zeros(2, 2);
        let m = Matrix::filled(2, 2, 1.0);
        assert_eq!(relative_error(&z, &z), 0.0);
        assert_eq!(relative_error(&m, &z), f64::INFINITY);
        assert_eq!(cosine_similarity(&z, &z), 1.0);
        assert_eq!(cosine_similarity(&m, &z), 0.0);
    }
}
