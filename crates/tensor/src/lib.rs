//! # turbo-tensor
//!
//! Dense-tensor substrate for the TurboAttention reproduction.
//!
//! This crate provides the numeric foundation that the rest of the
//! workspace builds on:
//!
//! * [`Matrix`] — a row-major, heap-allocated `f32` matrix with tiled
//!   (block-row) views matching FlashAttention's `B_r`/`B_c` chunking.
//! * [`f16`](crate::half::F16) — software emulation of IEEE-754 binary16
//!   with round-to-nearest-even, used to model tensor-core input precision
//!   on hardware we do not have.
//! * Integer matmul kernels (`i8 × i8 → i32`) mirroring INT8 tensor-core
//!   semantics, plus an `f32` reference matmul with optional f16 input
//!   rounding. The integer kernels dispatch once per process to an
//!   explicit-SIMD arm ([`simd`]) — AVX2 on x86-64, NEON on aarch64 —
//!   with the scalar kernels kept as the always-correct, bit-identical
//!   fallback (`TURBO_SIMD=0` forces it).
//! * Row-wise reductions (max/sum) used by online softmax.
//! * Deterministic random tensor generators for workloads, including the
//!   channel-outlier distributions observed in the paper's Figure 4.
//! * Error metrics (MSE, max-abs, cosine similarity) used throughout the
//!   evaluation harness.
//!
//! # Example
//!
//! ```
//! use turbo_tensor::{Matrix, matmul};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = matmul(&a, &b);
//! assert_eq!(c.get(1, 0), 3.0);
//! ```

// `deny` (not `forbid`) so the one SIMD module can opt back in: all
// `unsafe` in this crate lives behind `simd`'s runtime-checked dispatch.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fp8;
pub mod half;
pub mod matmul;
pub mod matrix;
pub mod reduce;
pub mod rng;
#[allow(unsafe_code)]
pub mod simd;

pub use error::{cosine_similarity, max_abs_error, mean_abs_error, mse, relative_error};
pub use fp8::{round_e4m3, round_e5m2, Fp8Format};
pub use half::{round_bf16, round_f16, round_f16_slice, Bf16, F16};
pub use matmul::{
    dot_i8, dot_i8_wide, matmul, matmul_f16, matmul_i8, matmul_i8_transposed_b,
    matmul_i8_transposed_b_into, matmul_transposed_b, DOT_I8_MAX_LEN,
};
pub use simd::{simd_level, SimdLevel};
pub use matrix::Matrix;
pub use reduce::{col_max_min, row_abs_max, row_max, row_sum};
pub use rng::TensorRng;
