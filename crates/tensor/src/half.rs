//! Software emulation of IEEE-754 binary16 ("FP16").
//!
//! The paper's kernels run matrix multiplications on FP16 tensor cores with
//! FP32 accumulation. We have no GPU in this environment, so FP16 effects on
//! numerics are modelled by explicitly rounding values through this type:
//! convert `f32 → F16 → f32` before a multiply to emulate tensor-core input
//! precision.
//!
//! The conversion implements round-to-nearest-even, gradual underflow to
//! subnormals, and saturating overflow to ±∞, matching hardware behaviour.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE-754 binary16 value stored as its raw bit pattern.
///
/// # Example
///
/// ```
/// use turbo_tensor::F16;
///
/// let x = F16::from_f32(1.0009765); // rounds to nearest representable
/// assert_eq!(x.to_f32(), 1.0009766);
/// assert!(F16::from_f32(1e6).is_infinite()); // overflow saturates to ∞
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);

    /// Builds an `F16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` with round-to-nearest-even.
    ///
    /// Values above the finite range become ±∞; tiny values flush through
    /// the subnormal range down to ±0.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // NaN or infinity.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent; f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow: saturate to infinity (hardware F32->F16 default).
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. 23-bit mantissa -> 10-bit with RNE.
            let exp16 = (unbiased + 15) as u16;
            let mant16 = mant >> 13;
            let round_bits = mant & 0x1FFF;
            let mut out = (exp16 << 10) | mant16 as u16;
            // Round to nearest, ties to even.
            if round_bits > 0x1000 || (round_bits == 0x1000 && (mant16 & 1) == 1) {
                out += 1; // may carry into exponent; that is correct (e.g. 2047.9999 -> 2048)
            }
            return F16(sign | out);
        }
        if unbiased >= -25 {
            // Subnormal range: shift mantissa (with implicit leading 1).
            let mant_full = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let mant16 = (mant_full >> shift) as u16;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = mant_full & round_mask;
            let half = 1u32 << (shift - 1);
            let mut out = mant16;
            if round_bits > half || (round_bits == half && (mant16 & 1) == 1) {
                out += 1;
            }
            return F16(sign | out);
        }
        // Underflow to zero.
        F16(sign)
    }

    /// Converts back to `f32` (exact — every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // ±0
            } else {
                // Subnormal: normalize. Value is mant * 2^-24; find leading 1.
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // inf / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is finite (not NaN, not ±∞).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// An IEEE-754-style bfloat16 value stored as its raw bit pattern.
///
/// BF16 is the other tensor-core input format on Ampere+: the top 16 bits
/// of an `f32` (8-bit exponent, 7-bit mantissa). It trades precision for
/// `f32`-sized dynamic range, so unlike [`F16`] it never overflows on
/// attention-scale values — which is why some serving stacks prefer it
/// for the softmax path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Builds a `Bf16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` with round-to-nearest-even on the truncated
    /// 16 mantissa bits. NaNs are preserved (payload forced non-zero).
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the low 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb) & 0xFFFF_0000;
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts back to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` through binary16 precision and back.
///
/// Shorthand for `F16::from_f32(x).to_f32()`, used to emulate FP16
/// tensor-core inputs throughout the workspace.
#[inline]
pub fn round_f16(x: f32) -> f32 {
    F16::from_f32(x).to_f32()
}

/// Rounds an `f32` through bfloat16 precision and back.
#[inline]
pub fn round_bf16(x: f32) -> f32 {
    Bf16::from_f32(x).to_f32()
}

/// Rounds every element of a slice through binary16 precision in place.
pub fn round_f16_slice(xs: &mut [f32]) {
    for x in xs {
        *x = round_f16(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048i32..=2048 {
            let x = i as f32;
            assert_eq!(round_f16(x), x, "{i} should be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let x = (2.0f32).powi(e);
            assert_eq!(round_f16(x), x);
            assert_eq!(round_f16(-x), -x);
        }
    }

    #[test]
    fn max_finite_value() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(round_f16(65504.0), 65504.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(70000.0).is_infinite());
        assert!(F16::from_f32(-70000.0).is_infinite());
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(round_f16(tiny), tiny);
        // Below half the smallest subnormal underflows to zero.
        assert_eq!(round_f16((2.0f32).powi(-26)), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: ties to even -> 1.0.
        let x = 1.0 + (2.0f32).powi(-11);
        assert_eq!(round_f16(x), 1.0);
        // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
        let y = 1.0 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(round_f16(y), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // 2047.9999 rounds up to 2048 (mantissa carry increments exponent).
        assert_eq!(round_f16(2047.9999), 2048.0);
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
    }

    #[test]
    fn slice_rounding() {
        let mut v = vec![1.0001, -2.00007, 0.333333];
        round_f16_slice(&mut v);
        for &x in &v {
            assert_eq!(x, round_f16(x));
        }
    }

    #[test]
    fn bf16_preserves_f32_range() {
        // 1e20 overflows f16 but is representable in bf16.
        assert!(F16::from_f32(1e20).is_infinite());
        let b = Bf16::from_f32(1e20);
        assert!(!b.is_nan());
        assert!((b.to_f32() - 1e20).abs() / 1e20 < 0.01);
    }

    #[test]
    fn bf16_round_trip_exact_values() {
        for x in [0.0f32, 1.0, -2.0, 0.5, 256.0, -1024.0] {
            assert_eq!(round_bf16(x), x);
        }
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1 + 2^-8 is exactly between 1.0 and 1 + 2^-7: ties to even -> 1.0.
        let x = 1.0 + (2.0f32).powi(-8);
        assert_eq!(round_bf16(x), 1.0);
        // 1 + 3·2^-8 ties to even -> 1 + 2^-6.
        let y = 1.0 + 3.0 * (2.0f32).powi(-8);
        assert_eq!(round_bf16(y), 1.0 + (2.0f32).powi(-6));
    }

    #[test]
    fn bf16_is_coarser_than_f16_for_small_values() {
        // Near 1.0 f16 has 10 mantissa bits vs bf16's 7.
        let x = 1.003f32;
        let e16 = (round_f16(x) - x).abs();
        let eb16 = (round_bf16(x) - x).abs();
        assert!(eb16 > e16);
    }

    #[test]
    fn bf16_nan_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn monotonic_on_grid() {
        // f16 rounding must preserve ordering of already-representable values.
        let mut prev = f32::NEG_INFINITY;
        for bits in (0x0000u16..0x7C00).step_by(7) {
            let x = F16::from_bits(bits).to_f32();
            assert!(x >= prev);
            prev = x;
        }
    }
}
