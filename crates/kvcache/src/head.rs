//! Per-head quantized KV cache.

use std::sync::Arc;

use crate::buffer::Int8Buffer;
use crate::dequant_cache::{DequantCacheStats, DequantTile, TileCacheCell, DEFAULT_TILE_CACHE_BUDGET};
use crate::error::CacheError;
use crate::stats::MemoryStats;
use turbo_quant::{BitWidth, ProgressiveBlock, SymQuantized};
use turbo_robust::HealthStats;
use turbo_tensor::Matrix;

/// Configuration of one head's KV cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvCacheConfig {
    /// Resident-cache precision (INT4 or INT2, per head-wise mixed
    /// precision; INT8 is rejected).
    pub bits: BitWidth,
    /// Token-group size of the channel-wise second quantization stage.
    pub group_size: usize,
    /// Decode-buffer capacity `n_b` (the paper uses 64).
    pub buffer_capacity: usize,
}

impl Default for KvCacheConfig {
    /// The paper's defaults: INT4, group 64, `n_b = 64`.
    fn default() -> Self {
        Self {
            bits: BitWidth::Int4,
            group_size: 64,
            buffer_capacity: 64,
        }
    }
}

/// The quantized K/V cache of a single attention head.
///
/// Holds a sequence of flushed [`ProgressiveBlock`]s plus the open INT8
/// decode buffers for keys and values. Tokens are globally ordered: all
/// resident blocks (in insertion order) precede the buffered tokens.
#[derive(Clone, Debug)]
pub struct HeadKvCache {
    d: usize,
    config: KvCacheConfig,
    k_blocks: Vec<ProgressiveBlock>,
    v_blocks: Vec<ProgressiveBlock>,
    k_buf: Int8Buffer,
    v_buf: Int8Buffer,
    resident_tokens: usize,
    /// Monotonic counter bumped whenever the resident-block list changes
    /// (flush, prefill append, eviction). Part of the tile-cache key, so
    /// a stale [`DequantTile`] can never be served.
    generation: u64,
    tile_cache: TileCacheCell,
}

/// Ceiling on the rows pre-reserved in the open buffers at construction.
/// Real decode configs sit far below this; callers that use an enormous
/// `buffer_capacity` as a "never flush" sentinel (e.g. an INT8-resident
/// fallback rung) still get a bounded reservation and grow on demand.
const MAX_EAGER_RESERVE_ROWS: usize = 4096;

fn eager_reserve_rows(config: &KvCacheConfig) -> usize {
    config.buffer_capacity.min(MAX_EAGER_RESERVE_ROWS)
}

impl HeadKvCache {
    /// Creates an empty cache for a head of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `buffer_capacity == 0`, `group_size == 0`, or
    /// `bits` is INT8.
    pub fn new(d: usize, config: KvCacheConfig) -> Self {
        assert!(d > 0, "head dimension must be positive");
        assert!(
            config.buffer_capacity > 0,
            "buffer capacity must be positive"
        );
        assert!(config.group_size > 0, "group size must be positive");
        assert!(
            config.bits != BitWidth::Int8,
            "resident cache must be INT4 or INT2"
        );
        let mut k_buf = Int8Buffer::new(d);
        let mut v_buf = Int8Buffer::new(d);
        // A flush fires the moment the buffer reaches capacity, so the
        // buffers never hold more rows than that — reserving once here
        // makes every steady-state decode append allocation-free. Capped
        // so sentinel "never flush" capacities don't demand the universe.
        k_buf.reserve_rows(eager_reserve_rows(&config));
        v_buf.reserve_rows(eager_reserve_rows(&config));
        Self {
            d,
            config,
            k_blocks: Vec::new(),
            v_blocks: Vec::new(),
            k_buf,
            v_buf,
            resident_tokens: 0,
            generation: 0,
            tile_cache: TileCacheCell::new(DEFAULT_TILE_CACHE_BUDGET),
        }
    }

    /// Reassembles a cache from raw parts (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent shapes or token counts.
    pub(crate) fn from_parts(
        d: usize,
        config: KvCacheConfig,
        k_blocks: Vec<ProgressiveBlock>,
        v_blocks: Vec<ProgressiveBlock>,
        mut k_buf: Int8Buffer,
        mut v_buf: Int8Buffer,
    ) -> Self {
        assert_eq!(k_blocks.len(), v_blocks.len(), "K/V block count mismatch");
        let mut resident_tokens = 0usize;
        for (kb, vb) in k_blocks.iter().zip(&v_blocks) {
            assert_eq!(kb.cols(), d, "K block channel mismatch");
            assert_eq!(vb.cols(), d, "V block channel mismatch");
            assert_eq!(kb.rows(), vb.rows(), "K/V block row mismatch");
            resident_tokens += kb.rows();
        }
        assert_eq!(k_buf.len(), v_buf.len(), "K/V buffer length mismatch");
        assert_eq!(k_buf.channels(), d, "buffer channel mismatch");
        k_buf.reserve_rows(eager_reserve_rows(&config));
        v_buf.reserve_rows(eager_reserve_rows(&config));
        // Recovery (WAL replay, deserialization) starts with a cold tile
        // cache: the rebuilt blocks get a fresh generation-0 identity, so
        // nothing from a previous life of the cache can be served.
        Self {
            d,
            config,
            k_blocks,
            v_blocks,
            k_buf,
            v_buf,
            resident_tokens,
            generation: 0,
            tile_cache: TileCacheCell::new(DEFAULT_TILE_CACHE_BUDGET),
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// The cache configuration.
    pub fn config(&self) -> KvCacheConfig {
        self.config
    }

    /// Total cached tokens (resident + buffered).
    pub fn len(&self) -> usize {
        self.resident_tokens + self.k_buf.len()
    }

    /// Whether the cache holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tokens currently in the open decode buffer.
    pub fn buffer_len(&self) -> usize {
        self.k_buf.len()
    }

    /// Flushed key blocks, oldest first.
    pub fn resident_blocks(&self) -> &[ProgressiveBlock] {
        &self.k_blocks
    }

    /// Flushed value blocks, oldest first.
    pub fn resident_value_blocks(&self) -> &[ProgressiveBlock] {
        &self.v_blocks
    }

    /// The open key buffer.
    pub fn key_buffer(&self) -> &Int8Buffer {
        &self.k_buf
    }

    /// The open value buffer.
    pub fn value_buffer(&self) -> &Int8Buffer {
        &self.v_buf
    }

    /// Appends one decoded token's key/value vectors, flushing the buffer
    /// into a progressive block when it reaches capacity.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are not `head_dim` long or contain non-finite
    /// values. [`HeadKvCache::try_append`] is the non-panicking equivalent.
    pub fn append(&mut self, k: &[f32], v: &[f32]) {
        if let Err(e) = self.try_append(k, v) {
            panic!("{e}");
        }
    }

    /// Non-panicking [`HeadKvCache::append`].
    ///
    /// # Errors
    ///
    /// Validation errors ([`CacheError::WidthMismatch`],
    /// [`CacheError::NonFinite`]) are returned *before* any mutation — the
    /// token is not cached. [`CacheError::ScaleOverflow`] means the token
    /// **was** buffered but the capacity-triggered flush could not compress
    /// the buffer; the tokens stay in the INT8 buffer, so a caller can
    /// promote the cache to a higher precision without losing them.
    pub fn try_append(&mut self, k: &[f32], v: &[f32]) -> Result<(), CacheError> {
        // Validate V up front so a bad V row cannot leave K one row ahead.
        if v.len() != self.d {
            return Err(CacheError::WidthMismatch {
                expected: self.d,
                got: v.len(),
            });
        }
        if let Some(channel) = v.iter().position(|x| !x.is_finite()) {
            return Err(CacheError::NonFinite { channel });
        }
        self.k_buf.try_append(k)?;
        self.v_buf
            .try_append(v)
            .expect("V row validated before K was appended");
        if self.k_buf.len() >= self.config.buffer_capacity {
            self.try_flush()?;
        }
        Ok(())
    }

    /// Prefill path: quantizes whole `B_c`-sized K/V tiles directly into
    /// resident blocks (Algorithm 1 writes `K^{q2}`/`V^{q2}` per block).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or the buffer is non-empty (prefill must
    /// precede decode).
    pub fn append_prefill_block(&mut self, k: &Matrix, v: &Matrix) {
        assert_eq!(k.shape(), v.shape(), "K/V shape mismatch");
        assert_eq!(k.cols(), self.d, "channel mismatch");
        assert!(
            self.k_buf.is_empty(),
            "prefill blocks must be appended before decoding starts"
        );
        if k.rows() == 0 {
            return;
        }
        self.k_blocks.push(ProgressiveBlock::quantize(
            k,
            self.config.bits,
            self.config.group_size,
        ));
        self.v_blocks.push(ProgressiveBlock::quantize(
            v,
            self.config.bits,
            self.config.group_size,
        ));
        self.resident_tokens += k.rows();
        self.bump_generation();
    }

    /// Forces the open buffer to compress into resident blocks even if it
    /// is not full. No-op on an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's universal scale cannot be represented at the
    /// resident precision. [`HeadKvCache::try_flush`] is the non-panicking
    /// equivalent.
    pub fn flush(&mut self) {
        if let Err(e) = self.try_flush() {
            panic!("{e}");
        }
    }

    /// Non-panicking [`HeadKvCache::flush`]. On error the buffer is left
    /// intact (nothing is compressed, nothing is lost).
    ///
    /// # Errors
    ///
    /// [`CacheError::ScaleOverflow`] if the second quantization stage
    /// cannot represent the buffer's scale.
    pub fn try_flush(&mut self) -> Result<(), CacheError> {
        if self.k_buf.is_empty() {
            return Ok(());
        }
        let k8: SymQuantized = self.k_buf.as_sym_quantized();
        let v8: SymQuantized = self.v_buf.as_sym_quantized();
        let kb =
            ProgressiveBlock::try_quantize_from_int8(&k8, self.config.bits, self.config.group_size)?;
        let vb =
            ProgressiveBlock::try_quantize_from_int8(&v8, self.config.bits, self.config.group_size)?;
        self.k_blocks.push(kb);
        self.v_blocks.push(vb);
        self.resident_tokens += self.k_buf.len();
        self.k_buf.clear();
        self.v_buf.clear();
        self.bump_generation();
        Ok(())
    }

    /// StreamingLLM-style eviction: keeps the first `sink_blocks` resident
    /// blocks (the attention sinks) and as many of the most recent blocks
    /// as fit within `max_tokens` (counting buffered tokens), dropping the
    /// middle. Returns the number of evicted tokens.
    ///
    /// Eviction changes attention results (dropped tokens can no longer be
    /// attended) — it is the standard long-context memory-bound trade-off,
    /// composable with quantization because blocks are self-contained.
    ///
    /// # Panics
    ///
    /// Panics if `max_tokens` cannot even hold the sinks plus the open
    /// buffer.
    pub fn evict_middle(&mut self, max_tokens: usize, sink_blocks: usize) -> usize {
        if self.len() <= max_tokens {
            return 0;
        }
        let sink_blocks = sink_blocks.min(self.k_blocks.len());
        let sink_tokens: usize = self.k_blocks[..sink_blocks]
            .iter()
            .map(ProgressiveBlock::rows)
            .sum();
        let fixed = sink_tokens + self.k_buf.len();
        assert!(
            fixed <= max_tokens,
            "budget {max_tokens} cannot hold {sink_tokens} sink tokens + {} buffered",
            self.k_buf.len()
        );
        // Keep the most recent blocks that fit in the remaining budget.
        let mut budget = max_tokens - fixed;
        let mut keep_from = self.k_blocks.len();
        while keep_from > sink_blocks {
            let rows = self.k_blocks[keep_from - 1].rows();
            if rows > budget {
                break;
            }
            budget -= rows;
            keep_from -= 1;
        }
        let evicted: usize = self.k_blocks[sink_blocks..keep_from]
            .iter()
            .map(ProgressiveBlock::rows)
            .sum();
        self.k_blocks.drain(sink_blocks..keep_from);
        self.v_blocks.drain(sink_blocks..keep_from);
        self.resident_tokens -= evicted;
        if evicted > 0 {
            // Block indices shift after the drain, so every cached tile
            // keyed by the old indices must die with the old generation.
            self.bump_generation();
        }
        evicted
    }

    /// Invalidates the tile cache after any resident-block mutation.
    fn bump_generation(&mut self) {
        self.generation += 1;
        let generation = self.generation;
        self.tile_cache.with(|c| c.purge_generations_below(generation));
    }

    /// The current resident-block generation (bumped on every flush,
    /// prefill append, or eviction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The memoized INT8 expansion of resident block `b`, building and
    /// caching it on a miss.
    ///
    /// Output is bit-identical to calling `dequantize_to_int8()` on the
    /// K/V blocks directly (plus the V transpose): the tile is a pure
    /// function of the block contents and the generation key guarantees
    /// a cached tile was built from exactly the current blocks.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn resident_tile(&self, b: usize) -> Arc<DequantTile> {
        let generation = self.generation;
        if let Some(tile) = self.tile_cache.with(|c| c.get(b, generation)) {
            return tile;
        }
        // Build outside the lock: expansion is the expensive part and a
        // racing builder producing the same (bit-identical) tile is
        // harmless — last insert wins.
        let tile = Arc::new(DequantTile::from_blocks(
            &self.k_blocks[b],
            &self.v_blocks[b],
        ));
        let clone = Arc::clone(&tile);
        self.tile_cache.with(move |c| c.insert(b, generation, clone));
        tile
    }

    /// Sets the tile-cache byte budget (0 disables caching).
    pub fn set_tile_cache_budget(&self, bytes: usize) {
        self.tile_cache.with(|c| c.set_budget(bytes));
    }

    /// Wires a shared health registry into the tile cache so hit/miss/
    /// evict events are observable live.
    pub fn set_tile_cache_health(&self, health: Option<Arc<HealthStats>>) {
        self.tile_cache.with(move |c| c.set_health(health));
    }

    /// Tile-cache counter snapshot.
    pub fn tile_cache_stats(&self) -> DequantCacheStats {
        self.tile_cache.with(|c| c.stats())
    }

    /// Reconstructs the full `(K, V)` tensors in f32 — test/debug path.
    pub fn dequantize_all(&self) -> (Matrix, Matrix) {
        let mut ks: Vec<Matrix> = self.k_blocks.iter().map(|b| b.dequantize()).collect();
        let mut vs: Vec<Matrix> = self.v_blocks.iter().map(|b| b.dequantize()).collect();
        if !self.k_buf.is_empty() {
            ks.push(self.k_buf.dequantize());
            vs.push(self.v_buf.dequantize());
        }
        if ks.is_empty() {
            return (Matrix::zeros(0, self.d), Matrix::zeros(0, self.d));
        }
        (Matrix::vstack(&ks), Matrix::vstack(&vs))
    }

    /// Memory accounting for this head.
    pub fn memory_stats(&self) -> MemoryStats {
        let resident: usize = self
            .k_blocks
            .iter()
            .chain(&self.v_blocks)
            .map(|b| b.storage_bytes())
            .sum();
        MemoryStats {
            resident_bytes: resident,
            buffer_bytes: self.k_buf.storage_bytes() + self.v_buf.storage_bytes(),
            fp16_bytes: 2 * 2 * self.len() * self.d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn cfg(bits: BitWidth, nb: usize) -> KvCacheConfig {
        KvCacheConfig {
            bits,
            group_size: 32,
            buffer_capacity: nb,
        }
    }

    #[test]
    fn decode_appends_flush_at_capacity() {
        let mut c = HeadKvCache::new(4, cfg(BitWidth::Int4, 8));
        for t in 0..20 {
            let row = [t as f32 * 0.1; 4];
            c.append(&row, &row);
        }
        assert_eq!(c.len(), 20);
        assert_eq!(c.resident_blocks().len(), 2); // two flushes of 8
        assert_eq!(c.buffer_len(), 4);
    }

    #[test]
    fn prefill_then_decode_order_is_preserved() {
        let mut rng = TensorRng::new(31);
        let mut c = HeadKvCache::new(8, cfg(BitWidth::Int4, 16));
        let k0 = rng.normal(32, 8, 0.0, 1.0);
        let v0 = rng.normal(32, 8, 0.0, 1.0);
        c.append_prefill_block(&k0, &v0);
        let k1 = rng.normal(1, 8, 0.0, 1.0);
        c.append(k1.row(0), k1.row(0));
        let (k, _v) = c.dequantize_all();
        assert_eq!(k.rows(), 33);
        // Prefill tokens come first.
        assert!((k.get(0, 0) - k0.get(0, 0)).abs() < 0.2);
        assert!((k.get(32, 0) - k1.get(0, 0)).abs() < 0.2);
    }

    #[test]
    fn flush_mid_buffer_compacts_everything() {
        let mut c = HeadKvCache::new(2, cfg(BitWidth::Int4, 64));
        c.append(&[1.0, 2.0], &[3.0, 4.0]);
        c.append(&[1.1, 2.1], &[3.1, 4.1]);
        assert_eq!(c.buffer_len(), 2);
        c.flush();
        assert_eq!(c.buffer_len(), 0);
        assert_eq!(c.resident_blocks().len(), 1);
        assert_eq!(c.len(), 2);
        c.flush(); // idempotent on empty buffer
        assert_eq!(c.resident_blocks().len(), 1);
    }

    #[test]
    fn round_trip_accuracy_int4() {
        let mut rng = TensorRng::new(32);
        let mut c = HeadKvCache::new(16, cfg(BitWidth::Int4, 32));
        let k = rng.normal(96, 16, 0.0, 1.0);
        let v = rng.normal(96, 16, 0.0, 1.0);
        for t in 0..96 {
            c.append(k.row(t), v.row(t));
        }
        let (kq, vq) = c.dequantize_all();
        assert!(turbo_tensor::relative_error(&kq, &k) < 0.15);
        assert!(turbo_tensor::relative_error(&vq, &v) < 0.15);
    }

    #[test]
    fn int2_compresses_harder_with_more_error() {
        let mut rng = TensorRng::new(33);
        let k = rng.normal(64, 16, 0.0, 1.0);
        let build = |bits| {
            let mut c = HeadKvCache::new(16, cfg(bits, 64));
            for t in 0..64 {
                c.append(k.row(t), k.row(t));
            }
            c.flush();
            c
        };
        let c4 = build(BitWidth::Int4);
        let c2 = build(BitWidth::Int2);
        let s4 = c4.memory_stats();
        let s2 = c2.memory_stats();
        assert!(s2.total_bytes() < s4.total_bytes());
        let e4 = turbo_tensor::mse(&c4.dequantize_all().0, &k);
        let e2 = turbo_tensor::mse(&c2.dequantize_all().0, &k);
        assert!(e4 < e2);
    }

    #[test]
    fn compression_ratio_exceeds_4x_for_int4() {
        let mut rng = TensorRng::new(34);
        let mut c = HeadKvCache::new(64, cfg(BitWidth::Int4, 64));
        let k = rng.normal(512, 64, 0.0, 1.0);
        for t in 0..512 {
            c.append(k.row(t), k.row(t));
        }
        c.flush();
        let stats = c.memory_stats();
        assert!(
            stats.compression_ratio() > 3.4,
            "ratio {}",
            stats.compression_ratio()
        );
    }

    #[test]
    fn empty_cache_behaviour() {
        let c = HeadKvCache::new(4, KvCacheConfig::default());
        assert!(c.is_empty());
        let (k, v) = c.dequantize_all();
        assert_eq!(k.shape(), (0, 4));
        assert_eq!(v.shape(), (0, 4));
        assert_eq!(c.memory_stats().resident_bytes, 0);
    }

    #[test]
    fn evict_middle_keeps_sinks_and_recency() {
        let mut rng = TensorRng::new(77);
        let data = rng.normal(80, 4, 0.0, 1.0);
        let mut c = HeadKvCache::new(4, cfg(BitWidth::Int4, 8));
        for t in 0..80 {
            c.append(data.row(t), data.row(t));
        }
        // 10 resident blocks of 8. Keep 1 sink block + recency in 40 tokens.
        let evicted = c.evict_middle(40, 1);
        assert_eq!(c.len(), 80 - evicted);
        assert!(c.len() <= 40);
        let (k, _) = c.dequantize_all();
        // Sinks: first 8 tokens still match the original prefix.
        for t in 0..8 {
            assert!((k.get(t, 0) - data.get(t, 0)).abs() < 0.2, "sink token {t}");
        }
        // Recency: last 8 tokens still match the original suffix.
        for t in 0..8 {
            let orig = data.get(72 + t, 0);
            let kept = k.get(k.rows() - 8 + t, 0);
            assert!((kept - orig).abs() < 0.2, "recent token {t}");
        }
        // No-op when already under budget.
        assert_eq!(c.evict_middle(1000, 1), 0);
    }

    #[test]
    fn evicted_cache_continues_serving() {
        let mut rng = TensorRng::new(78);
        let data = rng.normal(64, 4, 0.0, 1.0);
        let mut c = HeadKvCache::new(4, cfg(BitWidth::Int4, 8));
        for t in 0..64 {
            c.append(data.row(t), data.row(t));
        }
        c.evict_middle(24, 1);
        // Appending and flushing still works after eviction.
        for t in 0..16 {
            c.append(data.row(t), data.row(t));
        }
        let (k, v) = c.dequantize_all();
        assert_eq!(k.rows(), c.len());
        assert_eq!(v.rows(), c.len());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn impossible_eviction_budget_panics() {
        let mut c = HeadKvCache::new(4, cfg(BitWidth::Int4, 8));
        for t in 0..32 {
            let row = [t as f32; 4];
            c.append(&row, &row);
        }
        c.evict_middle(4, 2); // 2 sink blocks = 16 tokens > 4 budget
    }

    #[test]
    #[should_panic(expected = "INT4 or INT2")]
    fn int8_resident_rejected() {
        HeadKvCache::new(4, cfg(BitWidth::Int8, 8));
    }

    #[test]
    fn try_append_validates_both_rows_before_mutating() {
        let mut c = HeadKvCache::new(2, cfg(BitWidth::Int4, 8));
        // Bad V must not leave K one row ahead.
        assert_eq!(
            c.try_append(&[1.0, 2.0], &[f32::NAN, 0.0]),
            Err(CacheError::NonFinite { channel: 0 })
        );
        assert_eq!(
            c.try_append(&[1.0, 2.0], &[1.0]),
            Err(CacheError::WidthMismatch { expected: 2, got: 1 })
        );
        assert_eq!(
            c.try_append(&[f32::INFINITY, 0.0], &[1.0, 2.0]),
            Err(CacheError::NonFinite { channel: 0 })
        );
        assert!(c.is_empty());
        assert_eq!(c.try_append(&[1.0, 2.0], &[3.0, 4.0]), Ok(()));
        assert_eq!(c.len(), 1);
        assert_eq!(c.key_buffer().len(), c.value_buffer().len());
    }

    #[test]
    fn try_flush_on_empty_buffer_is_ok() {
        let mut c = HeadKvCache::new(2, cfg(BitWidth::Int4, 8));
        assert_eq!(c.try_flush(), Ok(()));
        c.try_append(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        assert_eq!(c.try_flush(), Ok(()));
        assert_eq!(c.resident_blocks().len(), 1);
        assert_eq!(c.buffer_len(), 0);
    }

    #[test]
    fn resident_tile_matches_fresh_dequant_and_hits_on_reuse() {
        let mut rng = TensorRng::new(41);
        let mut c = HeadKvCache::new(8, cfg(BitWidth::Int4, 8));
        let data = rng.normal(16, 8, 0.0, 1.0);
        for t in 0..16 {
            c.append(data.row(t), data.row(t));
        }
        assert_eq!(c.resident_blocks().len(), 2);
        let tile = c.resident_tile(1);
        let k8 = c.resident_blocks()[1].dequantize_to_int8();
        assert_eq!(tile.k_codes(), k8.codes());
        assert_eq!(tile.k_scale(), k8.scale());
        let again = c.resident_tile(1);
        assert!(std::sync::Arc::ptr_eq(&tile, &again), "second lookup must hit");
        let s = c.tile_cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn mutations_bump_generation_and_invalidate_tiles() {
        let mut rng = TensorRng::new(42);
        let data = rng.normal(64, 4, 0.0, 1.0);
        let mut c = HeadKvCache::new(4, cfg(BitWidth::Int4, 8));
        let g0 = c.generation();
        for t in 0..8 {
            c.append(data.row(t), data.row(t));
        }
        assert!(c.generation() > g0, "flush must bump");
        c.resident_tile(0);
        assert_eq!(c.tile_cache_stats().entries, 1);
        for t in 8..64 {
            c.append(data.row(t), data.row(t));
        }
        // Each flush purged the prior generation's tiles.
        assert_eq!(c.tile_cache_stats().entries, 0);
        let g1 = c.generation();
        c.resident_tile(0);
        c.evict_middle(24, 1);
        assert!(c.generation() > g1, "eviction must bump");
        assert_eq!(c.tile_cache_stats().entries, 0);
        // Tiles for the post-eviction layout still serve correctly.
        let tile = c.resident_tile(0);
        assert_eq!(tile.k_codes(), c.resident_blocks()[0].dequantize_to_int8().codes());
    }

    #[test]
    fn zero_budget_tile_cache_still_serves_tiles() {
        let mut c = HeadKvCache::new(4, cfg(BitWidth::Int4, 4));
        c.set_tile_cache_budget(0);
        for t in 0..4 {
            let row = [t as f32; 4];
            c.append(&row, &row);
        }
        let a = c.resident_tile(0);
        let b = c.resident_tile(0);
        assert_eq!(a.k_codes(), b.k_codes());
        assert_eq!(c.tile_cache_stats().hits, 0);
        assert_eq!(c.tile_cache_stats().misses, 2);
    }

    #[test]
    #[should_panic(expected = "before decoding")]
    fn prefill_after_decode_rejected() {
        let mut c = HeadKvCache::new(2, cfg(BitWidth::Int4, 8));
        c.append(&[1.0, 1.0], &[1.0, 1.0]);
        c.append_prefill_block(&Matrix::zeros(4, 2), &Matrix::zeros(4, 2));
    }
}
