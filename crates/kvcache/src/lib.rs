//! # turbo-kvcache
//!
//! Quantized key/value cache with the paper's *enhanced decode buffer*
//! (subsection 3.3).
//!
//! The resident cache holds progressively quantized INT4/INT2 blocks
//! ([`turbo_quant::ProgressiveBlock`]). Newly decoded tokens land in an
//! INT8 buffer with a **universal scale**: the scale is fixed when the
//! buffer opens and later tokens whose values exceed the representable
//! range are clamped instead of triggering a recompression of earlier
//! tokens. When the buffer reaches `n_b` tokens it is flushed — second-stage
//! quantized to the head's resident bit width — in one integer-arithmetic
//! pass.
//!
//! This contrasts with KIVI/GEAR, which hold their residual window in full
//! precision (FP16) and therefore cannot feed integer matmuls directly.
//!
//! # Example
//!
//! ```
//! use turbo_kvcache::{HeadKvCache, KvCacheConfig};
//! use turbo_quant::BitWidth;
//!
//! let cfg = KvCacheConfig { bits: BitWidth::Int4, group_size: 64, buffer_capacity: 64 };
//! let mut cache = HeadKvCache::new(8, cfg);
//! for t in 0..100 {
//!     let k: Vec<f32> = (0..8).map(|i| (t * 8 + i) as f32 * 0.01).collect();
//!     let v: Vec<f32> = (0..8).map(|i| (t + i) as f32 * 0.02).collect();
//!     cache.append(&k, &v);
//! }
//! assert_eq!(cache.len(), 100);
//! assert_eq!(cache.resident_blocks().len(), 1); // one flushed block of 64
//! assert_eq!(cache.buffer_len(), 36);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod dequant_cache;
pub mod error;
pub mod head;
pub mod layer;
pub mod paged;
pub mod persist;
pub mod stats;

pub use buffer::Int8Buffer;
pub use dequant_cache::{
    DequantCacheStats, DequantTile, DequantTileCache, DEFAULT_TILE_CACHE_BUDGET,
};
pub use error::CacheError;
pub use head::{HeadKvCache, KvCacheConfig};
pub use layer::LayerKvCache;
pub use paged::{PagedKvPool, SeqId};
pub use persist::layer_wal::{
    policy_from_env, policy_from_spec, replay_layer_wal, ByteBudget, CheckpointCause,
    CheckpointPolicy, DurableLayerSet, GroupCommitStats, LayerRecoverOutcome,
    LayerWalReplayReport, LayerWriteAheadLog, NeverCheckpoint, RecordBudget, ReplayBudget,
    ENV_CKPT_POLICY,
};
pub use persist::wal::{
    replay_wal, DurableHeadCache, RecoverOutcome, WalReplayReport, WriteAheadLog,
};
pub use persist::{frame_boundaries, recover_head_cache, serialize_head_cache_v1, PersistError};
pub use stats::{MemoryStats, RecoveryReport, ScrubReport};
