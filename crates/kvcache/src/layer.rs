//! Layer-level cache: one [`HeadKvCache`] per KV head with head-wise
//! mixed precision (section 3.2).

use crate::head::{HeadKvCache, KvCacheConfig};
use crate::stats::MemoryStats;
use turbo_quant::BitWidth;
use turbo_tensor::Matrix;

/// KV cache for all heads of one transformer layer, with per-head bit
/// widths chosen by the head-priority metric.
#[derive(Clone, Debug)]
pub struct LayerKvCache {
    heads: Vec<HeadKvCache>,
}

impl LayerKvCache {
    /// Creates a layer cache with an explicit bit width per head.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_head` is empty or any width is INT8.
    pub fn new(
        head_dim: usize,
        bits_per_head: &[BitWidth],
        group_size: usize,
        buffer_capacity: usize,
    ) -> Self {
        assert!(!bits_per_head.is_empty(), "at least one head required");
        let heads = bits_per_head
            .iter()
            .map(|&bits| {
                HeadKvCache::new(
                    head_dim,
                    KvCacheConfig {
                        bits,
                        group_size,
                        buffer_capacity,
                    },
                )
            })
            .collect();
        Self { heads }
    }

    /// Uniform precision across `n_heads`.
    pub fn uniform(
        n_heads: usize,
        head_dim: usize,
        bits: BitWidth,
        group_size: usize,
        buffer_capacity: usize,
    ) -> Self {
        Self::new(head_dim, &vec![bits; n_heads], group_size, buffer_capacity)
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Cached tokens (identical across heads).
    pub fn len(&self) -> usize {
        self.heads[0].len()
    }

    /// Whether no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable access to one head's cache.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn head(&self, h: usize) -> &HeadKvCache {
        &self.heads[h]
    }

    /// Mutable access to one head's cache.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn head_mut(&mut self, h: usize) -> &mut HeadKvCache {
        &mut self.heads[h]
    }

    /// Assembles a layer cache from pre-built per-head caches (all heads
    /// must share the head dimension and token count).
    ///
    /// # Panics
    ///
    /// Panics if `heads` is empty or dimensions/token counts disagree.
    pub fn from_heads(heads: Vec<HeadKvCache>) -> Self {
        assert!(!heads.is_empty(), "at least one head required");
        let d = heads[0].head_dim();
        let len = heads[0].len();
        for h in &heads {
            assert_eq!(h.head_dim(), d, "head dimension mismatch");
            assert_eq!(h.len(), len, "token count mismatch");
        }
        Self { heads }
    }

    /// Iterates over the per-head caches.
    pub fn iter(&self) -> impl Iterator<Item = &HeadKvCache> {
        self.heads.iter()
    }

    /// Mutable iteration over the per-head caches (e.g. for parallel
    /// per-head decode).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut HeadKvCache> {
        self.heads.iter_mut()
    }

    /// Appends one decoded token's per-head K/V vectors.
    ///
    /// # Panics
    ///
    /// Panics if `ks`/`vs` don't have one row per head.
    pub fn append(&mut self, ks: &[&[f32]], vs: &[&[f32]]) {
        assert_eq!(ks.len(), self.heads.len(), "one K row per head required");
        assert_eq!(vs.len(), self.heads.len(), "one V row per head required");
        for (h, cache) in self.heads.iter_mut().enumerate() {
            cache.append(ks[h], vs[h]);
        }
    }

    /// Prefill: appends one tile per head.
    ///
    /// # Panics
    ///
    /// Panics if tile counts don't match the head count.
    pub fn append_prefill_blocks(&mut self, ks: &[Matrix], vs: &[Matrix]) {
        assert_eq!(ks.len(), self.heads.len(), "one K tile per head required");
        assert_eq!(vs.len(), self.heads.len(), "one V tile per head required");
        for (h, cache) in self.heads.iter_mut().enumerate() {
            cache.append_prefill_block(&ks[h], &vs[h]);
        }
    }

    /// Flushes every head's open buffer.
    pub fn flush_all(&mut self) {
        for h in &mut self.heads {
            h.flush();
        }
    }

    /// Aggregated memory stats across heads.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for h in &self.heads {
            total.accumulate(h.memory_stats());
        }
        total
    }

    /// Average code bits per cached element across heads, e.g. 3.0 when
    /// half the heads are INT2 and half INT4 (Table 2's "Bit" column).
    pub fn average_bits(&self) -> f64 {
        let sum: u32 = self.heads.iter().map(|h| h.config().bits.bits()).sum();
        sum as f64 / self.heads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    #[test]
    fn mixed_precision_layer_averages_three_bits() {
        let bits = [
            BitWidth::Int2,
            BitWidth::Int4,
            BitWidth::Int2,
            BitWidth::Int4,
        ];
        let layer = LayerKvCache::new(8, &bits, 32, 16);
        assert_eq!(layer.average_bits(), 3.0);
        assert_eq!(layer.num_heads(), 4);
    }

    #[test]
    fn append_fans_out_to_all_heads() {
        let mut layer = LayerKvCache::uniform(2, 4, BitWidth::Int4, 32, 8);
        let k = [0.1f32, 0.2, 0.3, 0.4];
        layer.append(&[&k, &k], &[&k, &k]);
        assert_eq!(layer.len(), 1);
        assert_eq!(layer.head(0).len(), 1);
        assert_eq!(layer.head(1).len(), 1);
    }

    #[test]
    fn mixed_precision_memory_is_between_uniform_extremes() {
        let mut rng = TensorRng::new(41);
        let k = rng.normal(128, 16, 0.0, 1.0);
        let fill = |mut layer: LayerKvCache| {
            for t in 0..128 {
                let row = k.row(t);
                layer.append(&[row, row], &[row, row]);
            }
            layer.flush_all();
            layer.memory_stats().total_bytes()
        };
        let m2 = fill(LayerKvCache::uniform(2, 16, BitWidth::Int2, 64, 64));
        let m4 = fill(LayerKvCache::uniform(2, 16, BitWidth::Int4, 64, 64));
        let mixed = fill(LayerKvCache::new(
            16,
            &[BitWidth::Int2, BitWidth::Int4],
            64,
            64,
        ));
        assert!(m2 < mixed && mixed < m4, "{m2} < {mixed} < {m4}");
    }

    #[test]
    fn prefill_blocks_per_head() {
        let mut rng = TensorRng::new(42);
        let mut layer = LayerKvCache::uniform(3, 8, BitWidth::Int4, 32, 16);
        let tiles: Vec<Matrix> = (0..3).map(|_| rng.normal(16, 8, 0.0, 1.0)).collect();
        layer.append_prefill_blocks(&tiles, &tiles);
        assert_eq!(layer.len(), 16);
        for h in 0..3 {
            assert_eq!(layer.head(h).resident_blocks().len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "one K row per head")]
    fn mismatched_head_count_panics() {
        let mut layer = LayerKvCache::uniform(2, 4, BitWidth::Int4, 32, 8);
        let k = [0.0f32; 4];
        layer.append(&[&k], &[&k, &k]);
    }
}
