//! Resident-tile dequantization cache for the decode hot path.
//!
//! Every decode step attends over every resident [`ProgressiveBlock`] of
//! the head's KV cache. The blocks themselves are immutable between
//! flushes, yet the naive hot path re-ran the pure-integer INT4/2 → INT8
//! expansion (`dequantize_to_int8`) for both K and V of every block on
//! every token. This module memoizes that expansion: a [`DequantTile`]
//! holds the INT8 key codes (row-major, matmul-ready) and the value codes
//! *pre-transposed* to channel-major — the exact layout the fused `P·V`
//! kernel consumes — so a warm decode step performs no dequantization and
//! no transposition at all.
//!
//! Correctness does not depend on the cache: `dequantize_to_int8` is a
//! deterministic pure function of the block, so a cached tile is
//! bit-identical to a freshly built one. Invalidation is by *generation*:
//! [`HeadKvCache`](crate::HeadKvCache) bumps a monotonic counter whenever
//! its resident-block list changes (buffer flush, prefill append, middle
//! eviction) and the counter is part of the cache key, so stale tiles can
//! never be returned — they are purged eagerly to release memory.
//!
//! The cache is bounded by a byte budget with least-recently-used
//! eviction, and reports hit/miss/evict events both through local
//! counters ([`DequantCacheStats`]) and, when wired, a shared
//! [`HealthStats`] registry.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use turbo_quant::ProgressiveBlock;
use turbo_robust::{HealthEvent, HealthStats};

/// Default tile-cache byte budget (32 MiB): comfortably holds the
/// resident set of the bench and test workloads while still exercising
/// LRU eviction in long-context runs.
pub const DEFAULT_TILE_CACHE_BUDGET: usize = 32 << 20;

/// The memoized INT8 expansion of one resident K/V block pair, laid out
/// exactly as the fused decode kernels consume it.
///
/// * `k_codes` — key codes row-major (`rows × d`), ready to be the
///   transposed-B operand of the `q·Kᵀ` INT8 matmul.
/// * `vt_codes` — value codes **channel-major** (`d × rows`), i.e. the
///   transpose the `P·V` kernel needs; computing it here removes the
///   per-step `transpose_codes` allocation from the hot path.
#[derive(Clone, Debug)]
pub struct DequantTile {
    k_codes: Vec<i8>,
    k_scale: f32,
    vt_codes: Vec<i8>,
    v_scale: f32,
    rows: usize,
    d: usize,
}

impl DequantTile {
    /// Builds the tile from a resident K/V block pair. Pure function of
    /// the blocks: two calls on the same blocks produce bit-identical
    /// tiles, which is why memoization cannot change attention output.
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree in shape.
    pub fn from_blocks(k: &ProgressiveBlock, v: &ProgressiveBlock) -> Self {
        assert_eq!(k.rows(), v.rows(), "K/V row mismatch");
        assert_eq!(k.cols(), v.cols(), "K/V channel mismatch");
        let rows = k.rows();
        let d = k.cols();
        let k8 = k.dequantize_to_int8();
        let v8 = v.dequantize_to_int8();
        let v_codes = v8.codes();
        let mut vt_codes = vec![0i8; rows * d];
        for r in 0..rows {
            for c in 0..d {
                vt_codes[c * rows + r] = v_codes[r * d + c];
            }
        }
        Self {
            k_codes: k8.codes().to_vec(),
            k_scale: k8.scale(),
            vt_codes,
            v_scale: v8.scale(),
            rows,
            d,
        }
    }

    /// INT8 key codes, row-major `rows × d`.
    pub fn k_codes(&self) -> &[i8] {
        &self.k_codes
    }

    /// Scale of the key codes.
    pub fn k_scale(&self) -> f32 {
        self.k_scale
    }

    /// INT8 value codes, channel-major `d × rows` (pre-transposed).
    pub fn vt_codes(&self) -> &[i8] {
        &self.vt_codes
    }

    /// Scale of the value codes.
    pub fn v_scale(&self) -> f32 {
        self.v_scale
    }

    /// Tokens in the tile.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Channels per token.
    pub fn channels(&self) -> usize {
        self.d
    }

    /// Resident footprint of this tile in bytes.
    pub fn bytes(&self) -> usize {
        self.k_codes.len() + self.vt_codes.len() + 2 * std::mem::size_of::<f32>()
    }
}

/// Counter snapshot of a [`DequantTileCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DequantCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to rebuild the tile.
    pub misses: u64,
    /// Tiles evicted by the byte budget (LRU order). Generation purges
    /// are invalidations, not evictions, and are not counted here.
    pub evictions: u64,
    /// Tiles currently resident.
    pub entries: usize,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

#[derive(Clone, Debug)]
struct Entry {
    tile: Arc<DequantTile>,
    last_used: u64,
}

/// Bounded LRU memo of [`DequantTile`]s keyed by `(block index,
/// generation)`.
#[derive(Clone, Debug)]
pub struct DequantTileCache {
    entries: HashMap<(usize, u64), Entry>,
    budget_bytes: usize,
    resident_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    health: Option<Arc<HealthStats>>,
}

impl DequantTileCache {
    /// Creates an empty cache with the given byte budget. A budget of 0
    /// disables caching (every insert immediately evicts).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            budget_bytes,
            resident_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            health: None,
        }
    }

    /// Wires a shared health registry; hit/miss/evict events are recorded
    /// live as [`HealthEvent::DequantCacheHit`] /
    /// [`HealthEvent::DequantCacheMiss`] / [`HealthEvent::DequantCacheEvict`].
    pub fn set_health(&mut self, health: Option<Arc<HealthStats>>) {
        self.health = health;
    }

    /// Changes the byte budget, evicting immediately if the resident set
    /// no longer fits.
    pub fn set_budget(&mut self, budget_bytes: usize) {
        self.budget_bytes = budget_bytes;
        self.evict_to_budget();
    }

    /// Looks up the tile for `(block, generation)`, updating recency and
    /// recording a hit or miss.
    pub fn get(&mut self, block: usize, generation: u64) -> Option<Arc<DequantTile>> {
        self.tick += 1;
        match self.entries.get_mut(&(block, generation)) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                if let Some(h) = &self.health {
                    h.record(HealthEvent::DequantCacheHit);
                }
                Some(Arc::clone(&e.tile))
            }
            None => {
                self.misses += 1;
                if let Some(h) = &self.health {
                    h.record(HealthEvent::DequantCacheMiss);
                }
                None
            }
        }
    }

    /// Inserts a freshly built tile, then evicts least-recently-used
    /// tiles until the resident set fits the budget (possibly evicting
    /// the tile just inserted when the budget is smaller than one tile).
    pub fn insert(&mut self, block: usize, generation: u64, tile: Arc<DequantTile>) {
        self.tick += 1;
        let bytes = tile.bytes();
        let prev = self.entries.insert(
            (block, generation),
            Entry {
                tile,
                last_used: self.tick,
            },
        );
        self.resident_bytes += bytes;
        if let Some(p) = prev {
            self.resident_bytes -= p.tile.bytes();
        }
        self.evict_to_budget();
    }

    /// Drops every tile whose generation predates `generation` — the
    /// eager half of generation invalidation (stale keys could never be
    /// looked up again, but their memory should not linger).
    pub fn purge_generations_below(&mut self, generation: u64) {
        let mut freed = 0usize;
        self.entries.retain(|&(_, g), e| {
            if g < generation {
                freed += e.tile.bytes();
                false
            } else {
                true
            }
        });
        self.resident_bytes -= freed;
    }

    /// Drops every tile.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.resident_bytes = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DequantCacheStats {
        DequantCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            resident_bytes: self.resident_bytes,
            budget_bytes: self.budget_bytes,
        }
    }

    fn evict_to_budget(&mut self) {
        while self.resident_bytes > self.budget_bytes && !self.entries.is_empty() {
            // O(n) scan is fine: the resident set is small (one entry per
            // resident block) and eviction is rare on the hot path.
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty");
            let e = self.entries.remove(&oldest).expect("present");
            self.resident_bytes -= e.tile.bytes();
            self.evictions += 1;
            if let Some(h) = &self.health {
                h.record(HealthEvent::DequantCacheEvict);
            }
        }
    }
}

/// Interior-mutable cache cell shared by `&self` readers of a
/// [`HeadKvCache`](crate::HeadKvCache).
///
/// Cloning a cache clones the cell's *contents* (tiles are `Arc`-shared,
/// so the clone is cheap and the warm state carries over — a cloned cache
/// starts warm). A poisoned lock is recovered rather than propagated: the
/// cache holds only memoized derived data, so observing a panicked
/// writer's state is harmless.
pub(crate) struct TileCacheCell(Mutex<DequantTileCache>);

impl TileCacheCell {
    pub(crate) fn new(budget_bytes: usize) -> Self {
        Self(Mutex::new(DequantTileCache::new(budget_bytes)))
    }

    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut DequantTileCache) -> R) -> R {
        let mut guard = self.0.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }
}

impl Clone for TileCacheCell {
    fn clone(&self) -> Self {
        Self(Mutex::new(self.with(|c| c.clone())))
    }
}

impl std::fmt::Debug for TileCacheCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.with(|c| c.stats());
        f.debug_tuple("TileCacheCell").field(&stats).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_quant::BitWidth;
    use turbo_tensor::TensorRng;

    fn block(seed: u64, rows: usize, d: usize) -> ProgressiveBlock {
        let mut rng = TensorRng::new(seed);
        ProgressiveBlock::quantize(&rng.normal(rows, d, 0.0, 1.0), BitWidth::Int4, 32)
    }

    #[test]
    fn tile_matches_fresh_dequant_and_pretransposes_v() {
        let k = block(1, 16, 8);
        let v = block(2, 16, 8);
        let tile = DequantTile::from_blocks(&k, &v);
        let k8 = k.dequantize_to_int8();
        let v8 = v.dequantize_to_int8();
        assert_eq!(tile.k_codes(), k8.codes());
        assert_eq!(tile.k_scale(), k8.scale());
        assert_eq!(tile.v_scale(), v8.scale());
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(tile.vt_codes()[c * 16 + r], v8.codes()[r * 8 + c]);
            }
        }
        assert_eq!(tile.bytes(), 16 * 8 * 2 + 8);
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut cache = DequantTileCache::new(1 << 20);
        let tile = Arc::new(DequantTile::from_blocks(&block(1, 8, 4), &block(2, 8, 4)));
        assert!(cache.get(0, 0).is_none());
        cache.insert(0, 0, Arc::clone(&tile));
        let got = cache.get(0, 0).expect("hit");
        assert!(Arc::ptr_eq(&got, &tile));
        // Stale generation never hits.
        assert!(cache.get(0, 1).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let tile = |s| Arc::new(DequantTile::from_blocks(&block(s, 8, 4), &block(s + 100, 8, 4)));
        let bytes = tile(1).bytes();
        let mut cache = DequantTileCache::new(2 * bytes);
        cache.insert(0, 0, tile(1));
        cache.insert(1, 0, tile(2));
        // Touch block 0 so block 1 is the LRU victim.
        cache.get(0, 0).expect("hit");
        cache.insert(2, 0, tile(3));
        assert!(cache.get(0, 0).is_some(), "recently used survives");
        assert!(cache.get(1, 0).is_none(), "LRU victim evicted");
        assert!(cache.get(2, 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().resident_bytes <= 2 * bytes);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut cache = DequantTileCache::new(0);
        let tile = Arc::new(DequantTile::from_blocks(&block(1, 8, 4), &block(2, 8, 4)));
        cache.insert(0, 0, tile);
        assert!(cache.get(0, 0).is_none());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn generation_purge_frees_memory() {
        let mut cache = DequantTileCache::new(1 << 20);
        let tile = Arc::new(DequantTile::from_blocks(&block(1, 8, 4), &block(2, 8, 4)));
        cache.insert(0, 0, Arc::clone(&tile));
        cache.insert(1, 0, Arc::clone(&tile));
        cache.insert(0, 1, Arc::clone(&tile));
        cache.purge_generations_below(1);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, tile.bytes());
        assert!(cache.get(0, 1).is_some());
    }

    #[test]
    fn health_sink_records_events() {
        let health = Arc::new(HealthStats::new());
        let mut cache = DequantTileCache::new(0);
        cache.set_health(Some(Arc::clone(&health)));
        let tile = Arc::new(DequantTile::from_blocks(&block(1, 8, 4), &block(2, 8, 4)));
        cache.get(0, 0);
        cache.insert(0, 0, Arc::clone(&tile));
        cache.set_budget(1 << 20);
        cache.insert(0, 0, tile);
        cache.get(0, 0);
        assert_eq!(health.count(HealthEvent::DequantCacheMiss), 1);
        assert_eq!(health.count(HealthEvent::DequantCacheHit), 1);
        assert_eq!(health.count(HealthEvent::DequantCacheEvict), 1);
    }

    #[test]
    fn clone_carries_warm_state() {
        let mut cache = DequantTileCache::new(1 << 20);
        let tile = Arc::new(DequantTile::from_blocks(&block(1, 8, 4), &block(2, 8, 4)));
        cache.insert(0, 0, tile);
        let mut copy = cache.clone();
        assert!(copy.get(0, 0).is_some());
    }
}
