//! Memory accounting and integrity reporting for quantized KV caches.

use std::ops::Range;

/// Outcome of a [`crate::PagedKvPool::scrub`] integrity pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Physical pages dropped because their checksum no longer matched.
    pub corrupt_pages: usize,
    /// Per affected sequence (by raw id, ascending): the token range that
    /// was lost and must be re-prefilled. Ranges start at the first
    /// corrupt page and run to the old sequence end — later pages and the
    /// tail buffer depend on the corrupt prefix, so they are dropped too.
    pub reprefill: Vec<(u64, Range<usize>)>,
}

impl ScrubReport {
    /// True when no corruption was found.
    pub fn is_clean(&self) -> bool {
        self.corrupt_pages == 0 && self.reprefill.is_empty()
    }

    /// Total tokens that need re-prefilling across all sequences.
    pub fn tokens_lost(&self) -> usize {
        self.reprefill.iter().map(|(_, r)| r.len()).sum()
    }
}

/// Outcome of a tolerant persisted-cache decode
/// ([`crate::persist::recover_head_cache`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tokens preserved in the recovered cache (a valid prefix).
    pub valid_tokens: usize,
    /// Sealed blocks discarded because of corruption or truncation
    /// (best-effort count derived from the header).
    pub dropped_blocks: usize,
    /// True when the whole payload decoded cleanly; false when a corrupt
    /// suffix (blocks and/or tail buffers) was dropped and the lost
    /// tokens must be re-prefilled.
    pub complete: bool,
}

/// Byte-level accounting of one cache (head or layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes held by flushed progressive blocks (codes + group params +
    /// outer scales).
    pub resident_bytes: usize,
    /// Bytes held by open INT8 decode buffers.
    pub buffer_bytes: usize,
    /// Bytes the same tokens would occupy as FP16 K and V tensors.
    pub fp16_bytes: usize,
}

impl MemoryStats {
    /// Total physical bytes of the quantized cache.
    pub fn total_bytes(&self) -> usize {
        self.resident_bytes + self.buffer_bytes
    }

    /// Compression ratio versus the FP16 reference (∞ for an empty cache
    /// is avoided by returning 1.0).
    pub fn compression_ratio(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            1.0
        } else {
            self.fp16_bytes as f64 / total as f64
        }
    }

    /// Accumulates another head's stats (for layer/model totals).
    pub fn accumulate(&mut self, other: MemoryStats) {
        self.resident_bytes += other.resident_bytes;
        self.buffer_bytes += other.buffer_bytes;
        self.fp16_bytes += other.fp16_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let s = MemoryStats {
            resident_bytes: 100,
            buffer_bytes: 28,
            fp16_bytes: 512,
        };
        assert_eq!(s.total_bytes(), 128);
        assert_eq!(s.compression_ratio(), 4.0);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(MemoryStats::default().compression_ratio(), 1.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = MemoryStats {
            resident_bytes: 1,
            buffer_bytes: 2,
            fp16_bytes: 3,
        };
        a.accumulate(a);
        assert_eq!(a.resident_bytes, 2);
        assert_eq!(a.buffer_bytes, 4);
        assert_eq!(a.fp16_bytes, 6);
    }
}
