//! Memory accounting for quantized KV caches.

/// Byte-level accounting of one cache (head or layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes held by flushed progressive blocks (codes + group params +
    /// outer scales).
    pub resident_bytes: usize,
    /// Bytes held by open INT8 decode buffers.
    pub buffer_bytes: usize,
    /// Bytes the same tokens would occupy as FP16 K and V tensors.
    pub fp16_bytes: usize,
}

impl MemoryStats {
    /// Total physical bytes of the quantized cache.
    pub fn total_bytes(&self) -> usize {
        self.resident_bytes + self.buffer_bytes
    }

    /// Compression ratio versus the FP16 reference (∞ for an empty cache
    /// is avoided by returning 1.0).
    pub fn compression_ratio(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            1.0
        } else {
            self.fp16_bytes as f64 / total as f64
        }
    }

    /// Accumulates another head's stats (for layer/model totals).
    pub fn accumulate(&mut self, other: MemoryStats) {
        self.resident_bytes += other.resident_bytes;
        self.buffer_bytes += other.buffer_bytes;
        self.fp16_bytes += other.fp16_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let s = MemoryStats {
            resident_bytes: 100,
            buffer_bytes: 28,
            fp16_bytes: 512,
        };
        assert_eq!(s.total_bytes(), 128);
        assert_eq!(s.compression_ratio(), 4.0);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(MemoryStats::default().compression_ratio(), 1.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = MemoryStats {
            resident_bytes: 1,
            buffer_bytes: 2,
            fp16_bytes: 3,
        };
        a.accumulate(a);
        assert_eq!(a.resident_bytes, 2);
        assert_eq!(a.buffer_bytes, 4);
        assert_eq!(a.fp16_bytes, 6);
    }
}
