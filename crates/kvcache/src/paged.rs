//! Paged KV-cache pool with shared prefixes.
//!
//! Serving engines (vLLM and descendants) store the KV cache as fixed-size
//! pages so sequences that share a prefix — system prompts, few-shot
//! headers, beam-search branches — share physical memory. TurboAttention's
//! progressive blocks are natural pages: they are immutable once written,
//! so sharing is reference counting with no copy-on-write machinery. The
//! open INT8 tail buffer is per-sequence (it is mutable) and is copied on
//! fork.
//!
//! Combined with 4–5× block compression, paging multiplies capacity: a
//! hundred chat sessions over one system prompt store that prompt's pages
//! once, quantized.

use std::collections::HashMap;

use crate::buffer::Int8Buffer;
use crate::head::KvCacheConfig;
use turbo_quant::{BitWidth, ProgressiveBlock};
use turbo_tensor::Matrix;

/// Identifier of a live sequence in a [`PagedKvPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(u64);

/// One immutable page: a sealed progressive K/V block pair plus its
/// reference count.
#[derive(Clone, Debug)]
struct Page {
    k: ProgressiveBlock,
    v: ProgressiveBlock,
    refs: usize,
}

#[derive(Clone, Debug)]
struct Sequence {
    pages: Vec<usize>,
    k_buf: Int8Buffer,
    v_buf: Int8Buffer,
}

/// A pool of shared, quantized KV pages for one attention head across many
/// sequences.
///
/// # Example
///
/// ```
/// use turbo_kvcache::{KvCacheConfig, PagedKvPool};
///
/// let mut pool = PagedKvPool::new(4, KvCacheConfig {
///     buffer_capacity: 2,
///     ..KvCacheConfig::default()
/// });
/// let a = pool.create_sequence();
/// pool.append(a, &[1.0; 4], &[2.0; 4]);
/// pool.append(a, &[1.5; 4], &[2.5; 4]); // buffer full -> sealed page
/// let b = pool.fork(a); // shares the sealed page
/// assert_eq!(pool.seq_len(a), 2);
/// assert_eq!(pool.seq_len(b), 2);
/// assert_eq!(pool.physical_pages(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct PagedKvPool {
    d: usize,
    config: KvCacheConfig,
    pages: Vec<Option<Page>>,
    free: Vec<usize>,
    seqs: HashMap<SeqId, Sequence>,
    next_seq: u64,
}

impl PagedKvPool {
    /// Creates an empty pool for `d`-channel heads; `config.buffer_capacity`
    /// doubles as the page size in tokens.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension/config field or an INT8 resident width.
    pub fn new(d: usize, config: KvCacheConfig) -> Self {
        assert!(d > 0, "head dimension must be positive");
        assert!(config.buffer_capacity > 0, "page size must be positive");
        assert!(config.group_size > 0, "group size must be positive");
        assert!(
            config.bits != BitWidth::Int8,
            "resident pages must be INT4/3/2"
        );
        Self {
            d,
            config,
            pages: Vec::new(),
            free: Vec::new(),
            seqs: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Page size in tokens.
    pub fn page_tokens(&self) -> usize {
        self.config.buffer_capacity
    }

    /// Starts an empty sequence.
    pub fn create_sequence(&mut self) -> SeqId {
        let id = SeqId(self.next_seq);
        self.next_seq += 1;
        self.seqs.insert(
            id,
            Sequence {
                pages: Vec::new(),
                k_buf: Int8Buffer::new(self.d),
                v_buf: Int8Buffer::new(self.d),
            },
        );
        id
    }

    /// Forks `seq`: the child shares every sealed page (reference counted)
    /// and gets a copy of the open tail buffer.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    pub fn fork(&mut self, seq: SeqId) -> SeqId {
        let parent = self.seqs.get(&seq).expect("unknown sequence").clone();
        for &p in &parent.pages {
            self.pages[p].as_mut().expect("dangling page").refs += 1;
        }
        let id = SeqId(self.next_seq);
        self.next_seq += 1;
        self.seqs.insert(id, parent);
        id
    }

    /// Releases a sequence, freeing any pages whose reference count drops
    /// to zero.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    pub fn release(&mut self, seq: SeqId) {
        let s = self.seqs.remove(&seq).expect("unknown sequence");
        for p in s.pages {
            let page = self.pages[p].as_mut().expect("dangling page");
            page.refs -= 1;
            if page.refs == 0 {
                self.pages[p] = None;
                self.free.push(p);
            }
        }
    }

    /// Appends one token's K/V vectors to `seq`, sealing a page when the
    /// tail buffer reaches the page size.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live or the vectors are the wrong width.
    pub fn append(&mut self, seq: SeqId, k: &[f32], v: &[f32]) {
        let s = self.seqs.get_mut(&seq).expect("unknown sequence");
        s.k_buf.append(k);
        s.v_buf.append(v);
        if s.k_buf.len() >= self.config.buffer_capacity {
            let kb = ProgressiveBlock::quantize_from_int8(
                &s.k_buf.as_sym_quantized(),
                self.config.bits,
                self.config.group_size,
            );
            let vb = ProgressiveBlock::quantize_from_int8(
                &s.v_buf.as_sym_quantized(),
                self.config.bits,
                self.config.group_size,
            );
            s.k_buf.clear();
            s.v_buf.clear();
            let page = Page {
                k: kb,
                v: vb,
                refs: 1,
            };
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.pages[slot] = Some(page);
                    slot
                }
                None => {
                    self.pages.push(Some(page));
                    self.pages.len() - 1
                }
            };
            s.pages.push(slot);
        }
    }

    /// Number of live sequences.
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Tokens held by `seq` (sealed pages + tail buffer).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    pub fn seq_len(&self, seq: SeqId) -> usize {
        let s = self.seqs.get(&seq).expect("unknown sequence");
        s.pages.len() * self.config.buffer_capacity + s.k_buf.len()
    }

    /// Physical (deduplicated) sealed pages in the pool.
    pub fn physical_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Logical pages summed over sequences (≥ physical when prefixes are
    /// shared).
    pub fn logical_pages(&self) -> usize {
        self.seqs.values().map(|s| s.pages.len()).sum()
    }

    /// Physical bytes held by sealed pages and tail buffers.
    pub fn storage_bytes(&self) -> usize {
        let pages: usize = self
            .pages
            .iter()
            .flatten()
            .map(|p| p.k.storage_bytes() + p.v.storage_bytes())
            .sum();
        let tails: usize = self
            .seqs
            .values()
            .map(|s| s.k_buf.storage_bytes() + s.v_buf.storage_bytes())
            .sum();
        pages + tails
    }

    /// Bytes the same *logical* tokens would take as unshared FP16.
    pub fn fp16_logical_bytes(&self) -> usize {
        self.seqs
            .keys()
            .map(|&id| 2 * 2 * self.seq_len(id) * self.d)
            .sum()
    }

    /// Reconstructs `seq`'s full `(K, V)` in f32 — test/debug path.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    pub fn dequantize_sequence(&self, seq: SeqId) -> (Matrix, Matrix) {
        let s = self.seqs.get(&seq).expect("unknown sequence");
        let mut ks = Vec::new();
        let mut vs = Vec::new();
        for &p in &s.pages {
            let page = self.pages[p].as_ref().expect("dangling page");
            ks.push(page.k.dequantize());
            vs.push(page.v.dequantize());
        }
        if !s.k_buf.is_empty() {
            ks.push(s.k_buf.dequantize());
            vs.push(s.v_buf.dequantize());
        }
        if ks.is_empty() {
            return (Matrix::zeros(0, self.d), Matrix::zeros(0, self.d));
        }
        (Matrix::vstack(&ks), Matrix::vstack(&vs))
    }

    /// Visits `seq`'s K/V blocks oldest-first: sealed pages as
    /// progressive blocks, then the open tail (if any) as INT8.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    pub fn visit_blocks(
        &self,
        seq: SeqId,
        mut on_page: impl FnMut(&ProgressiveBlock, &ProgressiveBlock),
        mut on_tail: impl FnMut(&Int8Buffer, &Int8Buffer),
    ) {
        let s = self.seqs.get(&seq).expect("unknown sequence");
        for &p in &s.pages {
            let page = self.pages[p].as_ref().expect("dangling page");
            on_page(&page.k, &page.v);
        }
        if !s.k_buf.is_empty() {
            on_tail(&s.k_buf, &s.v_buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn pool(page: usize) -> PagedKvPool {
        PagedKvPool::new(
            8,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 8,
                buffer_capacity: page,
            },
        )
    }

    fn fill(pool: &mut PagedKvPool, seq: SeqId, seed: u64, n: usize) {
        let mut rng = TensorRng::new(seed);
        let data = rng.normal(n, 8, 0.0, 1.0);
        for t in 0..n {
            pool.append(seq, data.row(t), data.row(t));
        }
    }

    #[test]
    fn pages_seal_at_page_size() {
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 1, 10);
        assert_eq!(p.seq_len(s), 10);
        assert_eq!(p.physical_pages(), 2); // two sealed pages of 4
        let (k, _) = p.dequantize_sequence(s);
        assert_eq!(k.rows(), 10);
    }

    #[test]
    fn fork_shares_pages_physically() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 2, 8); // 2 sealed pages
        let b = p.fork(a);
        let c = p.fork(a);
        assert_eq!(p.num_sequences(), 3);
        assert_eq!(p.logical_pages(), 6);
        assert_eq!(p.physical_pages(), 2); // shared!
                                           // All three read identical content.
        assert_eq!(p.dequantize_sequence(a), p.dequantize_sequence(b));
        assert_eq!(p.dequantize_sequence(a), p.dequantize_sequence(c));
    }

    #[test]
    fn forked_sequences_diverge_independently() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 3, 8);
        let b = p.fork(a);
        // Divergent continuations.
        p.append(a, &[1.0; 8], &[1.0; 8]);
        p.append(b, &[-1.0; 8], &[-1.0; 8]);
        let (ka, _) = p.dequantize_sequence(a);
        let (kb, _) = p.dequantize_sequence(b);
        assert_eq!(ka.rows(), 9);
        assert!((ka.get(8, 0) - 1.0).abs() < 0.1);
        assert!((kb.get(8, 0) + 1.0).abs() < 0.1);
        // Shared prefix still shared.
        assert_eq!(p.physical_pages(), 2);
    }

    #[test]
    fn release_frees_unreferenced_pages_and_reuses_slots() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 4, 8);
        let b = p.fork(a);
        p.release(a);
        assert_eq!(p.physical_pages(), 2, "b still references the pages");
        p.release(b);
        assert_eq!(p.physical_pages(), 0);
        // Slots are recycled for the next sequence.
        let c = p.create_sequence();
        fill(&mut p, c, 5, 8);
        assert_eq!(p.physical_pages(), 2);
        assert_eq!(p.pages.len(), 2, "freed slots were reused");
    }

    #[test]
    fn sharing_shrinks_physical_footprint() {
        // 16 chat sessions over one 64-token system prompt.
        let mut p = pool(16);
        let root = p.create_sequence();
        fill(&mut p, root, 6, 64);
        let sessions: Vec<SeqId> = (0..16).map(|_| p.fork(root)).collect();
        let mut rng = TensorRng::new(7);
        for &s in &sessions {
            for _ in 0..8 {
                let row: Vec<f32> = (0..8).map(|_| rng.standard_normal()).collect();
                p.append(s, &row, &row);
            }
        }
        let physical = p.storage_bytes();
        let fp16_logical = p.fp16_logical_bytes();
        // 17 sequences × 64-token prefix logically, one physically, all
        // quantized: >12× below naive FP16 (the per-session INT8 tails are
        // the remaining cost).
        assert!(
            fp16_logical > 12 * physical,
            "physical {physical} vs fp16 logical {fp16_logical}"
        );
    }

    #[test]
    fn visit_blocks_sees_pages_then_tail() {
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 8, 10);
        let mut pages = 0;
        let mut tails = 0;
        let mut tail_rows = 0;
        p.visit_blocks(
            s,
            |k, _v| {
                pages += 1;
                assert_eq!(k.rows(), 4);
            },
            |k, _v| {
                tails += 1;
                tail_rows = k.len();
            },
        );
        assert_eq!(pages, 2);
        assert_eq!(tails, 1);
        assert_eq!(tail_rows, 2);
    }

    #[test]
    #[should_panic(expected = "unknown sequence")]
    fn released_sequence_is_gone() {
        let mut p = pool(4);
        let s = p.create_sequence();
        p.release(s);
        p.seq_len(s);
    }
}
