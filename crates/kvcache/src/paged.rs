//! Paged KV-cache pool with shared prefixes.
//!
//! Serving engines (vLLM and descendants) store the KV cache as fixed-size
//! pages so sequences that share a prefix — system prompts, few-shot
//! headers, beam-search branches — share physical memory. TurboAttention's
//! progressive blocks are natural pages: they are immutable once written,
//! so sharing is reference counting with no copy-on-write machinery. The
//! open INT8 tail buffer is per-sequence (it is mutable) and is copied on
//! fork.
//!
//! Combined with 4–5× block compression, paging multiplies capacity: a
//! hundred chat sessions over one system prompt store that prompt's pages
//! once, quantized.

use std::collections::{HashMap, HashSet};

use crate::buffer::Int8Buffer;
use crate::error::CacheError;
use crate::head::KvCacheConfig;
use crate::stats::ScrubReport;
use turbo_quant::{BitWidth, PackedCodes, ProgressiveBlock};
use turbo_robust::{Crc32, HealthEvent, HealthStats};
use turbo_tensor::Matrix;

/// Identifier of a live sequence in a [`PagedKvPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(u64);

impl SeqId {
    /// The raw id, for error reporting.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One immutable page: a sealed progressive K/V block pair plus its
/// reference count and seal-time checksum.
#[derive(Clone, Debug)]
struct Page {
    k: ProgressiveBlock,
    v: ProgressiveBlock,
    refs: usize,
    /// CRC32 over the page payload at seal time; [`PagedKvPool::scrub`]
    /// recomputes it to detect in-memory corruption.
    crc: u32,
}

/// Checksum of a page's payload: packed K/V codes, group parameters, and
/// stage-1 scales — everything a bit-flip could silently alter.
fn page_checksum(k: &ProgressiveBlock, v: &ProgressiveBlock) -> u32 {
    let mut crc = Crc32::new();
    for b in [k, v] {
        crc.update(b.packed().bytes());
        for p in b.group_params() {
            crc.update(&[p.scale as u8, p.zero as u8]);
        }
        crc.update(&b.outer_scale().to_le_bytes());
    }
    crc.finish()
}

#[derive(Clone, Debug)]
struct Sequence {
    pages: Vec<usize>,
    k_buf: Int8Buffer,
    v_buf: Int8Buffer,
}

/// A pool of shared, quantized KV pages for one attention head across many
/// sequences.
///
/// # Example
///
/// ```
/// use turbo_kvcache::{KvCacheConfig, PagedKvPool};
///
/// let mut pool = PagedKvPool::new(4, KvCacheConfig {
///     buffer_capacity: 2,
///     ..KvCacheConfig::default()
/// });
/// let a = pool.create_sequence();
/// pool.append(a, &[1.0; 4], &[2.0; 4]);
/// pool.append(a, &[1.5; 4], &[2.5; 4]); // buffer full -> sealed page
/// let b = pool.fork(a); // shares the sealed page
/// assert_eq!(pool.seq_len(a), 2);
/// assert_eq!(pool.seq_len(b), 2);
/// assert_eq!(pool.physical_pages(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct PagedKvPool {
    d: usize,
    config: KvCacheConfig,
    pages: Vec<Option<Page>>,
    free: Vec<usize>,
    seqs: HashMap<SeqId, Sequence>,
    next_seq: u64,
}

impl PagedKvPool {
    /// Creates an empty pool for `d`-channel heads; `config.buffer_capacity`
    /// doubles as the page size in tokens.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension/config field or an INT8 resident width.
    pub fn new(d: usize, config: KvCacheConfig) -> Self {
        assert!(d > 0, "head dimension must be positive");
        assert!(config.buffer_capacity > 0, "page size must be positive");
        assert!(config.group_size > 0, "group size must be positive");
        assert!(
            config.bits != BitWidth::Int8,
            "resident pages must be INT4/3/2"
        );
        Self {
            d,
            config,
            pages: Vec::new(),
            free: Vec::new(),
            seqs: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Page size in tokens.
    pub fn page_tokens(&self) -> usize {
        self.config.buffer_capacity
    }

    /// Starts an empty sequence.
    pub fn create_sequence(&mut self) -> SeqId {
        let id = SeqId(self.next_seq);
        self.next_seq += 1;
        self.seqs.insert(
            id,
            Sequence {
                pages: Vec::new(),
                k_buf: Int8Buffer::new(self.d),
                v_buf: Int8Buffer::new(self.d),
            },
        );
        id
    }

    /// Forks `seq`: the child shares every sealed page (reference counted)
    /// and gets a copy of the open tail buffer.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live. [`PagedKvPool::try_fork`] is the
    /// non-panicking equivalent.
    pub fn fork(&mut self, seq: SeqId) -> SeqId {
        self.try_fork(seq).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`PagedKvPool::fork`].
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] if `seq` is not live;
    /// [`CacheError::DanglingPage`] if its page table references a freed
    /// slot (pool corruption).
    pub fn try_fork(&mut self, seq: SeqId) -> Result<SeqId, CacheError> {
        let parent = self
            .seqs
            .get(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?
            .clone();
        // Validate the whole page table before touching refcounts so a
        // failed fork leaves the pool unchanged.
        for &p in &parent.pages {
            if self.pages.get(p).is_none_or(|slot| slot.is_none()) {
                return Err(CacheError::DanglingPage(p));
            }
        }
        for &p in &parent.pages {
            self.pages[p].as_mut().expect("validated above").refs += 1;
        }
        let id = SeqId(self.next_seq);
        self.next_seq += 1;
        self.seqs.insert(id, parent);
        Ok(id)
    }

    /// Releases a sequence, freeing any pages whose reference count drops
    /// to zero.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live. [`PagedKvPool::try_release`] is the
    /// non-panicking equivalent.
    pub fn release(&mut self, seq: SeqId) {
        self.try_release(seq).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`PagedKvPool::release`]. Slots already freed (e.g.
    /// by a [`PagedKvPool::scrub`] that dropped corrupt pages) are
    /// skipped rather than treated as errors — release must always make
    /// progress during recovery.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] if `seq` is not live.
    pub fn try_release(&mut self, seq: SeqId) -> Result<(), CacheError> {
        let s = self
            .seqs
            .remove(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?;
        for p in s.pages {
            if let Some(Some(page)) = self.pages.get_mut(p) {
                page.refs -= 1;
                if page.refs == 0 {
                    self.pages[p] = None;
                    self.free.push(p);
                }
            }
        }
        Ok(())
    }

    /// Appends one token's K/V vectors to `seq`, sealing a page when the
    /// tail buffer reaches the page size.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live or the vectors are the wrong width.
    /// [`PagedKvPool::try_append`] is the non-panicking equivalent.
    pub fn append(&mut self, seq: SeqId, k: &[f32], v: &[f32]) {
        self.try_append(seq, k, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`PagedKvPool::append`]: validates the sequence and
    /// both rows before mutating anything, so a rejected token leaves the
    /// pool consistent (no half-appended K without V).
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`], [`CacheError::WidthMismatch`], or
    /// [`CacheError::NonFinite`] (first bad channel of whichever row is
    /// bad, K checked first).
    pub fn try_append(&mut self, seq: SeqId, k: &[f32], v: &[f32]) -> Result<(), CacheError> {
        let d = self.d;
        let validate = |row: &[f32]| -> Result<(), CacheError> {
            if row.len() != d {
                return Err(CacheError::WidthMismatch {
                    expected: d,
                    got: row.len(),
                });
            }
            if let Some(channel) = row.iter().position(|x| !x.is_finite()) {
                return Err(CacheError::NonFinite { channel });
            }
            Ok(())
        };
        validate(k)?;
        validate(v)?;
        let s = self
            .seqs
            .get_mut(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?;
        s.k_buf
            .try_append(k)
            .expect("row validated before mutation");
        s.v_buf
            .try_append(v)
            .expect("row validated before mutation");
        if s.k_buf.len() >= self.config.buffer_capacity {
            let kb = ProgressiveBlock::quantize_from_int8(
                &s.k_buf.as_sym_quantized(),
                self.config.bits,
                self.config.group_size,
            );
            let vb = ProgressiveBlock::quantize_from_int8(
                &s.v_buf.as_sym_quantized(),
                self.config.bits,
                self.config.group_size,
            );
            s.k_buf.clear();
            s.v_buf.clear();
            let crc = page_checksum(&kb, &vb);
            let page = Page {
                k: kb,
                v: vb,
                refs: 1,
                crc,
            };
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.pages[slot] = Some(page);
                    slot
                }
                None => {
                    self.pages.push(Some(page));
                    self.pages.len() - 1
                }
            };
            s.pages.push(slot);
        }
        Ok(())
    }

    /// Number of live sequences.
    pub fn num_sequences(&self) -> usize {
        self.seqs.len()
    }

    /// Tokens held by `seq` (sealed pages + tail buffer).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live. [`PagedKvPool::try_seq_len`] is the
    /// non-panicking equivalent.
    pub fn seq_len(&self, seq: SeqId) -> usize {
        self.try_seq_len(seq).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`PagedKvPool::seq_len`].
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] if `seq` is not live.
    pub fn try_seq_len(&self, seq: SeqId) -> Result<usize, CacheError> {
        let s = self
            .seqs
            .get(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?;
        Ok(s.pages.len() * self.config.buffer_capacity + s.k_buf.len())
    }

    /// All live sequence ids, ascending.
    pub fn sequence_ids(&self) -> Vec<SeqId> {
        let mut ids: Vec<SeqId> = self.seqs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Physical (deduplicated) sealed pages in the pool.
    pub fn physical_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Logical pages summed over sequences (≥ physical when prefixes are
    /// shared).
    pub fn logical_pages(&self) -> usize {
        self.seqs.values().map(|s| s.pages.len()).sum()
    }

    /// Physical bytes held by sealed pages and tail buffers.
    pub fn storage_bytes(&self) -> usize {
        let pages: usize = self
            .pages
            .iter()
            .flatten()
            .map(|p| p.k.storage_bytes() + p.v.storage_bytes())
            .sum();
        let tails: usize = self
            .seqs
            .values()
            .map(|s| s.k_buf.storage_bytes() + s.v_buf.storage_bytes())
            .sum();
        pages + tails
    }

    /// Bytes the same *logical* tokens would take as unshared FP16.
    pub fn fp16_logical_bytes(&self) -> usize {
        self.seqs
            .keys()
            .map(|&id| 2 * 2 * self.seq_len(id) * self.d)
            .sum()
    }

    /// Reconstructs `seq`'s full `(K, V)` in f32 — test/debug path.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live.
    /// [`PagedKvPool::try_dequantize_sequence`] is the non-panicking
    /// equivalent.
    pub fn dequantize_sequence(&self, seq: SeqId) -> (Matrix, Matrix) {
        self.try_dequantize_sequence(seq)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`PagedKvPool::dequantize_sequence`].
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] or [`CacheError::DanglingPage`].
    pub fn try_dequantize_sequence(&self, seq: SeqId) -> Result<(Matrix, Matrix), CacheError> {
        let s = self
            .seqs
            .get(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?;
        let mut ks = Vec::new();
        let mut vs = Vec::new();
        for &p in &s.pages {
            let page = self
                .pages
                .get(p)
                .and_then(|slot| slot.as_ref())
                .ok_or(CacheError::DanglingPage(p))?;
            ks.push(page.k.dequantize());
            vs.push(page.v.dequantize());
        }
        if !s.k_buf.is_empty() {
            ks.push(s.k_buf.dequantize());
            vs.push(s.v_buf.dequantize());
        }
        if ks.is_empty() {
            return Ok((Matrix::zeros(0, self.d), Matrix::zeros(0, self.d)));
        }
        Ok((Matrix::vstack(&ks), Matrix::vstack(&vs)))
    }

    /// Visits `seq`'s K/V blocks oldest-first: sealed pages as
    /// progressive blocks, then the open tail (if any) as INT8.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not live. [`PagedKvPool::try_visit_blocks`] is
    /// the non-panicking equivalent.
    pub fn visit_blocks(
        &self,
        seq: SeqId,
        on_page: impl FnMut(&ProgressiveBlock, &ProgressiveBlock),
        on_tail: impl FnMut(&Int8Buffer, &Int8Buffer),
    ) {
        self.try_visit_blocks(seq, on_page, on_tail)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`PagedKvPool::visit_blocks`].
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] or [`CacheError::DanglingPage`];
    /// on error some pages may already have been visited.
    pub fn try_visit_blocks(
        &self,
        seq: SeqId,
        mut on_page: impl FnMut(&ProgressiveBlock, &ProgressiveBlock),
        mut on_tail: impl FnMut(&Int8Buffer, &Int8Buffer),
    ) -> Result<(), CacheError> {
        let s = self
            .seqs
            .get(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?;
        for &p in &s.pages {
            let page = self
                .pages
                .get(p)
                .and_then(|slot| slot.as_ref())
                .ok_or(CacheError::DanglingPage(p))?;
            on_page(&page.k, &page.v);
        }
        if !s.k_buf.is_empty() {
            on_tail(&s.k_buf, &s.v_buf);
        }
        Ok(())
    }

    // ------------------------------------------- integrity & recovery --

    /// Fault-injection hook: mutable access to the packed K/V codes of
    /// the `page_pos`-th sealed page of `seq`. The seal-time checksum is
    /// deliberately *not* updated, so a subsequent [`PagedKvPool::scrub`]
    /// detects the mutation — exactly like a bit-flip in HBM.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSequence`] if `seq` is not live;
    /// [`CacheError::DanglingPage`] if `page_pos` is out of range or the
    /// slot is freed.
    pub fn tamper_page(
        &mut self,
        seq: SeqId,
        page_pos: usize,
        f: impl FnOnce(&mut PackedCodes, &mut PackedCodes),
    ) -> Result<(), CacheError> {
        let s = self
            .seqs
            .get(&seq)
            .ok_or(CacheError::UnknownSequence(seq.0))?;
        let &slot = s.pages.get(page_pos).ok_or(CacheError::DanglingPage(page_pos))?;
        let page = self
            .pages
            .get_mut(slot)
            .and_then(|p| p.as_mut())
            .ok_or(CacheError::DanglingPage(slot))?;
        f(page.k.packed_mut(), page.v.packed_mut());
        Ok(())
    }

    /// Verifies every sealed page against its seal-time checksum, drops
    /// the pages that fail, and truncates affected sequences at their
    /// first corrupt page (everything after it depends on a corrupt
    /// prefix and must be re-prefilled anyway). Tail buffers of affected
    /// sequences are cleared for the same reason.
    ///
    /// Returns a [`ScrubReport`] listing the dropped pages and, per
    /// affected sequence, the token range the serving layer must
    /// re-prefill. Each dropped page records
    /// [`HealthEvent::DroppedPage`] and each truncated sequence
    /// [`HealthEvent::PartialRecovery`] in `health` when provided.
    pub fn scrub(&mut self, health: Option<&HealthStats>) -> ScrubReport {
        // Pass 1: find corrupt slots.
        let mut corrupt: HashSet<usize> = HashSet::new();
        for (slot, page) in self.pages.iter().enumerate() {
            if let Some(p) = page {
                if page_checksum(&p.k, &p.v) != p.crc {
                    corrupt.insert(slot);
                }
            }
        }
        let mut report = ScrubReport::default();
        if corrupt.is_empty() {
            return report;
        }
        // Pass 2: truncate every sequence at its first corrupt page,
        // releasing references the truncation drops. Iterate in id order
        // so reports are deterministic.
        for id in self.sequence_ids() {
            let s = self.seqs.get_mut(&id).expect("id just listed");
            let Some(first_bad) = s.pages.iter().position(|p| corrupt.contains(p)) else {
                continue;
            };
            let old_len = s.pages.len() * self.config.buffer_capacity + s.k_buf.len();
            let removed: Vec<usize> = s.pages.split_off(first_bad);
            s.k_buf.clear();
            s.v_buf.clear();
            for p in removed {
                // Healthy-but-unreachable pages lose this reference;
                // corrupt pages are freed wholesale in pass 3.
                if !corrupt.contains(&p) {
                    if let Some(Some(page)) = self.pages.get_mut(p) {
                        page.refs -= 1;
                        if page.refs == 0 {
                            self.pages[p] = None;
                            self.free.push(p);
                        }
                    }
                }
            }
            report
                .reprefill
                .push((id.raw(), first_bad * self.config.buffer_capacity..old_len));
            if let Some(h) = health {
                h.record(HealthEvent::PartialRecovery);
            }
        }
        // Pass 3: free the corrupt slots themselves.
        let mut slots: Vec<usize> = corrupt.into_iter().collect();
        slots.sort_unstable();
        for slot in slots {
            self.pages[slot] = None;
            self.free.push(slot);
            report.corrupt_pages += 1;
            if let Some(h) = health {
                h.record(HealthEvent::DroppedPage);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_tensor::TensorRng;

    fn pool(page: usize) -> PagedKvPool {
        PagedKvPool::new(
            8,
            KvCacheConfig {
                bits: BitWidth::Int4,
                group_size: 8,
                buffer_capacity: page,
            },
        )
    }

    fn fill(pool: &mut PagedKvPool, seq: SeqId, seed: u64, n: usize) {
        let mut rng = TensorRng::new(seed);
        let data = rng.normal(n, 8, 0.0, 1.0);
        for t in 0..n {
            pool.append(seq, data.row(t), data.row(t));
        }
    }

    #[test]
    fn pages_seal_at_page_size() {
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 1, 10);
        assert_eq!(p.seq_len(s), 10);
        assert_eq!(p.physical_pages(), 2); // two sealed pages of 4
        let (k, _) = p.dequantize_sequence(s);
        assert_eq!(k.rows(), 10);
    }

    #[test]
    fn fork_shares_pages_physically() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 2, 8); // 2 sealed pages
        let b = p.fork(a);
        let c = p.fork(a);
        assert_eq!(p.num_sequences(), 3);
        assert_eq!(p.logical_pages(), 6);
        assert_eq!(p.physical_pages(), 2); // shared!
                                           // All three read identical content.
        assert_eq!(p.dequantize_sequence(a), p.dequantize_sequence(b));
        assert_eq!(p.dequantize_sequence(a), p.dequantize_sequence(c));
    }

    #[test]
    fn forked_sequences_diverge_independently() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 3, 8);
        let b = p.fork(a);
        // Divergent continuations.
        p.append(a, &[1.0; 8], &[1.0; 8]);
        p.append(b, &[-1.0; 8], &[-1.0; 8]);
        let (ka, _) = p.dequantize_sequence(a);
        let (kb, _) = p.dequantize_sequence(b);
        assert_eq!(ka.rows(), 9);
        assert!((ka.get(8, 0) - 1.0).abs() < 0.1);
        assert!((kb.get(8, 0) + 1.0).abs() < 0.1);
        // Shared prefix still shared.
        assert_eq!(p.physical_pages(), 2);
    }

    #[test]
    fn release_frees_unreferenced_pages_and_reuses_slots() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 4, 8);
        let b = p.fork(a);
        p.release(a);
        assert_eq!(p.physical_pages(), 2, "b still references the pages");
        p.release(b);
        assert_eq!(p.physical_pages(), 0);
        // Slots are recycled for the next sequence.
        let c = p.create_sequence();
        fill(&mut p, c, 5, 8);
        assert_eq!(p.physical_pages(), 2);
        assert_eq!(p.pages.len(), 2, "freed slots were reused");
    }

    #[test]
    fn sharing_shrinks_physical_footprint() {
        // 16 chat sessions over one 64-token system prompt.
        let mut p = pool(16);
        let root = p.create_sequence();
        fill(&mut p, root, 6, 64);
        let sessions: Vec<SeqId> = (0..16).map(|_| p.fork(root)).collect();
        let mut rng = TensorRng::new(7);
        for &s in &sessions {
            for _ in 0..8 {
                let row: Vec<f32> = (0..8).map(|_| rng.standard_normal()).collect();
                p.append(s, &row, &row);
            }
        }
        let physical = p.storage_bytes();
        let fp16_logical = p.fp16_logical_bytes();
        // 17 sequences × 64-token prefix logically, one physically, all
        // quantized: >12× below naive FP16 (the per-session INT8 tails are
        // the remaining cost).
        assert!(
            fp16_logical > 12 * physical,
            "physical {physical} vs fp16 logical {fp16_logical}"
        );
    }

    #[test]
    fn visit_blocks_sees_pages_then_tail() {
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 8, 10);
        let mut pages = 0;
        let mut tails = 0;
        let mut tail_rows = 0;
        p.visit_blocks(
            s,
            |k, _v| {
                pages += 1;
                assert_eq!(k.rows(), 4);
            },
            |k, _v| {
                tails += 1;
                tail_rows = k.len();
            },
        );
        assert_eq!(pages, 2);
        assert_eq!(tails, 1);
        assert_eq!(tail_rows, 2);
    }

    #[test]
    #[should_panic(expected = "unknown sequence")]
    fn released_sequence_is_gone() {
        let mut p = pool(4);
        let s = p.create_sequence();
        p.release(s);
        p.seq_len(s);
    }

    #[test]
    fn try_apis_reject_bad_inputs_without_panicking() {
        let mut p = pool(4);
        let s = p.create_sequence();
        p.release(s);
        assert_eq!(p.try_seq_len(s), Err(CacheError::UnknownSequence(s.raw())));
        assert_eq!(p.try_fork(s).unwrap_err(), CacheError::UnknownSequence(s.raw()));
        assert_eq!(p.try_release(s), Err(CacheError::UnknownSequence(s.raw())));
        assert!(p.try_dequantize_sequence(s).is_err());
        let live = p.create_sequence();
        assert_eq!(
            p.try_append(live, &[1.0; 3], &[1.0; 8]),
            Err(CacheError::WidthMismatch { expected: 8, got: 3 })
        );
        assert_eq!(
            p.try_append(live, &[1.0; 8], &[f32::NAN; 8]),
            Err(CacheError::NonFinite { channel: 0 })
        );
        // A rejected append must not leave K without V.
        assert_eq!(p.try_seq_len(live), Ok(0));
        assert_eq!(p.try_append(live, &[1.0; 8], &[2.0; 8]), Ok(()));
        assert_eq!(p.try_seq_len(live), Ok(1));
    }

    #[test]
    fn scrub_on_healthy_pool_is_clean() {
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 10, 12);
        let report = p.scrub(None);
        assert!(report.is_clean());
        assert_eq!(p.seq_len(s), 12);
    }

    #[test]
    fn scrub_drops_tampered_page_and_reports_reprefill_range() {
        use turbo_robust::{HealthEvent, HealthStats};
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 11, 14); // 3 sealed pages + 2 in the tail
        p.tamper_page(s, 1, |k, _v| {
            k.bytes_mut()[0] ^= 0x04; // single bit flip in page 1
        })
        .unwrap();
        let health = HealthStats::new();
        let report = p.scrub(Some(&health));
        assert_eq!(report.corrupt_pages, 1);
        // Page 1 onward is lost: tokens 4..14 need re-prefill.
        assert_eq!(report.reprefill, vec![(s.raw(), 4..14)]);
        assert_eq!(report.tokens_lost(), 10);
        assert_eq!(health.count(HealthEvent::DroppedPage), 1);
        assert_eq!(health.count(HealthEvent::PartialRecovery), 1);
        // The surviving prefix still reads back.
        assert_eq!(p.seq_len(s), 4);
        let (k, v) = p.dequantize_sequence(s);
        assert_eq!(k.rows(), 4);
        assert_eq!(v.rows(), 4);
        // Pool is consistent: page 1's slot was freed, page 2 released.
        assert_eq!(p.physical_pages(), 1);
        // And the sequence keeps working after recovery.
        p.append(s, &[1.0; 8], &[1.0; 8]);
        assert_eq!(p.seq_len(s), 5);
    }

    #[test]
    fn scrub_truncates_every_sharer_of_a_corrupt_page() {
        let mut p = pool(4);
        let a = p.create_sequence();
        fill(&mut p, a, 12, 8); // 2 shared pages
        let b = p.fork(a);
        p.append(b, &[0.5; 8], &[0.5; 8]); // b: 2 pages + 1 tail token
        p.tamper_page(a, 0, |_k, v| {
            v.bytes_mut()[2] ^= 0x80;
        })
        .unwrap();
        let report = p.scrub(None);
        assert_eq!(report.corrupt_pages, 1);
        assert_eq!(
            report.reprefill,
            vec![(a.raw(), 0..8), (b.raw(), 0..9)]
        );
        assert_eq!(p.seq_len(a), 0);
        assert_eq!(p.seq_len(b), 0);
        // Page 1 was healthy but unreachable from both sharers -> freed.
        assert_eq!(p.physical_pages(), 0);
        // Releasing after a scrub must not panic on freed slots.
        p.release(a);
        p.release(b);
    }

    #[test]
    fn scrub_spares_unaffected_sequences() {
        let mut p = pool(4);
        let a = p.create_sequence();
        let b = p.create_sequence();
        fill(&mut p, a, 13, 8);
        fill(&mut p, b, 14, 8);
        p.tamper_page(a, 0, |k, _| {
            k.bytes_mut()[1] ^= 0x01;
        })
        .unwrap();
        let report = p.scrub(None);
        assert_eq!(report.reprefill.len(), 1);
        assert_eq!(report.reprefill[0].0, a.raw());
        assert_eq!(p.seq_len(b), 8, "healthy sequence untouched");
        let (kb, _) = p.dequantize_sequence(b);
        assert_eq!(kb.rows(), 8);
    }

    #[test]
    fn tamper_page_validates_target() {
        let mut p = pool(4);
        let s = p.create_sequence();
        fill(&mut p, s, 15, 4);
        assert!(p.tamper_page(s, 5, |_, _| {}).is_err());
        let dead = p.create_sequence();
        p.release(dead);
        assert!(p.tamper_page(dead, 0, |_, _| {}).is_err());
    }
}
