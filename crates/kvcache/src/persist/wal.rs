//! Write-ahead log + snapshot durability for [`HeadKvCache`].
//!
//! The format-v2 snapshot ([`super::serialize_head_cache`]) makes a cache
//! *reloadable*; this module makes it *crash-consistent*. A
//! [`DurableHeadCache`] pairs the live cache with a [`WriteAheadLog`]
//! that records every mutation — `try_append` (one K/V token row) and
//! `try_flush` (progressive compression of the INT8 buffer) — as
//! CRC32-framed records. A [`DurableHeadCache::checkpoint`] serializes a
//! fresh snapshot and truncates the log, so the durable state is always
//! `snapshot + WAL tail`.
//!
//! ## WAL format
//!
//! ```text
//! header: magic "TWAL" | version u16 | head_dim u32 | crc32(header)
//! record: kind u8 | payload_len u32 | payload | crc32(kind..payload)
//!   kind 1 = Append, payload = d×f32 K row ++ d×f32 V row (LE)
//!   kind 2 = Flush,  payload empty
//! ```
//!
//! ## Crash-point state machine
//!
//! A crash can strike at any byte. Recovery
//! ([`DurableHeadCache::recover`]) walks these states:
//!
//! ```text
//!        snapshot readable?          WAL record frames
//!  ┌────────────┬──────────────┐   ┌────────────────────┐
//!  │ COMPLETE   │ snapshot ok  │──▶│ replay valid prefix │──▶ RECOVERED
//!  │ TORN       │ prefix saved │──▶│ WAL DROPPED (gap!)  │──▶ RECOVERED
//!  │ UNUSABLE   │ header gone  │──▶│ error / start empty │
//!  └────────────┴──────────────┘   └────────────────────┘
//! ```
//!
//! * Snapshot **complete** → replay the longest valid prefix of WAL
//!   records; a torn or corrupt record frame ends the replay (the tail
//!   is dropped and counted, never half-applied).
//! * Snapshot **torn** → the salvaged block prefix is kept but the WAL
//!   is discarded entirely: its records continue from the *full*
//!   snapshot state, so applying them after a shorter prefix would tear
//!   a hole in the token stream. Dropping them keeps the invariant.
//! * Either way the recovered cache is **bit-identical to some valid
//!   prefix of the original token stream**, and K/V can never desync:
//!   an `Append` record carries both rows and is applied atomically.
//!
//! Records are applied through the same `try_append`/`try_flush` APIs
//! that produced them, so replay reproduces buffer scales, flush
//! boundaries, and progressive-block contents exactly.

use super::{recover_head_cache, serialize_head_cache, PersistError};
use crate::error::CacheError;
use crate::head::{HeadKvCache, KvCacheConfig};
use crate::stats::RecoveryReport;
use turbo_robust::{crc32, HealthEvent, HealthStats};

const WAL_MAGIC: &[u8; 4] = b"TWAL";
const WAL_VERSION: u16 = 1;
/// magic(4) + version(2) + head_dim(4) + crc(4).
const WAL_HEADER_LEN: usize = 14;
/// kind(1) + payload_len(4) + crc(4), excluding the payload itself.
const RECORD_OVERHEAD: usize = 9;

const KIND_APPEND: u8 = 1;
const KIND_FLUSH: u8 = 2;

/// An append-only, CRC32-framed mutation log for one head cache.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteAheadLog {
    d: usize,
    bytes: Vec<u8>,
    appends: usize,
    flushes: usize,
}

impl WriteAheadLog {
    /// Creates an empty log for `d`-channel token rows.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "channel count must be positive");
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(d as u32).to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(bytes.len(), WAL_HEADER_LEN);
        Self {
            d,
            bytes,
            appends: 0,
            flushes: 0,
        }
    }

    /// Channel count per logged token row.
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// The serialized log (header + records) as it would sit on disk.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Records logged since the last [`WriteAheadLog::clear`].
    pub fn records(&self) -> usize {
        self.appends + self.flushes
    }

    /// Append records logged.
    pub fn appends(&self) -> usize {
        self.appends
    }

    /// Flush records logged.
    pub fn flushes(&self) -> usize {
        self.flushes
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records() == 0
    }

    fn push_record(&mut self, kind: u8, payload: &[u8]) {
        let start = self.bytes.len();
        self.bytes.push(kind);
        self.bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(payload);
        let crc = crc32(&self.bytes[start..]);
        self.bytes.extend_from_slice(&crc.to_le_bytes());
    }

    /// Logs one K/V token-row append.
    ///
    /// # Panics
    ///
    /// Panics if either row is not `head_dim` long.
    pub fn log_append(&mut self, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.d, "K row width mismatch");
        assert_eq!(v.len(), self.d, "V row width mismatch");
        // Framed in place (no temporary payload allocation): this runs
        // once per decoded token per head, so record construction must
        // stay off the allocator. Bytes are identical to the old
        // element-at-a-time path.
        let row_bytes = self.d * 4;
        let payload_len = 2 * row_bytes;
        let start = self.bytes.len();
        self.bytes.reserve(RECORD_OVERHEAD + payload_len);
        self.bytes.push(KIND_APPEND);
        self.bytes
            .extend_from_slice(&(payload_len as u32).to_le_bytes());
        let payload_start = self.bytes.len();
        self.bytes.resize(payload_start + payload_len, 0);
        let payload = &mut self.bytes[payload_start..];
        crate::persist::fill_rows_le(&mut payload[..row_bytes], k);
        crate::persist::fill_rows_le(&mut payload[row_bytes..], v);
        let crc = crc32(&self.bytes[start..]);
        self.bytes.extend_from_slice(&crc.to_le_bytes());
        self.appends += 1;
    }

    /// Logs one explicit buffer flush.
    pub fn log_flush(&mut self) {
        self.push_record(KIND_FLUSH, &[]);
        self.flushes += 1;
    }

    /// Truncates the log back to its header (after a checkpoint).
    pub fn clear(&mut self) {
        self.bytes.truncate(WAL_HEADER_LEN);
        self.appends = 0;
        self.flushes = 0;
    }

    /// Byte offsets at which a prefix of `bytes` ends on a clean frame
    /// boundary: the header end, then the end of each structurally
    /// complete record. Stops at the first frame that does not fit.
    /// Returns an empty list if even the header is incomplete.
    ///
    /// Crash-point tests enumerate these (plus intra-record offsets) to
    /// prove recovery is prefix-consistent at *every* cut.
    pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        if bytes.len() < WAL_HEADER_LEN {
            return out;
        }
        out.push(WAL_HEADER_LEN);
        let mut pos = WAL_HEADER_LEN;
        while bytes.len() - pos >= RECORD_OVERHEAD {
            let len = u32::from_le_bytes([
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
                bytes[pos + 4],
            ]) as usize;
            let end = match pos.checked_add(RECORD_OVERHEAD + len) {
                Some(e) if e <= bytes.len() => e,
                _ => break,
            };
            out.push(end);
            pos = end;
        }
        out
    }
}

/// What a WAL replay did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalReplayReport {
    /// Append records applied.
    pub appends: usize,
    /// Flush records applied.
    pub flushes: usize,
    /// Bytes dropped after the last valid record frame.
    pub dropped_bytes: usize,
    /// Whether every byte of the log was consumed by valid records.
    pub complete: bool,
}

/// Replays the longest valid record prefix of `bytes` onto `cache`.
///
/// Stops at the first torn or corrupt frame (truncation, CRC mismatch,
/// unknown kind, or a payload the cache rejects); everything before it
/// is applied, everything after is dropped and counted. Records
/// [`HealthEvent::WalReplay`] once and [`HealthEvent::WalRecordDropped`]
/// when a tail was dropped.
///
/// # Errors
///
/// Returns a [`PersistError`] only when the log *header* is unusable or
/// does not match the cache's head dimension — nothing is applied then.
pub fn replay_wal(
    bytes: &[u8],
    cache: &mut HeadKvCache,
    health: Option<&HealthStats>,
) -> Result<WalReplayReport, PersistError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(PersistError::Truncated);
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != WAL_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let stored_crc = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
    if crc32(&bytes[..10]) != stored_crc {
        return Err(PersistError::Corrupt("WAL header checksum mismatch"));
    }
    let d = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    if d == 0 {
        return Err(PersistError::Corrupt("zero WAL head dimension"));
    }
    if d != cache.head_dim() {
        return Err(PersistError::Corrupt("WAL head dimension mismatch"));
    }

    let mut report = WalReplayReport {
        appends: 0,
        flushes: 0,
        dropped_bytes: 0,
        complete: true,
    };
    let mut pos = WAL_HEADER_LEN;
    'records: while pos < bytes.len() {
        // Frame must fit structurally and pass its CRC.
        let ok_frame = (|| -> Option<(u8, usize, usize)> {
            if bytes.len() - pos < RECORD_OVERHEAD {
                return None;
            }
            let kind = bytes[pos];
            let len = u32::from_le_bytes([
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
                bytes[pos + 4],
            ]) as usize;
            let payload_end = pos.checked_add(5 + len)?;
            let frame_end = payload_end.checked_add(4)?;
            if frame_end > bytes.len() {
                return None;
            }
            let stored = u32::from_le_bytes([
                bytes[payload_end],
                bytes[payload_end + 1],
                bytes[payload_end + 2],
                bytes[payload_end + 3],
            ]);
            if crc32(&bytes[pos..payload_end]) != stored {
                return None;
            }
            Some((kind, len, frame_end))
        })();
        let Some((kind, len, frame_end)) = ok_frame else {
            break 'records;
        };
        let payload = &bytes[pos + 5..pos + 5 + len];
        match kind {
            KIND_APPEND if len == 8 * d => {
                let row = |half: usize| -> Vec<f32> {
                    payload[half * 4 * d..(half + 1) * 4 * d]
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect()
                };
                let (k, v) = (row(0), row(1));
                match cache.try_append(&k, &v) {
                    // ScaleOverflow means the token *was* buffered (the
                    // capacity flush failed) — exactly what happened when
                    // the record was written, so state stays identical.
                    Ok(()) | Err(CacheError::ScaleOverflow) => report.appends += 1,
                    // A CRC-colliding corruption decoded to a row the
                    // cache rejects: treat the frame as corrupt.
                    Err(_) => break 'records,
                }
            }
            KIND_FLUSH if len == 0 => match cache.try_flush() {
                Ok(()) => report.flushes += 1,
                Err(_) => break 'records,
            },
            _ => break 'records,
        }
        pos = frame_end;
    }
    report.dropped_bytes = bytes.len() - pos;
    report.complete = report.dropped_bytes == 0;
    if let Some(h) = health {
        h.record(HealthEvent::WalReplay);
        if !report.complete {
            h.record(HealthEvent::WalRecordDropped);
        }
    }
    Ok(report)
}

/// Outcome of a [`DurableHeadCache::recover`].
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverOutcome {
    /// What snapshot salvage found.
    pub snapshot: RecoveryReport,
    /// What WAL replay did, or `None` when the WAL was discarded (torn
    /// snapshot) or unreadable.
    pub wal: Option<WalReplayReport>,
    /// Tokens in the recovered cache.
    pub tokens: usize,
    /// True when nothing was lost: snapshot complete and every WAL byte
    /// replayed.
    pub clean: bool,
}

/// A [`HeadKvCache`] whose mutations are mirrored into a write-ahead
/// log, with periodic snapshot checkpoints.
///
/// The pair `(snapshot_bytes, wal_bytes)` is the durable state: after a
/// crash that tears either at an arbitrary byte offset,
/// [`DurableHeadCache::recover`] reconstructs a cache bit-identical to a
/// valid prefix of the mutation stream.
#[derive(Clone, Debug)]
pub struct DurableHeadCache {
    cache: HeadKvCache,
    wal: WriteAheadLog,
    snapshot: Vec<u8>,
}

impl DurableHeadCache {
    /// Creates an empty durable cache; the initial checkpoint is the
    /// serialized empty cache.
    ///
    /// # Panics
    ///
    /// As [`HeadKvCache::new`].
    pub fn new(d: usize, config: KvCacheConfig) -> Self {
        let cache = HeadKvCache::new(d, config);
        let snapshot = serialize_head_cache(&cache);
        Self {
            wal: WriteAheadLog::new(d),
            snapshot,
            cache,
        }
    }

    /// Wraps an existing cache, checkpointing it immediately.
    pub fn from_cache(cache: HeadKvCache) -> Self {
        let snapshot = serialize_head_cache(&cache);
        Self {
            wal: WriteAheadLog::new(cache.head_dim()),
            snapshot,
            cache,
        }
    }

    /// The live cache (read-only: mutations must go through the durable
    /// APIs so they are logged).
    pub fn cache(&self) -> &HeadKvCache {
        &self.cache
    }

    /// The mutation log since the last checkpoint.
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// The last checkpoint's snapshot payload.
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }

    /// Owned copies of the durable pair `(snapshot, wal)` — what a crash
    /// leaves behind (possibly torn by the fault injector).
    pub fn durable_state(&self) -> (Vec<u8>, Vec<u8>) {
        (self.snapshot.clone(), self.wal.as_bytes().to_vec())
    }

    /// Logged [`HeadKvCache::try_append`]. A token that entered the
    /// cache is always logged — including the [`CacheError::ScaleOverflow`]
    /// case, where the token was buffered but the capacity flush failed
    /// (losing that record would tear a hole in the replayed stream).
    ///
    /// # Errors
    ///
    /// As [`HeadKvCache::try_append`].
    pub fn try_append(&mut self, k: &[f32], v: &[f32]) -> Result<(), CacheError> {
        match self.cache.try_append(k, v) {
            Ok(()) => {
                self.wal.log_append(k, v);
                Ok(())
            }
            Err(e @ CacheError::ScaleOverflow) => {
                self.wal.log_append(k, v);
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Logged [`HeadKvCache::try_flush`]. Only a flush that actually
    /// compressed something is logged (empty-buffer flushes are no-ops).
    ///
    /// # Errors
    ///
    /// As [`HeadKvCache::try_flush`] — on error nothing changed, so
    /// nothing is logged.
    pub fn try_flush(&mut self) -> Result<(), CacheError> {
        let had_tokens = self.cache.buffer_len() > 0;
        self.cache.try_flush()?;
        if had_tokens {
            self.wal.log_flush();
        }
        Ok(())
    }

    /// Takes a fresh snapshot and truncates the WAL. Returns the
    /// snapshot size in bytes.
    pub fn checkpoint(&mut self) -> usize {
        self.snapshot = serialize_head_cache(&self.cache);
        self.wal.clear();
        self.snapshot.len()
    }

    /// Rebuilds a durable cache from a crash's leftovers. See the module
    /// docs for the crash-point state machine; the result is always a
    /// valid prefix of the original token stream.
    ///
    /// The recovered instance is immediately re-checkpointed (fresh
    /// snapshot, empty WAL).
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] only when the snapshot *header* is
    /// unusable — there is nothing to anchor recovery on. Use
    /// [`DurableHeadCache::recover_or_empty`] to fall back to an empty
    /// cache instead.
    pub fn recover(
        snapshot: &[u8],
        wal_bytes: &[u8],
        health: Option<&HealthStats>,
    ) -> Result<(Self, RecoverOutcome), PersistError> {
        let (mut cache, snap_report) = recover_head_cache(snapshot, health)?;
        let wal_report = if snap_report.complete {
            match replay_wal(wal_bytes, &mut cache, health) {
                Ok(r) => Some(r),
                // Unreadable WAL header: the snapshot alone is still a
                // valid prefix.
                Err(_) => {
                    if let Some(h) = health {
                        h.record(HealthEvent::WalRecordDropped);
                    }
                    None
                }
            }
        } else {
            // Torn snapshot: WAL records continue from the *complete*
            // snapshot state; applying them after a salvaged prefix
            // would skip tokens. Drop the log to keep prefix validity.
            if let Some(h) = health {
                if wal_bytes.len() > WAL_HEADER_LEN {
                    h.record(HealthEvent::WalRecordDropped);
                }
            }
            None
        };
        let clean = snap_report.complete && wal_report.is_some_and(|r| r.complete);
        let outcome = RecoverOutcome {
            snapshot: snap_report,
            wal: wal_report,
            tokens: cache.len(),
            clean,
        };
        Ok((Self::from_cache(cache), outcome))
    }

    /// As [`DurableHeadCache::recover`], but an unusable snapshot header
    /// degrades to a fresh empty cache (`d`, `config`) instead of an
    /// error — the replica-rebuild path, where "lost everything,
    /// re-prefill from scratch" is a valid outcome.
    pub fn recover_or_empty(
        d: usize,
        config: KvCacheConfig,
        snapshot: &[u8],
        wal_bytes: &[u8],
        health: Option<&HealthStats>,
    ) -> (Self, RecoverOutcome) {
        match Self::recover(snapshot, wal_bytes, health) {
            Ok(pair) => pair,
            Err(_) => {
                if let Some(h) = health {
                    h.record(HealthEvent::WalRecordDropped);
                }
                let durable = Self::new(d, config);
                let outcome = RecoverOutcome {
                    snapshot: RecoveryReport {
                        valid_tokens: 0,
                        dropped_blocks: 0,
                        complete: false,
                    },
                    wal: None,
                    tokens: 0,
                    clean: false,
                };
                (durable, outcome)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbo_quant::BitWidth;
    use turbo_tensor::TensorRng;

    fn cfg() -> KvCacheConfig {
        KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 8,
            buffer_capacity: 8,
        }
    }

    /// Replays `ops(0..n_ops)` of the canonical stream onto a fresh
    /// cache: append rows of `data`, with a manual flush after every
    /// 13th append. The oracle for bit-identical prefix checks.
    fn reference_cache(data: &turbo_tensor::Matrix, appends: usize, flush_every: usize) -> HeadKvCache {
        let mut c = HeadKvCache::new(data.cols(), cfg());
        for t in 0..appends {
            c.try_append(data.row(t), data.row(t)).unwrap();
            if flush_every > 0 && (t + 1) % flush_every == 0 {
                c.try_flush().unwrap();
            }
        }
        c
    }

    fn durable_with(data: &turbo_tensor::Matrix, appends: usize, flush_every: usize) -> DurableHeadCache {
        let mut dc = DurableHeadCache::new(data.cols(), cfg());
        for t in 0..appends {
            dc.try_append(data.row(t), data.row(t)).unwrap();
            if flush_every > 0 && (t + 1) % flush_every == 0 {
                dc.try_flush().unwrap();
            }
        }
        dc
    }

    fn assert_same_state(a: &HeadKvCache, b: &HeadKvCache) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.buffer_len(), b.buffer_len());
        assert_eq!(a.resident_blocks().len(), b.resident_blocks().len());
        assert_eq!(a.key_buffer(), b.key_buffer());
        assert_eq!(a.value_buffer(), b.value_buffer());
        assert_eq!(a.dequantize_all(), b.dequantize_all());
    }

    #[test]
    fn clean_recovery_is_bit_identical() {
        let data = TensorRng::new(1).normal(40, 6, 0.0, 1.0);
        let dc = durable_with(&data, 40, 13);
        let (snap, wal) = dc.durable_state();
        let health = HealthStats::new();
        let (back, outcome) = DurableHeadCache::recover(&snap, &wal, Some(&health)).unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.tokens, 40);
        assert_same_state(back.cache(), dc.cache());
        assert_eq!(health.count(HealthEvent::WalReplay), 1);
        assert_eq!(health.count(HealthEvent::WalRecordDropped), 0);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives() {
        let data = TensorRng::new(2).normal(30, 4, 0.0, 1.0);
        let mut dc = DurableHeadCache::new(4, cfg());
        for t in 0..20 {
            dc.try_append(data.row(t), data.row(t)).unwrap();
        }
        assert_eq!(dc.wal().appends(), 20);
        dc.checkpoint();
        assert!(dc.wal().is_empty());
        for t in 20..30 {
            dc.try_append(data.row(t), data.row(t)).unwrap();
        }
        assert_eq!(dc.wal().appends(), 10);
        let (snap, wal) = dc.durable_state();
        let (back, outcome) = DurableHeadCache::recover(&snap, &wal, None).unwrap();
        assert!(outcome.clean);
        assert_same_state(back.cache(), dc.cache());
    }

    #[test]
    fn torn_wal_recovers_a_valid_prefix_at_every_cut() {
        let data = TensorRng::new(3).normal(24, 4, 0.0, 1.0);
        let dc = durable_with(&data, 24, 7);
        let (snap, wal) = dc.durable_state();
        let boundaries = WriteAheadLog::record_boundaries(&wal);
        assert_eq!(boundaries.len(), 1 + dc.wal().records());
        for cut in 0..=wal.len() {
            let health = HealthStats::new();
            let (back, outcome) =
                DurableHeadCache::recover(&snap, &wal[..cut], Some(&health)).unwrap();
            let applied = outcome.wal.map_or(0, |r| r.appends);
            let flushes_applied = outcome.wal.map_or(0, |r| r.flushes);
            // The recovered cache must equal the reference prefix built
            // from the same op stream.
            let mut reference = HeadKvCache::new(4, cfg());
            let mut f = 0usize;
            for t in 0..applied {
                reference.try_append(data.row(t), data.row(t)).unwrap();
                if (t + 1) % 7 == 0 && f < flushes_applied {
                    reference.try_flush().unwrap();
                    f += 1;
                }
            }
            assert_same_state(back.cache(), &reference);
            // K/V never desync.
            assert_eq!(back.cache().key_buffer().len(), back.cache().value_buffer().len());
            if boundaries.contains(&cut) || cut == wal.len() {
                // On-boundary cuts lose nothing before the cut.
                assert_eq!(outcome.wal.unwrap().dropped_bytes, 0);
            }
        }
    }

    #[test]
    fn torn_snapshot_drops_wal_but_keeps_prefix() {
        let data = TensorRng::new(4).normal(40, 4, 0.0, 1.0);
        let mut dc = DurableHeadCache::new(4, cfg());
        for t in 0..32 {
            dc.try_append(data.row(t), data.row(t)).unwrap();
        }
        dc.checkpoint();
        for t in 32..40 {
            dc.try_append(data.row(t), data.row(t)).unwrap();
        }
        let (snap, wal) = dc.durable_state();
        let torn = &snap[..snap.len() * 2 / 3];
        let health = HealthStats::new();
        let (back, outcome) = DurableHeadCache::recover(torn, &wal, Some(&health)).unwrap();
        assert!(!outcome.clean);
        assert!(outcome.wal.is_none(), "WAL after a torn snapshot is dropped");
        assert!(outcome.tokens <= 32);
        assert_eq!(outcome.tokens % 8, 0, "only whole sealed blocks survive");
        // The prefix is bit-identical to the reference prefix.
        let reference = reference_cache(&data, outcome.tokens, 0);
        let (k_ref, _) = reference.dequantize_all();
        let (k_got, _) = back.cache().dequantize_all();
        for r in 0..outcome.tokens.min(k_got.rows()) {
            for c in 0..4 {
                assert_eq!(k_got.get(r, c), k_ref.get(r, c));
            }
        }
        assert!(health.count(HealthEvent::WalRecordDropped) >= 1);
    }

    #[test]
    fn corrupt_wal_record_ends_replay_cleanly() {
        let data = TensorRng::new(5).normal(16, 4, 0.0, 1.0);
        let dc = durable_with(&data, 16, 0);
        let (snap, mut wal) = dc.durable_state();
        let boundaries = WriteAheadLog::record_boundaries(&wal);
        // Flip a byte inside the 5th record.
        let mid = (boundaries[4] + boundaries[5]) / 2;
        wal[mid] ^= 0x40;
        let (back, outcome) = DurableHeadCache::recover(&snap, &wal, None).unwrap();
        let r = outcome.wal.unwrap();
        assert_eq!(r.appends, 4, "replay stops at the corrupt record");
        assert!(!r.complete);
        assert_eq!(back.cache().len(), 4);
        assert_same_state(back.cache(), &reference_cache(&data, 4, 0));
    }

    #[test]
    fn recover_or_empty_survives_total_loss() {
        let (dc, outcome) =
            DurableHeadCache::recover_or_empty(4, cfg(), b"garbage", b"also garbage", None);
        assert_eq!(outcome.tokens, 0);
        assert!(!outcome.clean);
        assert!(dc.cache().is_empty());
        // And it keeps working.
        let mut dc = dc;
        dc.try_append(&[1.0; 4], &[2.0; 4]).unwrap();
        assert_eq!(dc.cache().len(), 1);
    }

    #[test]
    fn wal_replay_rejects_mismatched_dimension() {
        let wal = WriteAheadLog::new(8);
        let mut cache = HeadKvCache::new(4, cfg());
        assert_eq!(
            replay_wal(wal.as_bytes(), &mut cache, None).unwrap_err(),
            PersistError::Corrupt("WAL head dimension mismatch")
        );
    }

    #[test]
    fn wal_replay_never_panics_on_arbitrary_mutations() {
        let data = TensorRng::new(6).normal(20, 4, 0.0, 1.0);
        let dc = durable_with(&data, 20, 9);
        let (snap, wal) = dc.durable_state();
        let mut inj = turbo_robust::FaultInjector::new(0x5EED_u64);
        for round in 0..256 {
            let mut bytes = wal.clone();
            match round % 3 {
                0 => {
                    let n = 1 + inj.pick(6);
                    inj.corrupt_bytes(&mut bytes, n);
                }
                1 => {
                    inj.truncate_bytes(&mut bytes);
                }
                _ => {
                    inj.truncate_bytes(&mut bytes);
                    if !bytes.is_empty() {
                        let n = 1 + inj.pick(3);
                        inj.corrupt_bytes(&mut bytes, n);
                    }
                }
            }
            // Must never panic; on success the result is coherent.
            if let Ok((back, outcome)) = DurableHeadCache::recover(&snap, &bytes, None) {
                assert_eq!(back.cache().len(), outcome.tokens);
                assert_eq!(
                    back.cache().key_buffer().len(),
                    back.cache().value_buffer().len()
                );
            }
        }
    }

    #[test]
    fn record_boundaries_follow_the_frames() {
        let mut wal = WriteAheadLog::new(3);
        wal.log_append(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        wal.log_flush();
        wal.log_append(&[0.5; 3], &[0.25; 3]);
        let b = WriteAheadLog::record_boundaries(wal.as_bytes());
        assert_eq!(b.len(), 4); // header + 3 records
        assert_eq!(*b.last().unwrap(), wal.as_bytes().len());
        // A truncated log exposes only the complete frames.
        let cut = WriteAheadLog::record_boundaries(&wal.as_bytes()[..b[2] + 3]);
        assert_eq!(cut.len(), 3);
    }
}
