//! Layer-level write-ahead log with **group commit** and an **adaptive
//! checkpoint scheduler**.
//!
//! [`super::wal::DurableHeadCache`] makes *one* head crash-consistent; a
//! real model is `layers × heads` caches, and per-head WALs cost one
//! fsync-equivalent flush per head per token. A [`DurableLayerSet`] owns
//! every head of every layer behind **one** log: all heads' K/V rows for
//! a token travel in a single CRC32-framed record, so the commit is
//! atomic per token *across the whole model* — the layer-level
//! generalization of the per-record K/V pairing — and the log is flushed
//! once per token instead of once per head per token.
//!
//! ## WAL format
//!
//! ```text
//! header: magic "TLWL" | version u16 | layers u32 | heads u32
//!         | head_dim u32 | crc32(header)
//! record: kind u8 | payload_len u32 | payload | crc32(kind..payload)
//!   kind 1 = GroupAppend, payload = layers × heads × (d×f32 K ++ d×f32 V)
//!            in layer-major cell order (LE)
//!   kind 2 = GroupFlush,  payload empty (every head flushes)
//! ```
//!
//! ## Checkpoint blob format
//!
//! ```text
//! magic "TLCK" | version u16 | layers u32 | heads u32 | head_dim u32
//! | per cell (layer-major): payload_len u32 | serialize_head_cache bytes
//! | crc32(everything before it)
//! ```
//!
//! The trailing CRC makes the multi-layer checkpoint **all-or-nothing**:
//! a tear anywhere invalidates the whole blob. That is deliberate — the
//! per-head format can salvage a block prefix, but salvaged prefixes of
//! *different lengths per layer* would desync heads across layers, which
//! is exactly the invariant this module exists to protect. A torn
//! checkpoint therefore degrades to the empty set (token count 0, still a
//! valid common prefix) and the WAL is dropped with it (its records
//! continue from the complete checkpoint state).
//!
//! ## Adaptive checkpointing
//!
//! [`DurableHeadCache::recover`](super::wal::DurableHeadCache::recover)
//! re-checkpoints on *every* recover — simple, but it pays a full
//! snapshot serialization per crash and does nothing to bound how long
//! the *next* replay can take. Here a [`CheckpointPolicy`] is consulted
//! after every group commit (and after recovery replay):
//!
//! * [`ByteBudget`] — checkpoint once the WAL exceeds a byte budget;
//! * [`RecordBudget`] — checkpoint once the WAL holds that many records;
//! * [`ReplayBudget`] — checkpoint once `records / replay_rate` exceeds a
//!   wall-clock budget, i.e. a direct bound on worst-case replay time.
//!
//! Since at most `budget` records (equivalently bytes, or seconds at the
//! assumed replay rate) ever accumulate between checkpoints, recovery
//! replays at most that much regardless of how long the episode ran or
//! how many crashes it saw — the replay-length bound. The
//! `TURBO_CKPT_POLICY` environment variable (`bytes:N`, `records:N`, or
//! `replay:SECONDS[:RECORDS_PER_SEC]`) overrides the policy at runtime.
//!
//! Per-layer snapshot serialization runs as pooled tasks on
//! `turbo_runtime` (one task per layer, index-ordered merge), so a
//! checkpoint of a deep model scales with cores while staying
//! bit-identical to the serial result.

use super::{recover_head_cache, serialize_head_cache, PersistError};
use crate::error::CacheError;
use crate::head::KvCacheConfig;
use crate::layer::LayerKvCache;
use turbo_robust::{crc32, HealthEvent, HealthStats};

const LAYER_WAL_MAGIC: &[u8; 4] = b"TLWL";
const LAYER_WAL_VERSION: u16 = 1;
/// magic(4) + version(2) + layers(4) + heads(4) + head_dim(4) + crc(4).
const LAYER_WAL_HEADER_LEN: usize = 22;
/// kind(1) + payload_len(4) + crc(4), excluding the payload itself.
const RECORD_OVERHEAD: usize = 9;

const KIND_GROUP_APPEND: u8 = 1;
const KIND_GROUP_FLUSH: u8 = 2;

const CKPT_MAGIC: &[u8; 4] = b"TLCK";
const CKPT_VERSION: u16 = 1;

/// Environment variable overriding the checkpoint policy
/// (`bytes:N` | `records:N` | `replay:SECONDS[:RECORDS_PER_SEC]`).
pub const ENV_CKPT_POLICY: &str = "TURBO_CKPT_POLICY";

// ------------------------------------------------- checkpoint policies --

/// Why the adaptive scheduler decided to checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointCause {
    /// The WAL exceeded its byte budget.
    Bytes,
    /// The WAL exceeded its record budget.
    Records,
    /// The estimated replay time exceeded its wall-clock budget.
    ReplayBudget,
}

impl CheckpointCause {
    /// The [`HealthEvent`] counting this trigger cause.
    pub fn event(self) -> HealthEvent {
        match self {
            CheckpointCause::Bytes => HealthEvent::CheckpointByBytes,
            CheckpointCause::Records => HealthEvent::CheckpointByRecords,
            CheckpointCause::ReplayBudget => HealthEvent::CheckpointByReplayBudget,
        }
    }
}

/// When should a [`DurableLayerSet`] cut a fresh checkpoint?
///
/// Consulted after every group commit and after every recovery replay
/// with the WAL's current size. Returning `Some(cause)` triggers an
/// immediate checkpoint; the cause is recorded in [`HealthStats`] and the
/// set's [`GroupCommitStats`].
pub trait CheckpointPolicy: std::fmt::Debug + Send + Sync {
    /// Decide from the WAL's current byte and record counts.
    fn should_checkpoint(&self, wal_bytes: usize, wal_records: usize) -> Option<CheckpointCause>;
    /// Short stable name for logs.
    fn name(&self) -> &'static str;
    /// Clones the policy behind its trait object.
    fn clone_box(&self) -> Box<dyn CheckpointPolicy>;
}

impl Clone for Box<dyn CheckpointPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Checkpoint when the WAL exceeds `max_bytes` of log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteBudget {
    /// WAL bytes (records only, excluding the fixed header) tolerated
    /// before a checkpoint fires.
    pub max_bytes: usize,
}

impl CheckpointPolicy for ByteBudget {
    fn should_checkpoint(&self, wal_bytes: usize, _wal_records: usize) -> Option<CheckpointCause> {
        (wal_bytes >= self.max_bytes).then_some(CheckpointCause::Bytes)
    }
    fn name(&self) -> &'static str {
        "bytes"
    }
    fn clone_box(&self) -> Box<dyn CheckpointPolicy> {
        Box::new(*self)
    }
}

/// Checkpoint when the WAL holds `max_records` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordBudget {
    /// Records tolerated before a checkpoint fires.
    pub max_records: usize,
}

impl CheckpointPolicy for RecordBudget {
    fn should_checkpoint(&self, _wal_bytes: usize, wal_records: usize) -> Option<CheckpointCause> {
        (wal_records >= self.max_records).then_some(CheckpointCause::Records)
    }
    fn name(&self) -> &'static str {
        "records"
    }
    fn clone_box(&self) -> Box<dyn CheckpointPolicy> {
        Box::new(*self)
    }
}

/// Checkpoint when estimated replay time (`records / replay_rate`)
/// exceeds `max_replay_secs` — a direct bound on worst-case recovery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayBudget {
    /// Worst-case replay seconds tolerated.
    pub max_replay_secs: f64,
    /// Assumed replay speed in records per second.
    pub replay_rate: f64,
}

impl CheckpointPolicy for ReplayBudget {
    fn should_checkpoint(&self, _wal_bytes: usize, wal_records: usize) -> Option<CheckpointCause> {
        (wal_records as f64 / self.replay_rate >= self.max_replay_secs)
            .then_some(CheckpointCause::ReplayBudget)
    }
    fn name(&self) -> &'static str {
        "replay"
    }
    fn clone_box(&self) -> Box<dyn CheckpointPolicy> {
        Box::new(*self)
    }
}

/// A policy that never fires — checkpoints happen only on explicit
/// [`DurableLayerSet::checkpoint`] calls (bench/tests baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeverCheckpoint;

impl CheckpointPolicy for NeverCheckpoint {
    fn should_checkpoint(&self, _wal_bytes: usize, _wal_records: usize) -> Option<CheckpointCause> {
        None
    }
    fn name(&self) -> &'static str {
        "never"
    }
    fn clone_box(&self) -> Box<dyn CheckpointPolicy> {
        Box::new(*self)
    }
}

/// Parses a policy spec: `bytes:N`, `records:N`,
/// `replay:SECONDS[:RECORDS_PER_SEC]` (default rate 50 000 rec/s), or
/// `never`.
///
/// # Errors
///
/// A human-readable message describing the malformed spec.
pub fn policy_from_spec(spec: &str) -> Result<Box<dyn CheckpointPolicy>, String> {
    let spec = spec.trim();
    if spec == "never" {
        return Ok(Box::new(NeverCheckpoint));
    }
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("checkpoint policy '{spec}' has no ':' argument"))?;
    match kind {
        "bytes" => {
            let max: usize = rest
                .parse()
                .map_err(|_| format!("bad byte budget '{rest}'"))?;
            if max == 0 {
                return Err("byte budget must be positive".into());
            }
            Ok(Box::new(ByteBudget { max_bytes: max }))
        }
        "records" => {
            let max: usize = rest
                .parse()
                .map_err(|_| format!("bad record budget '{rest}'"))?;
            if max == 0 {
                return Err("record budget must be positive".into());
            }
            Ok(Box::new(RecordBudget { max_records: max }))
        }
        "replay" => {
            let (secs, rate) = match rest.split_once(':') {
                Some((s, r)) => (s, Some(r)),
                None => (rest, None),
            };
            let max_replay_secs: f64 =
                secs.parse().map_err(|_| format!("bad replay budget '{secs}'"))?;
            let replay_rate: f64 = match rate {
                Some(r) => r.parse().map_err(|_| format!("bad replay rate '{r}'"))?,
                None => 50_000.0,
            };
            if !(max_replay_secs > 0.0 && max_replay_secs.is_finite()) {
                return Err("replay budget must be positive".into());
            }
            if !(replay_rate > 0.0 && replay_rate.is_finite()) {
                return Err("replay rate must be positive".into());
            }
            Ok(Box::new(ReplayBudget {
                max_replay_secs,
                replay_rate,
            }))
        }
        _ => Err(format!("unknown checkpoint policy kind '{kind}'")),
    }
}

/// `TURBO_CKPT_POLICY` override, falling back to `default` when the
/// variable is unset or malformed (a bad operator knob must not take the
/// serving path down).
pub fn policy_from_env(default: Box<dyn CheckpointPolicy>) -> Box<dyn CheckpointPolicy> {
    match std::env::var(ENV_CKPT_POLICY) {
        Ok(spec) => policy_from_spec(&spec).unwrap_or(default),
        Err(_) => default,
    }
}

// ------------------------------------------------------- the group WAL --

/// An append-only, CRC32-framed group-commit log for `layers × heads`
/// caches. One `GroupAppend` record carries every cell's K/V rows for one
/// token.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerWriteAheadLog {
    layers: usize,
    heads: usize,
    d: usize,
    bytes: Vec<u8>,
    appends: usize,
    flushes: usize,
}

impl LayerWriteAheadLog {
    /// Creates an empty log for a `layers × heads` set of `d`-channel
    /// caches.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(layers: usize, heads: usize, d: usize) -> Self {
        assert!(layers > 0, "layer count must be positive");
        assert!(heads > 0, "head count must be positive");
        assert!(d > 0, "channel count must be positive");
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(LAYER_WAL_MAGIC);
        bytes.extend_from_slice(&LAYER_WAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(layers as u32).to_le_bytes());
        bytes.extend_from_slice(&(heads as u32).to_le_bytes());
        bytes.extend_from_slice(&(d as u32).to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(bytes.len(), LAYER_WAL_HEADER_LEN);
        Self {
            layers,
            heads,
            d,
            bytes,
            appends: 0,
            flushes: 0,
        }
    }

    /// Layer count.
    pub fn num_layers(&self) -> usize {
        self.layers
    }

    /// Heads per layer.
    pub fn heads_per_layer(&self) -> usize {
        self.heads
    }

    /// Channel count per K/V row.
    pub fn head_dim(&self) -> usize {
        self.d
    }

    /// Total cells (`layers × heads`) one group commit covers.
    pub fn cells(&self) -> usize {
        self.layers * self.heads
    }

    /// The serialized log (header + records) as it would sit on disk.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Records logged since the last [`LayerWriteAheadLog::clear`].
    pub fn records(&self) -> usize {
        self.appends + self.flushes
    }

    /// Group-append records logged (one per token, regardless of cells).
    pub fn appends(&self) -> usize {
        self.appends
    }

    /// Group-flush records logged.
    pub fn flushes(&self) -> usize {
        self.flushes
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records() == 0
    }

    /// Record bytes held (excluding the fixed header).
    pub fn record_bytes(&self) -> usize {
        self.bytes.len() - LAYER_WAL_HEADER_LEN
    }

    fn push_record(&mut self, kind: u8, payload: &[u8]) {
        let start = self.bytes.len();
        self.bytes.push(kind);
        self.bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(payload);
        let crc = crc32(&self.bytes[start..]);
        self.bytes.extend_from_slice(&crc.to_le_bytes());
    }

    /// Logs one token's rows for every cell (layer-major order) as a
    /// single group-commit record.
    ///
    /// # Panics
    ///
    /// Panics if the row counts or widths don't match the geometry.
    pub fn log_group_append(&mut self, ks: &[&[f32]], vs: &[&[f32]]) {
        let cells = self.cells();
        assert_eq!(ks.len(), cells, "one K row per cell required");
        assert_eq!(vs.len(), cells, "one V row per cell required");
        for (k, v) in ks.iter().zip(vs) {
            assert_eq!(k.len(), self.d, "K row width mismatch");
            assert_eq!(v.len(), self.d, "V row width mismatch");
        }
        // The group record is the decode hot path (one per token), so it
        // is framed in place rather than through a temporary payload
        // buffer: one resize, then bulk row serialization into the
        // reserved span. The on-disk bytes are identical to the
        // element-at-a-time formulation.
        let row_bytes = self.d * 4;
        let payload_len = cells * 2 * row_bytes;
        let start = self.bytes.len();
        self.bytes.reserve(RECORD_OVERHEAD + payload_len);
        self.bytes.push(KIND_GROUP_APPEND);
        self.bytes
            .extend_from_slice(&(payload_len as u32).to_le_bytes());
        let payload_start = self.bytes.len();
        self.bytes.resize(payload_start + payload_len, 0);
        let payload = &mut self.bytes[payload_start..];
        for (cell, (k, v)) in ks.iter().zip(vs).enumerate() {
            let base = cell * 2 * row_bytes;
            crate::persist::fill_rows_le(&mut payload[base..base + row_bytes], k);
            crate::persist::fill_rows_le(&mut payload[base + row_bytes..base + 2 * row_bytes], v);
        }
        let crc = crc32(&self.bytes[start..]);
        self.bytes.extend_from_slice(&crc.to_le_bytes());
        self.appends += 1;
    }

    /// Logs one explicit whole-set flush.
    pub fn log_group_flush(&mut self) {
        self.push_record(KIND_GROUP_FLUSH, &[]);
        self.flushes += 1;
    }

    /// Truncates the log back to its header (after a checkpoint).
    pub fn clear(&mut self) {
        self.bytes.truncate(LAYER_WAL_HEADER_LEN);
        self.appends = 0;
        self.flushes = 0;
    }

    /// Byte offsets at which a prefix of `bytes` ends on a clean frame
    /// boundary: the header end, then the end of each structurally
    /// complete record. Stops at the first frame that does not fit;
    /// empty if even the header is incomplete. Crash-point tests
    /// enumerate these (plus intra-record offsets).
    pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        if bytes.len() < LAYER_WAL_HEADER_LEN {
            return out;
        }
        out.push(LAYER_WAL_HEADER_LEN);
        let mut pos = LAYER_WAL_HEADER_LEN;
        while bytes.len() - pos >= RECORD_OVERHEAD {
            let len = u32::from_le_bytes([
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
                bytes[pos + 4],
            ]) as usize;
            let end = match pos.checked_add(RECORD_OVERHEAD + len) {
                Some(e) if e <= bytes.len() => e,
                _ => break,
            };
            out.push(end);
            pos = end;
        }
        out
    }
}

// -------------------------------------------------------- replay logic --

/// What replaying a layer-level WAL did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerWalReplayReport {
    /// Group-append records applied (tokens, not rows).
    pub appends: usize,
    /// Group-flush records applied.
    pub flushes: usize,
    /// Bytes dropped after the last valid record frame.
    pub dropped_bytes: usize,
    /// Byte offset of the end of the last valid frame (header end when no
    /// record replayed) — the prefix of the log that survives.
    pub valid_end: usize,
    /// Whether every byte of the log was consumed by valid records.
    pub complete: bool,
}

struct WalHeader {
    layers: usize,
    heads: usize,
    d: usize,
}

fn read_wal_header(bytes: &[u8]) -> Result<WalHeader, PersistError> {
    if bytes.len() < LAYER_WAL_HEADER_LEN {
        return Err(PersistError::Truncated);
    }
    if &bytes[..4] != LAYER_WAL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != LAYER_WAL_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let stored_crc = u32::from_le_bytes([bytes[18], bytes[19], bytes[20], bytes[21]]);
    if crc32(&bytes[..18]) != stored_crc {
        return Err(PersistError::Corrupt("layer WAL header checksum mismatch"));
    }
    let layers = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    let heads = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]) as usize;
    let d = u32::from_le_bytes([bytes[14], bytes[15], bytes[16], bytes[17]]) as usize;
    if layers == 0 || heads == 0 || d == 0 {
        return Err(PersistError::Corrupt("zero layer WAL geometry"));
    }
    Ok(WalHeader { layers, heads, d })
}

/// Replays the longest valid record prefix of `bytes` onto `layers`.
///
/// Every `GroupAppend` applies to all cells or none: the frame's CRC and
/// length are checked first, and after the per-head caches validated the
/// rows at commit time, the only per-cell "error" replay can see is
/// [`CacheError::ScaleOverflow`], which buffered the token exactly as at
/// commit time. A torn or corrupt frame ends the replay; everything
/// before it is applied, everything after is dropped and counted.
/// Records [`HealthEvent::WalReplay`] once,
/// [`HealthEvent::LayerWalReplayedRecords`] with the replay length, and
/// [`HealthEvent::WalRecordDropped`] when a tail was dropped.
///
/// # Errors
///
/// A [`PersistError`] only when the log *header* is unusable or does not
/// match the set's geometry — nothing is applied then.
pub fn replay_layer_wal(
    bytes: &[u8],
    layers: &mut [LayerKvCache],
    health: Option<&HealthStats>,
) -> Result<LayerWalReplayReport, PersistError> {
    let h = read_wal_header(bytes)?;
    if h.layers != layers.len() {
        return Err(PersistError::Corrupt("layer WAL layer-count mismatch"));
    }
    for layer in layers.iter() {
        if layer.num_heads() != h.heads {
            return Err(PersistError::Corrupt("layer WAL head-count mismatch"));
        }
        if layer.head(0).head_dim() != h.d {
            return Err(PersistError::Corrupt("layer WAL head dimension mismatch"));
        }
    }
    let cells = h.layers * h.heads;
    let row_bytes = 4 * h.d;

    let mut report = LayerWalReplayReport {
        appends: 0,
        flushes: 0,
        dropped_bytes: 0,
        valid_end: LAYER_WAL_HEADER_LEN,
        complete: true,
    };
    let mut pos = LAYER_WAL_HEADER_LEN;
    'records: while pos < bytes.len() {
        let ok_frame = (|| -> Option<(u8, usize, usize)> {
            if bytes.len() - pos < RECORD_OVERHEAD {
                return None;
            }
            let kind = bytes[pos];
            let len = u32::from_le_bytes([
                bytes[pos + 1],
                bytes[pos + 2],
                bytes[pos + 3],
                bytes[pos + 4],
            ]) as usize;
            let payload_end = pos.checked_add(5 + len)?;
            let frame_end = payload_end.checked_add(4)?;
            if frame_end > bytes.len() {
                return None;
            }
            let stored = u32::from_le_bytes([
                bytes[payload_end],
                bytes[payload_end + 1],
                bytes[payload_end + 2],
                bytes[payload_end + 3],
            ]);
            if crc32(&bytes[pos..payload_end]) != stored {
                return None;
            }
            Some((kind, len, frame_end))
        })();
        let Some((kind, len, frame_end)) = ok_frame else {
            break 'records;
        };
        let payload = &bytes[pos + 5..pos + 5 + len];
        match kind {
            KIND_GROUP_APPEND if len == cells * 2 * row_bytes => {
                let row = |cell: usize, half: usize| -> Vec<f32> {
                    let start = (cell * 2 + half) * row_bytes;
                    payload[start..start + row_bytes]
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect()
                };
                // Decode and sanity-check the whole group before touching
                // any cache, so a CRC-colliding corruption that decodes to
                // a row the caches would reject cannot half-apply.
                let mut rows: Vec<(Vec<f32>, Vec<f32>)> = Vec::with_capacity(cells);
                for cell in 0..cells {
                    let (k, v) = (row(cell, 0), row(cell, 1));
                    if k.iter().chain(v.iter()).any(|x| !x.is_finite()) {
                        break 'records;
                    }
                    rows.push((k, v));
                }
                for (cell, (k, v)) in rows.iter().enumerate() {
                    let cache = layers[cell / h.heads].head_mut(cell % h.heads);
                    match cache.try_append(k, v) {
                        // ScaleOverflow buffered the token — identical to
                        // what happened at commit time.
                        Ok(()) | Err(CacheError::ScaleOverflow) => {}
                        Err(_) => unreachable!("rows validated before apply"),
                    }
                }
                report.appends += 1;
            }
            KIND_GROUP_FLUSH if len == 0 => {
                for layer in layers.iter_mut() {
                    for cache in layer.iter_mut() {
                        match cache.try_flush() {
                            // An overflowed flush left the buffer intact at
                            // commit time too; state stays identical.
                            Ok(()) | Err(CacheError::ScaleOverflow) => {}
                            Err(_) => break 'records,
                        }
                    }
                }
                report.flushes += 1;
            }
            _ => break 'records,
        }
        pos = frame_end;
    }
    report.valid_end = pos;
    report.dropped_bytes = bytes.len() - pos;
    report.complete = report.dropped_bytes == 0;
    if let Some(hs) = health {
        hs.record(HealthEvent::WalReplay);
        hs.record_n(
            HealthEvent::LayerWalReplayedRecords,
            (report.appends + report.flushes) as u64,
        );
        if !report.complete {
            hs.record(HealthEvent::WalRecordDropped);
        }
    }
    Ok(report)
}

// -------------------------------------------------- the durable set ----

/// Group-commit accounting of a [`DurableLayerSet`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Group-commit records logged (appends + flushes).
    pub group_commits: usize,
    /// K/V row-pairs those records carried (`appends × cells`).
    pub rows_committed: usize,
    /// Adaptive checkpoints fired on the byte budget.
    pub checkpoints_by_bytes: usize,
    /// Adaptive checkpoints fired on the record budget.
    pub checkpoints_by_records: usize,
    /// Adaptive checkpoints fired on the replay-time budget.
    pub checkpoints_by_replay_budget: usize,
    /// Explicit [`DurableLayerSet::checkpoint`] calls.
    pub manual_checkpoints: usize,
    /// WAL sync barriers (the fsync-equivalents): interval-driven group
    /// commits, explicit syncs, and flush-all barriers.
    pub wal_syncs: usize,
}

impl GroupCommitStats {
    fn count_cause(&mut self, cause: CheckpointCause) {
        match cause {
            CheckpointCause::Bytes => self.checkpoints_by_bytes += 1,
            CheckpointCause::Records => self.checkpoints_by_records += 1,
            CheckpointCause::ReplayBudget => self.checkpoints_by_replay_budget += 1,
        }
    }

    /// Total checkpoints, adaptive plus manual.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints_by_bytes
            + self.checkpoints_by_records
            + self.checkpoints_by_replay_budget
            + self.manual_checkpoints
    }
}

/// Outcome of a [`DurableLayerSet::recover`].
#[derive(Clone, Debug, PartialEq)]
pub struct LayerRecoverOutcome {
    /// Whether the checkpoint blob validated end to end.
    pub checkpoint_complete: bool,
    /// What WAL replay did, or `None` when the WAL was discarded (torn
    /// checkpoint) or unreadable.
    pub wal: Option<LayerWalReplayReport>,
    /// Tokens in the recovered set (identical across every cell).
    pub tokens: usize,
    /// True when nothing was lost: checkpoint complete and every WAL byte
    /// replayed.
    pub clean: bool,
    /// Whether the policy forced a post-recovery checkpoint (and why).
    /// `None` means the recovered snapshot + surviving WAL prefix were
    /// kept as-is — the adaptive alternative to re-checkpointing on every
    /// recover.
    pub checkpointed: Option<CheckpointCause>,
}

/// Every head of every layer behind one group-commit write-ahead log,
/// with adaptive snapshot checkpoints.
///
/// The durable pair `(checkpoint, wal)` survives a crash that tears
/// either at an arbitrary byte offset; [`DurableLayerSet::recover`]
/// reconstructs every cell bit-identical to a **common** token prefix of
/// the mutation stream — no head, in any layer, can desync from the
/// others.
#[derive(Clone, Debug)]
pub struct DurableLayerSet {
    layers: Vec<LayerKvCache>,
    wal: LayerWriteAheadLog,
    checkpoint: Vec<u8>,
    policy: Box<dyn CheckpointPolicy>,
    stats: GroupCommitStats,
    config: KvCacheConfig,
    /// Sync (fsync-equivalent) the WAL every this many appended tokens.
    /// 1 = every token is durable the moment its append returns (the
    /// pre-batching behavior); n > 1 amortizes the sync tax over n tokens
    /// at the cost of a crash losing at most the last `n − 1` tokens.
    flush_every_n_tokens: usize,
    /// Appends logged since the last sync barrier.
    unsynced_appends: usize,
    /// Byte length of the durable WAL prefix — what a crash preserves.
    durable_watermark: usize,
    /// Whether the per-layer caches are currently detached for pipelined
    /// execution (see [`DurableLayerSet::take_layers_for_pipeline`]).
    /// While detached, `self.layers` holds empty placeholders, so any
    /// operation that reads or serializes cache state would silently lie;
    /// those paths assert against this flag.
    detached: bool,
}

impl DurableLayerSet {
    /// Creates an empty durable set of `layers × heads` caches with a
    /// uniform quantization config; the initial checkpoint is the
    /// serialized empty set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (as [`LayerKvCache::uniform`]).
    pub fn new(
        layers: usize,
        heads: usize,
        d: usize,
        config: KvCacheConfig,
        policy: Box<dyn CheckpointPolicy>,
    ) -> Self {
        assert!(layers > 0, "layer count must be positive");
        let layer_caches: Vec<LayerKvCache> = (0..layers)
            .map(|_| {
                LayerKvCache::uniform(heads, d, config.bits, config.group_size, config.buffer_capacity)
            })
            .collect();
        let mut set = Self {
            wal: LayerWriteAheadLog::new(layers, heads, d),
            checkpoint: Vec::new(),
            layers: layer_caches,
            policy,
            stats: GroupCommitStats::default(),
            config,
            flush_every_n_tokens: 1,
            unsynced_appends: 0,
            durable_watermark: 0,
            detached: false,
        };
        set.checkpoint = set.serialize_checkpoint_on(turbo_runtime::global());
        set.durable_watermark = set.wal.as_bytes().len();
        set
    }

    /// Layer count.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Heads per layer.
    pub fn heads_per_layer(&self) -> usize {
        self.layers[0].num_heads()
    }

    /// Channel count per K/V row.
    pub fn head_dim(&self) -> usize {
        self.layers[0].head(0).head_dim()
    }

    /// Total cells (`layers × heads`).
    pub fn cells(&self) -> usize {
        self.num_layers() * self.heads_per_layer()
    }

    /// Tokens cached (identical across every cell by construction).
    pub fn tokens(&self) -> usize {
        self.layers[0].len()
    }

    /// Read access to one layer (mutations must go through the durable
    /// APIs so they are logged).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &LayerKvCache {
        &self.layers[l]
    }

    /// The group-commit log since the last checkpoint.
    pub fn wal(&self) -> &LayerWriteAheadLog {
        &self.wal
    }

    /// The last checkpoint's blob.
    pub fn checkpoint_bytes(&self) -> &[u8] {
        &self.checkpoint
    }

    /// Group-commit and checkpoint accounting.
    pub fn stats(&self) -> GroupCommitStats {
        self.stats
    }

    /// The active checkpoint policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Owned copies of the durable pair `(checkpoint, wal)` — what a
    /// crash leaves behind (possibly torn by the fault injector).
    ///
    /// Only the **synced** WAL prefix is durable: with a flush interval
    /// of `n`, records logged since the last sync barrier (at most the
    /// last `n − 1` token appends) live only in memory and do not appear
    /// here — exactly what an un-fsynced page-cache tail loses.
    pub fn durable_state(&self) -> (Vec<u8>, Vec<u8>) {
        (
            self.checkpoint.clone(),
            self.wal.as_bytes()[..self.durable_watermark].to_vec(),
        )
    }

    /// The WAL sync interval in tokens (see
    /// [`DurableLayerSet::set_flush_every_n_tokens`]).
    pub fn flush_every_n_tokens(&self) -> usize {
        self.flush_every_n_tokens
    }

    /// Sets the group-commit staleness bound: the WAL is synced
    /// (fsync-equivalent) every `n` appended tokens instead of after
    /// every one. A crash between syncs loses at most the last `n − 1`
    /// appended tokens; explicit [`DurableLayerSet::sync_wal`],
    /// [`DurableLayerSet::try_flush_all`], and every checkpoint remain
    /// hard durability barriers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_flush_every_n_tokens(&mut self, n: usize) {
        assert!(n > 0, "flush interval must be at least one token");
        self.flush_every_n_tokens = n;
    }

    /// Forces a WAL sync barrier: everything logged so far becomes
    /// durable immediately, regardless of the flush interval. A no-op
    /// (not counted in the stats) when nothing new was logged.
    pub fn sync_wal(&mut self) {
        let end = self.wal.as_bytes().len();
        if end != self.durable_watermark {
            self.stats.wal_syncs += 1;
        }
        self.durable_watermark = end;
        self.unsynced_appends = 0;
    }

    /// Appends one token's K/V rows to every cell (layer-major order) and
    /// logs them as **one** group-commit record, then consults the
    /// checkpoint policy. Validates every row before mutating anything,
    /// so a rejected token leaves the whole set unchanged — the commit is
    /// atomic across the model.
    ///
    /// Records [`HealthEvent::LayerGroupCommit`] and
    /// [`HealthEvent::LayerGroupRows`] per commit, plus the checkpoint
    /// cause event when the policy fires.
    ///
    /// # Errors
    ///
    /// [`CacheError::WidthMismatch`] / [`CacheError::NonFinite`] if any
    /// row is malformed (nothing is applied or logged);
    /// [`CacheError::ScaleOverflow`] if any cell's capacity flush
    /// overflowed — the token **was** buffered everywhere and **was**
    /// logged, exactly as the per-head durable cache behaves.
    pub fn try_append_token(
        &mut self,
        ks: &[&[f32]],
        vs: &[&[f32]],
        health: Option<&HealthStats>,
    ) -> Result<(), CacheError> {
        assert!(
            !self.detached,
            "try_append_token while layers are detached for pipelining; \
             use commit_pipelined_token"
        );
        self.validate_token_rows(ks, vs)?;
        let heads = self.heads_per_layer();
        let mut overflowed = false;
        for (cell, (k, v)) in ks.iter().zip(vs).enumerate() {
            match self.layers[cell / heads].head_mut(cell % heads).try_append(k, v) {
                Ok(()) => {}
                Err(CacheError::ScaleOverflow) => overflowed = true,
                Err(e) => unreachable!("rows validated before apply: {e}"),
            }
        }
        self.log_token_commit(ks, vs, health);
        self.maybe_checkpoint(health);
        if overflowed {
            Err(CacheError::ScaleOverflow)
        } else {
            Ok(())
        }
    }

    /// Shape/finiteness validation shared by the serialized and pipelined
    /// commit paths. Rejecting before mutating anything is what keeps a
    /// failed token atomic across the model.
    fn validate_token_rows(&self, ks: &[&[f32]], vs: &[&[f32]]) -> Result<(), CacheError> {
        let cells = self.cells();
        let d = self.head_dim();
        if ks.len() != cells || vs.len() != cells {
            return Err(CacheError::WidthMismatch {
                expected: cells,
                got: ks.len().min(vs.len()),
            });
        }
        for row in ks.iter().chain(vs.iter()) {
            if row.len() != d {
                return Err(CacheError::WidthMismatch {
                    expected: d,
                    got: row.len(),
                });
            }
            if let Some(channel) = row.iter().position(|x| !x.is_finite()) {
                return Err(CacheError::NonFinite { channel });
            }
        }
        Ok(())
    }

    /// The WAL/stats half of a token commit, shared verbatim by
    /// [`DurableLayerSet::try_append_token`] and
    /// [`DurableLayerSet::commit_pipelined_token`] so both paths emit
    /// byte-identical group-commit records under the same sync cadence.
    fn log_token_commit(&mut self, ks: &[&[f32]], vs: &[&[f32]], health: Option<&HealthStats>) {
        let cells = ks.len();
        self.wal.log_group_append(ks, vs);
        self.stats.group_commits += 1;
        self.stats.rows_committed += cells;
        // Group commit across tokens: the sync barrier (fsync-equivalent)
        // fires every `flush_every_n_tokens` appends, not per token.
        self.unsynced_appends += 1;
        if self.unsynced_appends >= self.flush_every_n_tokens {
            self.sync_wal();
        }
        if let Some(hs) = health {
            hs.record(HealthEvent::LayerGroupCommit);
            hs.record_n(HealthEvent::LayerGroupRows, cells as u64);
        }
    }

    /// Detaches the per-layer caches so a [`turbo_runtime::LayerPipeline`]
    /// can advance them from concurrent per-layer tasks while this set
    /// keeps sole custody of the WAL. The caches are handed to the caller
    /// by value (replaced internally with empty placeholders) because the
    /// pipeline's whole point is that layer `k+1` appends while layer `k`
    /// still computes — a borrow through `&mut self` cannot express that.
    ///
    /// While detached:
    /// * WAL commits go through
    ///   [`DurableLayerSet::commit_pipelined_token`], which logs exactly
    ///   the record [`DurableLayerSet::try_append_token`] would have;
    /// * the checkpoint policy is **deferred** (a checkpoint would
    ///   serialize the placeholders — i.e. lose data — so the policy is
    ///   consulted once at restore instead);
    /// * cache-reading APIs ([`DurableLayerSet::tokens`],
    ///   [`DurableLayerSet::layer`], checkpointing, …) must not be called;
    ///   the mutating ones assert.
    ///
    /// Call [`DurableLayerSet::restore_layers_from_pipeline`] with the
    /// advanced caches once the pipeline has joined.
    ///
    /// # Panics
    ///
    /// Panics if the layers are already detached.
    pub fn take_layers_for_pipeline(&mut self) -> Vec<LayerKvCache> {
        assert!(!self.detached, "layers already detached for pipelining");
        self.detached = true;
        let heads = self.heads_per_layer();
        let d = self.head_dim();
        let placeholders: Vec<LayerKvCache> = (0..self.layers.len())
            .map(|_| {
                LayerKvCache::uniform(
                    heads,
                    d,
                    self.config.bits,
                    self.config.group_size,
                    self.config.buffer_capacity,
                )
            })
            .collect();
        std::mem::replace(&mut self.layers, placeholders)
    }

    /// Logs one token's group-commit record while the caches are detached
    /// for pipelined execution. Byte-identical to the record
    /// [`DurableLayerSet::try_append_token`] emits for the same rows, with
    /// the same stats, sync-cadence, and health-event sequence — the WAL
    /// cannot tell the two engines apart.
    ///
    /// The caches themselves are advanced by the pipeline's compute
    /// tasks; capacity-overflow signalling therefore surfaces there, not
    /// here.
    ///
    /// # Errors
    ///
    /// [`CacheError::WidthMismatch`] / [`CacheError::NonFinite`] exactly
    /// as the serialized path: a malformed token logs nothing.
    ///
    /// # Panics
    ///
    /// Panics if the layers are not currently detached.
    pub fn commit_pipelined_token(
        &mut self,
        ks: &[&[f32]],
        vs: &[&[f32]],
        health: Option<&HealthStats>,
    ) -> Result<(), CacheError> {
        assert!(
            self.detached,
            "commit_pipelined_token without take_layers_for_pipeline"
        );
        self.validate_token_rows(ks, vs)?;
        self.log_token_commit(ks, vs, health);
        Ok(())
    }

    /// Reattaches the caches a pipeline advanced and consults the
    /// checkpoint policy once, covering every commit made while detached.
    ///
    /// # Panics
    ///
    /// Panics if the layers are not detached, or if `layers` has the
    /// wrong geometry (wrong count, heads, or head dim).
    pub fn restore_layers_from_pipeline(
        &mut self,
        layers: Vec<LayerKvCache>,
        health: Option<&HealthStats>,
    ) {
        assert!(
            self.detached,
            "restore_layers_from_pipeline without take_layers_for_pipeline"
        );
        assert_eq!(layers.len(), self.layers.len(), "layer count changed");
        for layer in &layers {
            assert_eq!(layer.num_heads(), self.heads_per_layer(), "head count changed");
            assert_eq!(layer.head(0).head_dim(), self.head_dim(), "head dim changed");
        }
        self.layers = layers;
        self.detached = false;
        // Deferred policy consultation: one decision covering the whole
        // detached window, now that a checkpoint would serialize real
        // state again.
        self.maybe_checkpoint(health);
    }

    /// Flushes every cell's open buffer and logs **one** group-flush
    /// record (nothing is logged when every buffer was empty), then
    /// consults the checkpoint policy.
    ///
    /// # Errors
    ///
    /// [`CacheError::ScaleOverflow`] if any cell's second-stage
    /// quantization overflowed; that cell's buffer stays intact (exactly
    /// what replay reproduces), every other cell flushed.
    pub fn try_flush_all(&mut self, health: Option<&HealthStats>) -> Result<(), CacheError> {
        assert!(
            !self.detached,
            "try_flush_all while layers are detached for pipelining"
        );
        let had_tokens = self
            .layers
            .iter()
            .any(|l| l.iter().any(|h| h.buffer_len() > 0));
        if !had_tokens {
            // Still a durability barrier: pending un-synced appends (e.g.
            // ones whose capacity flush already emptied the buffers)
            // become durable even though no flush record is logged.
            self.sync_wal();
            return Ok(());
        }
        let mut overflowed = false;
        for layer in &mut self.layers {
            for cache in layer.iter_mut() {
                match cache.try_flush() {
                    Ok(()) => {}
                    Err(CacheError::ScaleOverflow) => overflowed = true,
                    Err(e) => return Err(e),
                }
            }
        }
        self.wal.log_group_flush();
        self.stats.group_commits += 1;
        // An explicit whole-set flush is always a durability barrier.
        self.sync_wal();
        if let Some(hs) = health {
            hs.record(HealthEvent::LayerGroupCommit);
        }
        self.maybe_checkpoint(health);
        if overflowed {
            Err(CacheError::ScaleOverflow)
        } else {
            Ok(())
        }
    }

    fn maybe_checkpoint(&mut self, health: Option<&HealthStats>) -> Option<CheckpointCause> {
        let cause = self
            .policy
            .should_checkpoint(self.wal.record_bytes(), self.wal.records())?;
        self.checkpoint_with_cause(turbo_runtime::global(), Some(cause), health);
        Some(cause)
    }

    /// Takes a fresh multi-layer checkpoint on the global runtime and
    /// truncates the WAL. Returns the checkpoint size in bytes.
    pub fn checkpoint(&mut self, health: Option<&HealthStats>) -> usize {
        self.checkpoint_on(turbo_runtime::global(), health)
    }

    /// As [`DurableLayerSet::checkpoint`], but on an explicit runtime
    /// (worker-count equivalence tests).
    pub fn checkpoint_on(
        &mut self,
        rt: &turbo_runtime::Runtime,
        health: Option<&HealthStats>,
    ) -> usize {
        self.checkpoint_with_cause(rt, None, health)
    }

    fn checkpoint_with_cause(
        &mut self,
        rt: &turbo_runtime::Runtime,
        cause: Option<CheckpointCause>,
        health: Option<&HealthStats>,
    ) -> usize {
        assert!(
            !self.detached,
            "checkpoint while layers are detached for pipelining would \
             serialize empty placeholders"
        );
        self.checkpoint = self.serialize_checkpoint_on(rt);
        self.wal.clear();
        // The snapshot subsumes every logged record; the (empty) WAL is
        // durable in full.
        self.durable_watermark = self.wal.as_bytes().len();
        self.unsynced_appends = 0;
        match cause {
            Some(c) => {
                self.stats.count_cause(c);
                if let Some(hs) = health {
                    hs.record(c.event());
                }
            }
            None => self.stats.manual_checkpoints += 1,
        }
        self.checkpoint.len()
    }

    /// Serializes the whole set: per-layer payloads built as pooled tasks
    /// (index-ordered merge keeps the blob bit-identical to serial), then
    /// framed and sealed with one trailing CRC32 — all-or-nothing by
    /// construction.
    fn serialize_checkpoint_on(&self, rt: &turbo_runtime::Runtime) -> Vec<u8> {
        let layer_payloads: Vec<Vec<u8>> = rt.par_map(&self.layers, |layer| {
            let mut out = Vec::new();
            for cache in layer.iter() {
                let bytes = serialize_head_cache(cache);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(&bytes);
            }
            out
        });
        let mut blob = Vec::new();
        blob.extend_from_slice(CKPT_MAGIC);
        blob.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        blob.extend_from_slice(&(self.num_layers() as u32).to_le_bytes());
        blob.extend_from_slice(&(self.heads_per_layer() as u32).to_le_bytes());
        blob.extend_from_slice(&(self.head_dim() as u32).to_le_bytes());
        for p in layer_payloads {
            blob.extend_from_slice(&p);
        }
        let crc = crc32(&blob);
        blob.extend_from_slice(&crc.to_le_bytes());
        blob
    }

    /// Decodes a checkpoint blob back into per-layer caches.
    ///
    /// # Errors
    ///
    /// Any tear or corruption anywhere in the blob (the trailing CRC
    /// covers every byte) — the checkpoint is all-or-nothing.
    fn decode_checkpoint(
        blob: &[u8],
        layers: usize,
        heads: usize,
        d: usize,
        health: Option<&HealthStats>,
    ) -> Result<Vec<LayerKvCache>, PersistError> {
        const HEAD: usize = 18; // magic(4) + version(2) + 3×u32
        if blob.len() < HEAD + 4 {
            return Err(PersistError::Truncated);
        }
        if &blob[..4] != CKPT_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes([blob[4], blob[5]]);
        if version != CKPT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let body_end = blob.len() - 4;
        let stored_crc = u32::from_le_bytes([
            blob[body_end],
            blob[body_end + 1],
            blob[body_end + 2],
            blob[body_end + 3],
        ]);
        if crc32(&blob[..body_end]) != stored_crc {
            return Err(PersistError::Corrupt("layer checkpoint checksum mismatch"));
        }
        let rd = |off: usize| -> usize {
            u32::from_le_bytes([blob[off], blob[off + 1], blob[off + 2], blob[off + 3]]) as usize
        };
        if rd(6) != layers || rd(10) != heads || rd(14) != d {
            return Err(PersistError::Corrupt("layer checkpoint geometry mismatch"));
        }
        let mut pos = HEAD;
        let mut out = Vec::with_capacity(layers);
        for _ in 0..layers {
            let mut caches = Vec::with_capacity(heads);
            for _ in 0..heads {
                if pos + 4 > body_end {
                    return Err(PersistError::Truncated);
                }
                let len = rd(pos);
                pos += 4;
                if pos + len > body_end {
                    return Err(PersistError::Truncated);
                }
                let (cache, report) = recover_head_cache(&blob[pos..pos + len], health)?;
                if !report.complete {
                    // The trailing CRC validated, so an incomplete head
                    // snapshot means a corrupt writer, not storage rot.
                    return Err(PersistError::Corrupt("incomplete head inside checkpoint"));
                }
                caches.push(cache);
                pos += len;
            }
            out.push(LayerKvCache::from_heads(caches));
        }
        if pos != body_end {
            return Err(PersistError::Corrupt("trailing bytes inside checkpoint"));
        }
        Ok(out)
    }

    /// Rebuilds a durable set from a crash's leftovers on the global
    /// runtime. See the module docs: a complete checkpoint anchors a
    /// replay of the WAL's longest valid record prefix; a torn checkpoint
    /// degrades to the empty set (and the WAL is dropped with it). Either
    /// way **every cell lands on the same token count**, bit-identical to
    /// a common prefix of the mutation stream.
    ///
    /// Unlike the per-head durable cache, recovery does **not**
    /// unconditionally re-checkpoint: the surviving WAL prefix is kept
    /// and the checkpoint policy decides — with the replay length it just
    /// measured — whether a fresh snapshot is worth cutting now.
    ///
    /// # Errors
    ///
    /// A [`PersistError`] when the checkpoint blob is unusable (use
    /// [`DurableLayerSet::recover_or_empty`] to degrade instead).
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        layers: usize,
        heads: usize,
        d: usize,
        config: KvCacheConfig,
        policy: Box<dyn CheckpointPolicy>,
        checkpoint: &[u8],
        wal_bytes: &[u8],
        health: Option<&HealthStats>,
    ) -> Result<(Self, LayerRecoverOutcome), PersistError> {
        Self::recover_on(
            turbo_runtime::global(),
            layers,
            heads,
            d,
            config,
            policy,
            checkpoint,
            wal_bytes,
            health,
        )
    }

    /// As [`DurableLayerSet::recover`], but on an explicit runtime.
    #[allow(clippy::too_many_arguments)]
    pub fn recover_on(
        rt: &turbo_runtime::Runtime,
        layers: usize,
        heads: usize,
        d: usize,
        config: KvCacheConfig,
        policy: Box<dyn CheckpointPolicy>,
        checkpoint: &[u8],
        wal_bytes: &[u8],
        health: Option<&HealthStats>,
    ) -> Result<(Self, LayerRecoverOutcome), PersistError> {
        let mut caches = Self::decode_checkpoint(checkpoint, layers, heads, d, health)?;
        let wal_report = match replay_layer_wal(wal_bytes, &mut caches, health) {
            Ok(r) => Some(r),
            // Unreadable WAL header: the checkpoint alone is still a
            // valid common prefix.
            Err(_) => {
                if let Some(hs) = health {
                    hs.record(HealthEvent::WalRecordDropped);
                }
                None
            }
        };
        // Keep the surviving valid WAL prefix live instead of folding it
        // into a fresh snapshot: repeated recoveries then cost replay, not
        // serialization, and the policy bounds how long that replay can be.
        let mut wal = LayerWriteAheadLog::new(layers, heads, d);
        if let Some(r) = wal_report {
            wal.bytes.clear();
            wal.bytes.extend_from_slice(&wal_bytes[..r.valid_end]);
            wal.appends = r.appends;
            wal.flushes = r.flushes;
        }
        let tokens = caches[0].len();
        let clean = wal_report.is_some_and(|r| r.complete);
        let durable_watermark = wal.as_bytes().len();
        let mut set = Self {
            layers: caches,
            checkpoint: checkpoint.to_vec(),
            wal,
            policy,
            stats: GroupCommitStats::default(),
            config,
            flush_every_n_tokens: 1,
            unsynced_appends: 0,
            // Everything that survived the crash is durable by definition.
            durable_watermark,
            detached: false,
        };
        let checkpointed = match set
            .policy
            .should_checkpoint(set.wal.record_bytes(), set.wal.records())
        {
            Some(cause) => {
                set.checkpoint_with_cause(rt, Some(cause), health);
                Some(cause)
            }
            None => None,
        };
        let outcome = LayerRecoverOutcome {
            checkpoint_complete: true,
            wal: wal_report,
            tokens,
            clean,
            checkpointed,
        };
        Ok((set, outcome))
    }

    /// As [`DurableLayerSet::recover`], but an unusable (torn, corrupt,
    /// or missing) checkpoint degrades to a fresh empty set instead of an
    /// error — the replica-rebuild path, where "lost everything,
    /// re-prefill from scratch" is a valid outcome. The WAL is dropped
    /// with the checkpoint (its records continue from a state that no
    /// longer exists); token count 0 is still a valid common prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn recover_or_empty(
        layers: usize,
        heads: usize,
        d: usize,
        config: KvCacheConfig,
        policy: Box<dyn CheckpointPolicy>,
        checkpoint: &[u8],
        wal_bytes: &[u8],
        health: Option<&HealthStats>,
    ) -> (Self, LayerRecoverOutcome) {
        match Self::recover(layers, heads, d, config, policy.clone(), checkpoint, wal_bytes, health)
        {
            Ok(pair) => pair,
            Err(_) => {
                if let Some(hs) = health {
                    hs.record(HealthEvent::WalRecordDropped);
                }
                let set = Self::new(layers, heads, d, config, policy);
                let outcome = LayerRecoverOutcome {
                    checkpoint_complete: false,
                    wal: None,
                    tokens: 0,
                    clean: false,
                    checkpointed: None,
                };
                (set, outcome)
            }
        }
    }

    /// The uniform quantization config every cell uses.
    pub fn config(&self) -> KvCacheConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::HeadKvCache;
    use turbo_quant::BitWidth;
    use turbo_tensor::{Matrix, TensorRng};

    const LAYERS: usize = 2;
    const HEADS: usize = 3;
    const D: usize = 4;
    const CELLS: usize = LAYERS * HEADS;

    fn cfg() -> KvCacheConfig {
        KvCacheConfig {
            bits: BitWidth::Int4,
            group_size: 8,
            buffer_capacity: 8,
        }
    }

    fn never() -> Box<dyn CheckpointPolicy> {
        Box::new(NeverCheckpoint)
    }

    /// Per-cell rows for token `t`: distinct data per cell so
    /// cross-wiring between cells would be caught.
    fn cell_rows(data: &Matrix, t: usize) -> Vec<&[f32]> {
        let row = data.row(t);
        (0..CELLS).map(|c| &row[c * D..(c + 1) * D]).collect()
    }

    fn filled(data: &Matrix, tokens: usize, flush_every: usize) -> DurableLayerSet {
        let mut set = DurableLayerSet::new(LAYERS, HEADS, D, cfg(), never());
        for t in 0..tokens {
            let rows = cell_rows(data, t);
            set.try_append_token(&rows, &rows, None).unwrap();
            if flush_every > 0 && (t + 1) % flush_every == 0 {
                set.try_flush_all(None).unwrap();
            }
        }
        set
    }

    /// Reference built by streaming the same ops into independent head
    /// caches — the oracle for bit-identical prefix checks.
    fn reference_cells(data: &Matrix, appends: usize, flushes: usize, flush_every: usize) -> Vec<HeadKvCache> {
        let mut cells: Vec<HeadKvCache> = (0..CELLS).map(|_| HeadKvCache::new(D, cfg())).collect();
        let mut f = 0usize;
        for t in 0..appends {
            let rows = cell_rows(data, t);
            for (c, cache) in cells.iter_mut().enumerate() {
                cache.try_append(rows[c], rows[c]).unwrap();
            }
            if flush_every > 0 && (t + 1) % flush_every == 0 && f < flushes {
                for cache in cells.iter_mut() {
                    cache.try_flush().unwrap();
                }
                f += 1;
            }
        }
        cells
    }

    fn assert_same_state(a: &HeadKvCache, b: &HeadKvCache) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.buffer_len(), b.buffer_len());
        assert_eq!(a.resident_blocks().len(), b.resident_blocks().len());
        assert_eq!(a.key_buffer(), b.key_buffer());
        assert_eq!(a.value_buffer(), b.value_buffer());
        assert_eq!(a.dequantize_all(), b.dequantize_all());
    }

    fn assert_matches_reference(set: &DurableLayerSet, reference: &[HeadKvCache]) {
        for l in 0..LAYERS {
            for h in 0..HEADS {
                assert_same_state(set.layer(l).head(h), &reference[l * HEADS + h]);
            }
        }
    }

    #[test]
    fn one_record_per_token_regardless_of_cells() {
        let data = TensorRng::new(1).normal(20, D * CELLS, 0.0, 1.0);
        let set = filled(&data, 20, 0);
        assert_eq!(set.wal().appends(), 20, "group commit: 1 record per token");
        assert_eq!(set.stats().rows_committed, 20 * CELLS);
        assert_eq!(set.tokens(), 20);
        for l in 0..LAYERS {
            assert_eq!(set.layer(l).len(), 20);
        }
    }

    #[test]
    fn clean_recovery_is_bit_identical() {
        let data = TensorRng::new(2).normal(40, D * CELLS, 0.0, 1.0);
        let set = filled(&data, 40, 13);
        let (ckpt, wal) = set.durable_state();
        let health = HealthStats::new();
        let (back, outcome) = DurableLayerSet::recover(
            LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal, Some(&health),
        )
        .unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.tokens, 40);
        assert_eq!(outcome.checkpointed, None, "never-policy keeps the WAL");
        for l in 0..LAYERS {
            for h in 0..HEADS {
                assert_same_state(back.layer(l).head(h), set.layer(l).head(h));
            }
        }
        assert_eq!(health.count(HealthEvent::WalReplay), 1);
        assert_eq!(
            health.count(HealthEvent::LayerWalReplayedRecords),
            back.wal().records() as u64
        );
    }

    #[test]
    fn torn_wal_recovers_a_common_prefix_at_every_cut() {
        let data = TensorRng::new(3).normal(24, D * CELLS, 0.0, 1.0);
        let set = filled(&data, 24, 7);
        let (ckpt, wal) = set.durable_state();
        let boundaries = LayerWriteAheadLog::record_boundaries(&wal);
        assert_eq!(boundaries.len(), 1 + set.wal().records());
        for cut in 0..=wal.len() {
            let (back, outcome) = DurableLayerSet::recover(
                LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal[..cut], None,
            )
            .unwrap();
            let applied = outcome.wal.map_or(0, |r| r.appends);
            let flushes = outcome.wal.map_or(0, |r| r.flushes);
            // Every cell sits at the same token count…
            for l in 0..LAYERS {
                for h in 0..HEADS {
                    assert_eq!(back.layer(l).head(h).len(), applied, "cell desync at cut {cut}");
                }
            }
            // …and is bit-identical to the reference prefix.
            let reference = reference_cells(&data, applied, flushes, 7);
            assert_matches_reference(&back, &reference);
            if boundaries.contains(&cut) {
                assert_eq!(outcome.wal.unwrap().dropped_bytes, 0);
            }
        }
    }

    #[test]
    fn torn_checkpoint_degrades_to_empty_never_desync() {
        let data = TensorRng::new(4).normal(32, D * CELLS, 0.0, 1.0);
        let mut set = filled(&data, 24, 0);
        set.checkpoint(None);
        for t in 24..32 {
            let rows = cell_rows(&data, t);
            set.try_append_token(&rows, &rows, None).unwrap();
        }
        let (ckpt, wal) = set.durable_state();
        for cut in [0usize, 10, ckpt.len() / 2, ckpt.len() - 1] {
            let health = HealthStats::new();
            let (back, outcome) = DurableLayerSet::recover_or_empty(
                LAYERS,
                HEADS,
                D,
                cfg(),
                never(),
                &ckpt[..cut.min(ckpt.len())],
                &wal,
                Some(&health),
            );
            assert!(!outcome.checkpoint_complete);
            assert_eq!(outcome.tokens, 0, "torn checkpoint degrades to empty");
            assert!(outcome.wal.is_none(), "WAL dropped with its checkpoint");
            assert_eq!(back.tokens(), 0);
            assert!(health.count(HealthEvent::WalRecordDropped) >= 1);
        }
        // And a corrupt byte inside the blob (CRC mismatch) does the same.
        let mut bad = ckpt.clone();
        bad[ckpt.len() / 3] ^= 0x10;
        let (back, outcome) =
            DurableLayerSet::recover_or_empty(LAYERS, HEADS, D, cfg(), never(), &bad, &wal, None);
        assert_eq!(outcome.tokens, 0);
        assert_eq!(back.tokens(), 0);
    }

    #[test]
    fn corrupt_record_ends_replay_without_half_applying() {
        let data = TensorRng::new(5).normal(16, D * CELLS, 0.0, 1.0);
        let set = filled(&data, 16, 0);
        let (ckpt, mut wal) = set.durable_state();
        let boundaries = LayerWriteAheadLog::record_boundaries(&wal);
        let mid = (boundaries[4] + boundaries[5]) / 2;
        wal[mid] ^= 0x40;
        let (back, outcome) =
            DurableLayerSet::recover(LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal, None).unwrap();
        let r = outcome.wal.unwrap();
        assert_eq!(r.appends, 4, "replay stops at the corrupt record");
        assert!(!r.complete);
        for l in 0..LAYERS {
            for h in 0..HEADS {
                assert_eq!(back.layer(l).head(h).len(), 4, "no cell half-applied");
            }
        }
        assert_matches_reference(&back, &reference_cells(&data, 4, 0, 0));
    }

    #[test]
    fn record_budget_policy_fires_and_bounds_replay() {
        let data = TensorRng::new(6).normal(40, D * CELLS, 0.0, 1.0);
        let mut set = DurableLayerSet::new(
            LAYERS,
            HEADS,
            D,
            cfg(),
            Box::new(RecordBudget { max_records: 10 }),
        );
        let health = HealthStats::new();
        for t in 0..40 {
            let rows = cell_rows(&data, t);
            set.try_append_token(&rows, &rows, Some(&health)).unwrap();
            assert!(
                set.wal().records() < 10,
                "record budget bounds the live WAL"
            );
        }
        assert_eq!(set.stats().checkpoints_by_records, 4);
        assert_eq!(health.count(HealthEvent::CheckpointByRecords), 4);
        // Recovery replays at most the bounded tail, bit-identically.
        let (ckpt, wal) = set.durable_state();
        let (back, outcome) =
            DurableLayerSet::recover(LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal, None).unwrap();
        assert!(outcome.wal.unwrap().appends < 10);
        assert_eq!(outcome.tokens, 40);
        assert_matches_reference(&back, &reference_cells(&data, 40, 0, 0));
    }

    #[test]
    fn byte_and_replay_budget_policies_fire_with_their_cause() {
        let data = TensorRng::new(7).normal(16, D * CELLS, 0.0, 1.0);
        let record_size = RECORD_OVERHEAD + CELLS * 8 * D;
        let mut by_bytes = DurableLayerSet::new(
            LAYERS,
            HEADS,
            D,
            cfg(),
            Box::new(ByteBudget {
                max_bytes: 3 * record_size,
            }),
        );
        // 10 records/s replay with a 0.35 s budget → every 4th record.
        let mut by_replay = DurableLayerSet::new(
            LAYERS,
            HEADS,
            D,
            cfg(),
            Box::new(ReplayBudget {
                max_replay_secs: 0.35,
                replay_rate: 10.0,
            }),
        );
        let health = HealthStats::new();
        for t in 0..16 {
            let rows = cell_rows(&data, t);
            by_bytes.try_append_token(&rows, &rows, Some(&health)).unwrap();
            by_replay.try_append_token(&rows, &rows, Some(&health)).unwrap();
        }
        assert!(by_bytes.stats().checkpoints_by_bytes > 0);
        assert!(by_replay.stats().checkpoints_by_replay_budget > 0);
        assert_eq!(
            health.count(HealthEvent::CheckpointByBytes),
            by_bytes.stats().checkpoints_by_bytes as u64
        );
        assert_eq!(
            health.count(HealthEvent::CheckpointByReplayBudget),
            by_replay.stats().checkpoints_by_replay_budget as u64
        );
        // The replay budget genuinely bounds the WAL: < 0.35s × 10 rec/s.
        assert!(by_replay.wal().records() <= 4);
    }

    #[test]
    fn recover_consults_policy_instead_of_always_checkpointing() {
        let data = TensorRng::new(8).normal(20, D * CELLS, 0.0, 1.0);
        let set = filled(&data, 20, 0);
        let (ckpt, wal) = set.durable_state();
        // A lax policy keeps the replayed WAL live…
        let (kept, o1) = DurableLayerSet::recover(
            LAYERS,
            HEADS,
            D,
            cfg(),
            Box::new(RecordBudget { max_records: 1000 }),
            &ckpt,
            &wal,
            None,
        )
        .unwrap();
        assert_eq!(o1.checkpointed, None);
        assert_eq!(kept.wal().records(), 20, "surviving WAL prefix stays live");
        assert_eq!(kept.checkpoint_bytes(), &ckpt[..]);
        // …a tight one folds it into a fresh snapshot right away.
        let health = HealthStats::new();
        let (folded, o2) = DurableLayerSet::recover(
            LAYERS,
            HEADS,
            D,
            cfg(),
            Box::new(RecordBudget { max_records: 5 }),
            &ckpt,
            &wal,
            Some(&health),
        )
        .unwrap();
        assert_eq!(o2.checkpointed, Some(CheckpointCause::Records));
        assert!(folded.wal().is_empty());
        assert_eq!(health.count(HealthEvent::CheckpointByRecords), 1);
        // Both roads lead to the same state.
        for l in 0..LAYERS {
            for h in 0..HEADS {
                assert_same_state(kept.layer(l).head(h), folded.layer(l).head(h));
            }
        }
    }

    #[test]
    fn checkpoint_is_bit_identical_at_any_worker_count() {
        let data = TensorRng::new(9).normal(30, D * CELLS, 0.0, 1.0);
        let mut baseline = filled(&data, 30, 9);
        let serial = {
            let rt = turbo_runtime::Runtime::with_workers(1);
            baseline.checkpoint_on(&rt, None);
            baseline.checkpoint_bytes().to_vec()
        };
        for workers in [2usize, 8] {
            let mut set = filled(&data, 30, 9);
            let rt = turbo_runtime::Runtime::with_workers(workers);
            set.checkpoint_on(&rt, None);
            assert_eq!(
                set.checkpoint_bytes(),
                &serial[..],
                "{workers}-worker checkpoint diverged"
            );
        }
    }

    #[test]
    fn rejected_token_leaves_every_cell_unchanged() {
        let data = TensorRng::new(10).normal(8, D * CELLS, 0.0, 1.0);
        let mut set = filled(&data, 8, 0);
        let good = cell_rows(&data, 0);
        let mut bad_rows: Vec<Vec<f32>> = good.iter().map(|r| r.to_vec()).collect();
        bad_rows[CELLS - 1][2] = f32::NAN; // poison the very last cell
        let bad: Vec<&[f32]> = bad_rows.iter().map(|r| r.as_slice()).collect();
        let err = set.try_append_token(&good, &bad, None).unwrap_err();
        assert_eq!(err, CacheError::NonFinite { channel: 2 });
        assert_eq!(set.tokens(), 8, "atomic reject: nothing applied");
        assert_eq!(set.wal().appends(), 8, "nothing logged either");
        for l in 0..LAYERS {
            for h in 0..HEADS {
                assert_eq!(set.layer(l).head(h).len(), 8);
            }
        }
    }

    #[test]
    fn policy_spec_parsing() {
        assert_eq!(policy_from_spec("bytes:4096").unwrap().name(), "bytes");
        assert_eq!(policy_from_spec("records:64").unwrap().name(), "records");
        assert_eq!(policy_from_spec("replay:0.5").unwrap().name(), "replay");
        assert_eq!(
            policy_from_spec("replay:0.5:10000").unwrap().name(),
            "replay"
        );
        assert_eq!(policy_from_spec("never").unwrap().name(), "never");
        assert!(policy_from_spec("bytes:0").is_err());
        assert!(policy_from_spec("records:-3").is_err());
        assert!(policy_from_spec("replay:nan").is_err());
        assert!(policy_from_spec("replay:inf").is_err());
        assert!(policy_from_spec("tea:5").is_err());
        assert!(policy_from_spec("records").is_err());
    }

    #[test]
    fn replay_rejects_mismatched_geometry() {
        let wal = LayerWriteAheadLog::new(2, 3, D);
        let mut wrong_layers = vec![LayerKvCache::uniform(3, D, BitWidth::Int4, 8, 8)];
        assert!(replay_layer_wal(wal.as_bytes(), &mut wrong_layers, None).is_err());
        let mut wrong_heads: Vec<LayerKvCache> = (0..2)
            .map(|_| LayerKvCache::uniform(2, D, BitWidth::Int4, 8, 8))
            .collect();
        assert!(replay_layer_wal(wal.as_bytes(), &mut wrong_heads, None).is_err());
    }

    #[test]
    fn recovery_never_panics_on_arbitrary_mutations() {
        let data = TensorRng::new(11).normal(20, D * CELLS, 0.0, 1.0);
        let set = filled(&data, 20, 9);
        let (ckpt, wal) = set.durable_state();
        let mut inj = turbo_robust::FaultInjector::new(0xFEED_u64);
        for round in 0..192 {
            let (mut c, mut w) = (ckpt.clone(), wal.clone());
            match round % 4 {
                0 => {
                    let n = 1 + inj.pick(6);
                    inj.corrupt_bytes(&mut w, n);
                }
                1 => {
                    inj.truncate_bytes(&mut w);
                }
                2 => {
                    inj.truncate_bytes(&mut c);
                }
                _ => {
                    let n = 1 + inj.pick(4);
                    inj.corrupt_bytes(&mut c, n);
                    inj.truncate_bytes(&mut w);
                }
            }
            let (back, outcome) = DurableLayerSet::recover_or_empty(
                LAYERS, HEADS, D, cfg(), never(), &c, &w, None,
            );
            assert_eq!(back.tokens(), outcome.tokens);
            // The no-desync invariant holds under any corruption.
            for l in 0..LAYERS {
                for h in 0..HEADS {
                    assert_eq!(back.layer(l).head(h).len(), outcome.tokens);
                    assert_eq!(
                        back.layer(l).head(h).key_buffer().len(),
                        back.layer(l).head(h).value_buffer().len()
                    );
                }
            }
        }
    }

    #[test]
    fn batched_flush_loses_at_most_interval_minus_one_tokens() {
        // The staleness bound of the fsync-style group commit: with a
        // flush interval of n, a crash recovers the largest synced prefix
        // — exactly ⌊t/n⌋·n tokens — so at most n − 1 are lost, and the
        // recovered cells are bit-identical to that prefix of the stream.
        let data = TensorRng::new(21).normal(30, D * CELLS, 0.0, 1.0);
        for n in [1usize, 2, 4, 8] {
            for t in [1usize, 3, 8, 17, 30] {
                let mut set = DurableLayerSet::new(LAYERS, HEADS, D, cfg(), never());
                set.set_flush_every_n_tokens(n);
                for tok in 0..t {
                    let rows = cell_rows(&data, tok);
                    set.try_append_token(&rows, &rows, None).unwrap();
                }
                let (ckpt, wal) = set.durable_state();
                let (back, outcome) =
                    DurableLayerSet::recover(LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal, None)
                        .unwrap();
                let durable_tokens = (t / n) * n;
                assert_eq!(
                    outcome.tokens, durable_tokens,
                    "interval {n}, {t} appends: recovered wrong prefix"
                );
                assert!(t - outcome.tokens < n, "lost more than n − 1 tokens");
                let reference = reference_cells(&data, durable_tokens, 0, 0);
                assert_matches_reference(&back, &reference);
            }
        }
    }

    #[test]
    fn sync_barriers_override_the_flush_interval() {
        // Explicit sync_wal, try_flush_all, and checkpoint are all hard
        // durability barriers regardless of the interval.
        let data = TensorRng::new(22).normal(12, D * CELLS, 0.0, 1.0);
        let append = |set: &mut DurableLayerSet, t: usize| {
            let rows = cell_rows(&data, t);
            set.try_append_token(&rows, &rows, None).unwrap();
        };
        let recovered_tokens = |set: &DurableLayerSet| {
            let (ckpt, wal) = set.durable_state();
            DurableLayerSet::recover(LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal, None)
                .unwrap()
                .1
                .tokens
        };

        let mut set = DurableLayerSet::new(LAYERS, HEADS, D, cfg(), never());
        set.set_flush_every_n_tokens(8);
        for t in 0..5 {
            append(&mut set, t);
        }
        assert_eq!(recovered_tokens(&set), 0, "5 un-synced appends pending");
        set.sync_wal();
        assert_eq!(recovered_tokens(&set), 5, "explicit sync is a barrier");

        append(&mut set, 5);
        set.try_flush_all(None).unwrap();
        assert_eq!(recovered_tokens(&set), 6, "flush-all is a barrier");

        append(&mut set, 6);
        set.checkpoint(None);
        assert_eq!(recovered_tokens(&set), 7, "checkpoint is a barrier");
    }

    #[test]
    fn interval_one_keeps_per_token_durability_and_counts_syncs() {
        let data = TensorRng::new(23).normal(10, D * CELLS, 0.0, 1.0);
        let mut set = DurableLayerSet::new(LAYERS, HEADS, D, cfg(), never());
        assert_eq!(set.flush_every_n_tokens(), 1, "per-token sync by default");
        for t in 0..10 {
            let rows = cell_rows(&data, t);
            set.try_append_token(&rows, &rows, None).unwrap();
            let (ckpt, wal) = set.durable_state();
            let (_, outcome) =
                DurableLayerSet::recover(LAYERS, HEADS, D, cfg(), never(), &ckpt, &wal, None)
                    .unwrap();
            assert_eq!(outcome.tokens, t + 1, "every append immediately durable");
        }
        assert_eq!(set.stats().wal_syncs, 10);

        let mut batched = DurableLayerSet::new(LAYERS, HEADS, D, cfg(), never());
        batched.set_flush_every_n_tokens(4);
        for t in 0..10 {
            let rows = cell_rows(&data, t);
            batched.try_append_token(&rows, &rows, None).unwrap();
        }
        assert_eq!(batched.stats().wal_syncs, 2, "syncs at tokens 4 and 8 only");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_flush_interval_rejected() {
        let mut set = DurableLayerSet::new(LAYERS, HEADS, D, cfg(), never());
        set.set_flush_every_n_tokens(0);
    }
}
